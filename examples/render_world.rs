//! Renders a simulation world snapshot to SVG: the road network by class,
//! POIs, mobile hosts, one host's transmission range and the certain-area
//! disks of the peer caches inside it.
//!
//! ```text
//! cargo run --release --example render_world [out.svg]
//! ```

use std::fmt::Write as _;

use mobishare_senn::cache::QueryCache;
use mobishare_senn::cache::{CacheEntry, MostRecentCache};
use mobishare_senn::core::{RTreeServer, SennEngine};
use mobishare_senn::geom::Point;
use mobishare_senn::mobility::{RoadMover, RoadMoverConfig};
use mobishare_senn::network::{generate_network, GeneratorConfig, NodeLocator, RoadClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "world.svg".to_string());
    let side = 3218.7; // 2 miles
    let net = generate_network(&GeneratorConfig::city(side, 20060403));
    let locator = NodeLocator::new(&net);
    let mut rng = SmallRng::seed_from_u64(42);

    // 16 POIs (the LA 2x2 world) near streets.
    let pois: Vec<Point> = (0..16)
        .map(|_| {
            let raw = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            net.position(locator.nearest(raw).unwrap())
        })
        .collect();
    let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));

    // 60 hosts driven for 5 simulated minutes so caches fill up.
    let engine = SennEngine::new(mobishare_senn::core::senn::SennConfig {
        server_fetch: 10,
        ..Default::default()
    });
    let mut hosts: Vec<(RoadMover, MostRecentCache)> = (0..60)
        .map(|_| {
            let start = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let node = locator.nearest(start).unwrap();
            (
                RoadMover::new(&net, node, RoadMoverConfig::new(13.4)),
                MostRecentCache::new(10),
            )
        })
        .collect();
    for t in 0..300 {
        for (mover, cache) in &mut hosts {
            mover.step(&net, 1.0, &mut rng);
            if t % 60 == 30 && rng.gen_bool(0.3) {
                let q = mover.position();
                let out = engine.query::<CacheEntry>(q, 3, &[], &server);
                let nns: Vec<_> = out.cacheable().iter().map(|e| e.poi).collect();
                if !nns.is_empty() {
                    cache.store(CacheEntry::new(q, nns));
                }
            }
        }
    }

    // Render.
    let scale = 800.0 / side;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="800" height="800" viewBox="0 0 800 800">"##
    );
    let _ = writeln!(svg, r##"<rect width="800" height="800" fill="#fbfaf7"/>"##);

    // Roads, local first so highways draw on top.
    let mut passes = [
        (RoadClass::Local, "#d8d4cc", 1.0),
        (RoadClass::Secondary, "#b9b29f", 2.0),
        (RoadClass::Primary, "#e0a04e", 3.5),
    ];
    for (class, color, width) in passes.iter_mut() {
        for a in 0..net.node_count() as u32 {
            for e in net.neighbors(a) {
                if e.to > a && e.class == *class {
                    let p = net.position(a);
                    let q = net.position(e.to);
                    let _ = writeln!(
                        svg,
                        r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="{}"/>"##,
                        p.x * scale,
                        800.0 - p.y * scale,
                        q.x * scale,
                        800.0 - q.y * scale,
                        color,
                        width
                    );
                }
            }
        }
    }

    // Certain-area disks of caches near host 0.
    let q0 = hosts[0].0.position();
    let tx = 200.0;
    for (mover, cache) in &hosts[1..] {
        if mover.position().dist(q0) <= tx {
            if let Some(entry) = cache.entry() {
                let c = entry.query_location;
                let r = entry.farthest_distance();
                let _ = writeln!(
                    svg,
                    r##"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="#7aa6c2" fill-opacity="0.15" stroke="#7aa6c2" stroke-width="1"/>"##,
                    c.x * scale,
                    800.0 - c.y * scale,
                    r * scale
                );
            }
        }
    }
    // Transmission range of host 0.
    let _ = writeln!(
        svg,
        r##"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="none" stroke="#444" stroke-dasharray="6 4" stroke-width="1.5"/>"##,
        q0.x * scale,
        800.0 - q0.y * scale,
        tx * scale
    );

    // Hosts and POIs.
    for (mover, _) in &hosts {
        let p = mover.position();
        let _ = writeln!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="#356a94"/>"##,
            p.x * scale,
            800.0 - p.y * scale
        );
    }
    for p in &pois {
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="8" height="8" fill="#c0392b"/>"##,
            p.x * scale - 4.0,
            800.0 - p.y * scale - 4.0
        );
    }
    let _ = writeln!(
        svg,
        r##"<circle cx="{:.1}" cy="{:.1}" r="5" fill="#111"/>"##,
        q0.x * scale,
        800.0 - q0.y * scale
    );
    let _ = writeln!(svg, "</svg>");

    std::fs::write(&out_path, &svg).expect("write svg");
    println!(
        "wrote {out_path}: {} roads, {} hosts, {} POIs; querier at ({:.0},{:.0}) with {} peer disks in range",
        net.edge_count(),
        hosts.len(),
        pois.len(),
        q0.x,
        q0.y,
        hosts[1..]
            .iter()
            .filter(|(m, c)| m.position().dist(q0) <= tx && c.entry().is_some())
            .count()
    );
}
