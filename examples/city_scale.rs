//! City-scale simulation: the paper's Los Angeles County 2×2-mile world.
//!
//! Runs the full mobile P2P simulator (road-network movement, Poisson
//! query arrivals, cooperative caches) and prints the query-resolution mix
//! — the data behind Figure 9a's 200 m point — plus the EINN/INN page
//! access comparison for the queries that did reach the server.
//!
//! ```text
//! cargo run --release --example city_scale [minutes]
//! ```

use mobishare_senn::sim::{ParamSet, SimConfig, SimParams, Simulator};

fn main() {
    let minutes: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20.0);

    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = minutes / 60.0;
    println!(
        "Los Angeles County, 2x2 mi: {} hosts, {} POIs, {:.0} queries/min, Tx {} m, {} min",
        params.mh_number,
        params.poi_number,
        params.lambda_query_per_min,
        params.tx_range_m,
        minutes
    );

    let cfg = SimConfig::new(params, 20060403);
    let mut sim = Simulator::new(cfg);
    let m = sim.run();

    println!("\nafter warm-up: {} queries", m.queries);
    println!(
        "  solved by single-peer : {:>6.1} %",
        m.single_peer_rate() * 100.0
    );
    println!(
        "  solved by multi-peer  : {:>6.1} %",
        m.multi_peer_rate() * 100.0
    );
    println!(
        "  solved by the server  : {:>6.1} %  (SQRR)",
        m.sqrr() * 100.0
    );
    if m.server > 0 {
        println!(
            "\nserver page accesses per query: EINN {:.1} vs INN {:.1} ({:.0}% saved by the pruning bounds)",
            m.einn_pages_per_query(),
            m.inn_pages_per_query(),
            (1.0 - m.einn_accesses as f64 / m.inn_accesses.max(1) as f64) * 100.0
        );
    }
    println!("\nper-k breakdown of server-bound queries:");
    for (k, s) in &m.per_k {
        println!(
            "  k={:<2}  queries {:>5}  EINN {:>6.1}  INN {:>6.1}",
            k,
            s.queries,
            s.einn_accesses as f64 / s.queries.max(1) as f64,
            s.inn_accesses as f64 / s.queries.max(1) as f64
        );
    }
}
