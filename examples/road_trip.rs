//! Road trip: network-distance nearest neighbors along a drive (SNNN).
//!
//! A car drives across a synthetic city road network and periodically asks
//! for its 3 network-nearest gas stations (Algorithm 2). Between stops the
//! car's own cache — refreshed at each stop — acts as a "peer" for the
//! next query, exactly like the paper's moving-query scenario, and the
//! example reports how many queries never touched the server.
//!
//! ```text
//! cargo run --release --example road_trip
//! ```

use mobishare_senn::core::prelude::*;
use mobishare_senn::geom::Point;
use mobishare_senn::mobility::{RoadMover, RoadMoverConfig};
use mobishare_senn::network::{generate_network, GeneratorConfig, NetworkDistance, NodeLocator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let side = 4000.0;
    let net = generate_network(&GeneratorConfig::city(side, 99));
    let locator = NodeLocator::new(&net);
    println!(
        "road network: {} nodes, {} edges ({}x{} m)",
        net.node_count(),
        net.edge_count(),
        side as u64,
        side as u64
    );

    // 60 gas stations near the roads.
    let mut rng = SmallRng::seed_from_u64(5);
    let stations: Vec<Point> = (0..60)
        .map(|i| {
            use rand::Rng;
            let raw = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let node = locator.nearest(raw).unwrap();
            let _ = i;
            net.position(node)
        })
        .collect();
    let server = RTreeServer::new(stations.iter().enumerate().map(|(i, p)| (i as u64, *p)));

    // Drive for ~3 simulated minutes, querying every 20 seconds so the
    // rolling cache still covers the next stop.
    let start = locator.nearest(Point::new(side / 2.0, side / 2.0)).unwrap();
    let mut car = RoadMover::new(&net, start, RoadMoverConfig::new(15.0));
    let engine = SennEngine::default();
    let mut cache: Option<PeerCacheEntry> = None;
    let mut peer_answered = 0usize;
    let k = 3usize;

    for stop in 0..10 {
        for _ in 0..20 {
            car.step(&net, 1.0, &mut rng);
        }
        let q = car.position();
        let peers: Vec<PeerCacheEntry> = cache.iter().cloned().collect();
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        let out = snnn_query(
            &engine,
            q,
            k,
            &peers,
            &server,
            &mut model,
            SnnnConfig::default(),
        );
        // Count how much of the SNNN work the rolling cache absorbed: the
        // expansion calls ask for ever-larger k and eventually need the
        // server, but the initial k-NN round is what the paper attributes.
        let first_peer = out
            .trace
            .resolutions
            .first()
            .is_some_and(|r| *r != Resolution::Server);
        if first_peer {
            peer_answered += 1;
        }
        println!(
            "stop {:>2} @ ({:>6.0},{:>6.0}): {} SENN calls, {}",
            stop,
            q.x,
            q.y,
            out.senn_calls(),
            if first_peer {
                "kNN round peer-answered"
            } else {
                "needed the server"
            }
        );
        for (i, r) in out.results.iter().enumerate() {
            println!(
                "    #{} station {:<2} network {:>6.0} m (euclid {:>6.0} m)",
                i + 1,
                r.poi.poi_id,
                r.network_dist,
                r.euclid_dist
            );
        }
        // Refresh the cache with the Euclidean-certain POIs for next time.
        let euclid = engine.query(q, k + 7, &peers, &server);
        cache = Some(PeerCacheEntry::new(
            q,
            euclid.cacheable().iter().map(|e| e.poi).collect(),
        ));
    }
    println!(
        "\n{peer_answered}/10 stops had their initial kNN round answered from the rolling cache."
    );
}
