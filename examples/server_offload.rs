//! Server offload: what the pruning bounds buy on the database side.
//!
//! Builds an R\*-tree over many POIs and replays the same kNN workload
//! three ways — plain INN, EINN with only the upper bound, and EINN with
//! both bounds — printing node accesses per query (the paper's Figure 17
//! metric) for increasing k.
//!
//! ```text
//! cargo run --release --example server_offload
//! ```

use mobishare_senn::geom::Point;
use mobishare_senn::rtree::{RStarTree, SearchBounds};

fn main() {
    let n = 50_000;
    let side = 50_000.0;
    let mut seed = 0x1357_9bdfu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(next() * side, next() * side))
        .collect();
    let tree = RStarTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
    );
    println!(
        "R*-tree over {n} POIs, height {}, branching 30\n",
        tree.height()
    );
    println!(
        "{:>4} | {:>10} | {:>12} | {:>12} | {:>8}",
        "k", "INN pages", "EINN(upper)", "EINN(both)", "saved %"
    );

    for k in [2usize, 4, 6, 8, 10, 12, 14] {
        let mut inn = 0u64;
        let mut upper_only = 0u64;
        let mut both = 0u64;
        let rounds = 100;
        for r in 0..rounds {
            let q = Point::new((r as f64 * 487.0) % side, (r as f64 * 331.0 + 200.0) % side);
            // The client verified k-2 NNs via its peers; compute the true
            // distances to derive the bounds it would hold.
            let mut d: Vec<f64> = pts.iter().map(|p| q.dist(*p)).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let lower = d[k - 2];
            let upper = d[k - 1];

            inn += tree.knn(q, k).1;
            upper_only += tree
                .knn_bounded(
                    q,
                    k,
                    SearchBounds {
                        lower: None,
                        upper: Some(upper),
                    },
                )
                .1;
            both += tree
                .knn_bounded(
                    q,
                    2,
                    SearchBounds {
                        lower: Some(lower),
                        upper: Some(upper),
                    },
                )
                .1;
        }
        let f = |x: u64| x as f64 / rounds as f64;
        println!(
            "{:>4} | {:>10.1} | {:>12.1} | {:>12.1} | {:>8.1}",
            k,
            f(inn),
            f(upper_only),
            f(both),
            (1.0 - both as f64 / inn as f64) * 100.0
        );
    }
    println!("\nthe lower bound (downward pruning) is what cuts page reads: MBRs fully\ninside the client's verified circle are never expanded.");
}
