//! Quickstart: share kNN results between two mobile hosts.
//!
//! A peer that recently ran a 3NN query for gas stations drives past our
//! querier; the querier verifies its own 2NN query entirely from the
//! peer's cache — no server round-trip.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mobishare_senn::core::prelude::*;
use mobishare_senn::geom::Point;

fn main() {
    // Gas stations along a street (the remote database's content).
    let stations = [
        ("Shell", Point::new(120.0, 40.0)),
        ("Mobil", Point::new(400.0, 80.0)),
        ("Arco", Point::new(650.0, 20.0)),
        ("Chevron", Point::new(900.0, 60.0)),
    ];
    let server = RTreeServer::new(
        stations
            .iter()
            .enumerate()
            .map(|(i, (_, p))| (i as u64, *p)),
    );

    // A peer at (300, 50) ran a 3NN query earlier and cached the answer.
    let peer_location = Point::new(300.0, 50.0);
    let mut by_dist: Vec<(u64, Point)> = stations
        .iter()
        .enumerate()
        .map(|(i, (_, p))| (i as u64, *p))
        .collect();
    by_dist.sort_by(|a, b| {
        peer_location
            .dist(a.1)
            .partial_cmp(&peer_location.dist(b.1))
            .unwrap()
    });
    by_dist.truncate(3);
    let peer = PeerCacheEntry::from_sorted(peer_location, by_dist);
    println!(
        "peer cache @ ({:.0},{:.0}): {} stations, certain-area radius {:.0} m",
        peer_location.x,
        peer_location.y,
        peer.len(),
        peer.farthest_distance()
    );

    // Our querier is 40 m away and wants its 2 nearest stations.
    let q = Point::new(340.0, 50.0);
    let engine = SennEngine::new(SennConfig::default());
    let outcome = engine.query(q, 2, std::slice::from_ref(&peer), &server);

    println!(
        "query @ ({:.0},{:.0}), k=2 → resolved by {:?}",
        q.x,
        q.y,
        outcome.resolution()
    );
    for (rank, e) in outcome.results.iter().enumerate() {
        let name = stations[e.poi.poi_id as usize].0;
        println!(
            "  #{} {:8} at ({:>4.0},{:>3.0})  dist {:>5.1} m  {}",
            rank + 1,
            name,
            e.poi.position.x,
            e.poi.position.y,
            e.dist,
            if e.certain { "certain" } else { "uncertain" }
        );
    }
    assert_eq!(outcome.resolution(), Resolution::SinglePeer);
    assert!(
        outcome.server_accesses().is_none(),
        "no server pages were read"
    );
    println!("server was never contacted — the peer's cache answered everything.");

    // Had the cache fallen short, the residual would go out over the
    // batched service API: one ServerRequest per unresolved query, one
    // submit() per interval. The same seam a sharded backend implements.
    let request = ServerRequest::plain(0, q, 2);
    let replies = server.submit(std::slice::from_ref(&request));
    assert_eq!(replies[0].status, ReplyStatus::Ok);
    println!(
        "(for comparison, one batched server request would have cost {} node accesses)",
        replies[0].response.node_accesses
    );
}
