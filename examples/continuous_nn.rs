//! Continuous nearest neighbors from a moving car (k-NNMP).
//!
//! A car drives through a city issuing a 3NN query every 2 seconds. The
//! [`ContinuousKnn`] session rolls its own cache forward, so almost every
//! re-query verifies locally; the session also exposes the closed-form
//! *validity radius* — the guaranteed server-free zone around the last
//! query point.
//!
//! ```text
//! cargo run --release --example continuous_nn
//! ```

use mobishare_senn::core::senn::SennConfig;
use mobishare_senn::core::{ContinuousKnn, RTreeServer, SennEngine};
use mobishare_senn::geom::Point;
use mobishare_senn::mobility::{RoadMover, RoadMoverConfig};
use mobishare_senn::network::{generate_network, GeneratorConfig, NodeLocator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let side = 3000.0;
    let net = generate_network(&GeneratorConfig::city(side, 2026));
    let locator = NodeLocator::new(&net);
    let mut rng = SmallRng::seed_from_u64(7);

    // 150 POIs (say, coffee shops) near the streets.
    let pois: Vec<Point> = (0..150)
        .map(|_| {
            let raw = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            net.position(locator.nearest(raw).unwrap())
        })
        .collect();
    let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));

    // Session: 3NN, caching up to 25 NNs per server round-trip.
    let engine = SennEngine::new(SennConfig {
        server_fetch: 25,
        ..Default::default()
    });
    let mut session = ContinuousKnn::new(engine, 3);

    // Drive 10 simulated minutes, querying every 2 s.
    let start = locator.nearest(Point::new(side / 2.0, side / 2.0)).unwrap();
    let mut car = RoadMover::new(&net, start, RoadMoverConfig::new(13.4)); // 30 mph
    let mut refreshes: Vec<(f64, Point)> = Vec::new();
    for tick in 0..300 {
        car.step(&net, 2.0, &mut rng);
        let p = car.position();
        let before = session.stats().server;
        let out = session.query(p, &[], &server);
        if session.stats().server > before {
            refreshes.push((tick as f64 * 2.0, p));
        }
        if tick % 60 == 0 {
            println!(
                "t={:>4}s @ ({:>6.0},{:>6.0}): 1st NN poi {:>3} at {:>5.1} m, \
                 guaranteed server-free radius {:>6.1} m",
                tick * 2,
                p.x,
                p.y,
                out.results[0].poi.poi_id,
                out.results[0].dist,
                session.guaranteed_radius()
            );
        }
    }

    let stats = session.stats();
    println!(
        "\n{} queries over a 10-minute drive: {} answered locally, {} server refreshes \
         ({:.1}% offloaded)",
        stats.queries,
        stats.local,
        stats.server,
        100.0 * stats.local as f64 / stats.queries as f64
    );
    println!("server refreshes happened at:");
    for (t, p) in refreshes.iter().take(12) {
        println!("  t={:>5.0}s  ({:>6.0},{:>6.0})", t, p.x, p.y);
    }
    assert!(stats.local > stats.server, "reuse should dominate");
}
