#![warn(missing_docs)]
//! # mobishare-senn
//!
//! A complete Rust reproduction of *"Location-based Spatial Queries with
//! Data Sharing in Mobile Environments"* (Wei-Shinn Ku, Roger Zimmermann,
//! Chi-Ngai Wan — ICDE 2006 / USC TR 843).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`geom`] — 2-D geometry: points, MBRs with MINDIST/MAXDIST, circles,
//!   polygonization, certain-region coverage tests.
//! * [`rtree`] — an R\*-tree with incremental best-first NN (INN) and the
//!   paper's pruning-bound-extended variant (EINN).
//! * [`network`] — spatial road networks, Dijkstra/A\*, the synthetic
//!   TIGER-style generator, and the IER/INE network-kNN baselines.
//! * [`mobility`] — random-waypoint and road-constrained movement models.
//! * [`cache`] — mobile-host NN result caches.
//! * [`core`] — the paper's contribution: verification lemmas, the result
//!   heap `H`, `kNN_single` / `kNN_multiple`, SENN and SNNN.
//! * [`sim`] — the full mobile P2P simulator with the paper's parameter
//!   sets and per-figure experiments.
//!
//! ## Quickstart
//!
//! ```
//! use mobishare_senn::geom::Point;
//! use mobishare_senn::core::{PeerCacheEntry, SennConfig, SennEngine};
//!
//! // Points of interest (gas stations).
//! let pois = vec![Point::new(1.0, 0.0), Point::new(4.0, 0.0), Point::new(9.0, 0.0)];
//!
//! // A peer at (0.5, 0) previously ran a 2NN query and cached the result.
//! let peer = PeerCacheEntry::from_sorted(
//!     Point::new(0.5, 0.0),
//!     vec![(0, Point::new(1.0, 0.0)), (1, Point::new(4.0, 0.0))],
//! );
//!
//! // A querier right next to the peer verifies its own 1NN from the cache.
//! let engine = SennEngine::new(SennConfig::default());
//! let outcome = engine.query_peers_only(Point::new(0.6, 0.0), 1, &[peer]);
//! let verified = outcome.certain();
//! assert_eq!(verified.len(), 1);
//! assert_eq!(verified[0].poi.position, Point::new(1.0, 0.0));
//! # let _ = pois;
//! ```

pub use senn_cache as cache;
pub use senn_core as core;
pub use senn_geom as geom;
pub use senn_mobility as mobility;
pub use senn_network as network;
pub use senn_rtree as rtree;
pub use senn_sim as sim;
