//! A minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supports exactly what the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Behavior:
//! * under `cargo bench` (cargo passes `--bench`) each benchmark is timed
//!   with a calibrated iteration count and a one-line mean is printed;
//! * under `cargo test` (no `--bench` flag) each benchmark body runs once,
//!   so benches stay compiled and smoke-tested without costing CI time;
//! * `--quick` caps measurement at one calibration round;
//! * a positional filter argument selects benchmarks by substring, like
//!   upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--quick" => quick = true,
                "--test" => bench_mode = false,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            bench_mode,
            quick,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (scales measuring time).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named identifier `function_name/parameter` (subset of upstream's).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            bench_mode: self.criterion.bench_mode,
            quick: self.criterion.quick,
            sample_size: self.criterion.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        if self.criterion.bench_mode {
            println!(
                "{full:<48} {:>12.1} ns/iter ({} iters)",
                bencher.mean_ns, bencher.iters
            );
        } else {
            println!("{full:<48} ok (test mode)");
        }
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures (subset of `criterion::Bencher`).
pub struct Bencher {
    bench_mode: bool,
    quick: bool,
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Benchmarks `f`, consuming its output via an implicit black box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            black_box(f());
            self.iters = 1;
            return;
        }
        // Calibrate: run once, derive an iteration count targeting a
        // bounded measuring window.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(if self.quick { 20 } else { 200 })
            .max(once)
            .min(Duration::from_secs(3));
        let iters = (budget.as_nanos() / once.as_nanos())
            .clamp(1, self.sample_size.max(1) as u128 * 100) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = t1.elapsed();
        self.iters = iters + 1;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_in_test_mode() {
        let mut c = Criterion {
            sample_size: 10,
            bench_mode: false,
            quick: true,
            filter: None,
        };
        let mut hits = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("a", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| {
            b.iter(|| hits += x as u32)
        });
        group.finish();
        assert_eq!(hits, 8, "test mode runs each body exactly once");
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion {
            sample_size: 10,
            bench_mode: true,
            quick: true,
            filter: Some("match".into()),
        };
        let mut ran_filtered = false;
        let mut ran_matching = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| ran_filtered = true));
        group.bench_function("match", |b| b.iter(|| ran_matching = true));
        group.finish();
        assert!(!ran_filtered);
        assert!(ran_matching);
    }
}
