//! A minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for numeric
//!   ranges, tuples of strategies, and [`prop::collection::vec`] (whose
//!   length accepts exclusive ranges, inclusive ranges, or a fixed size
//!   via [`prop::collection::SizeRange`]);
//! * [`Union`] / the [`prop_oneof!`] macro for choosing uniformly among
//!   heterogeneous strategies of one value type;
//! * `prop::bool::ANY`;
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped onto std asserts).
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and the per-test deterministic seed, which — because input
//! generation is a pure function of (test name, case index) — is enough
//! to replay the failure under a debugger.

use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property (subset of upstream's config).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source (xoshiro256++-lite).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — plenty for test-input generation.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type, so strategies built from
    /// different combinators (but producing one value type) can live in
    /// the same collection — the enabler for [`Union`] / [`prop_oneof!`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Chooses uniformly among several strategies producing one value type
/// (the desugaring of [`prop_oneof!`]; subset of upstream's weighted
/// `Union` — every variant here is equally likely).
#[derive(Debug)]
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `variants`; panics if the list is empty (an empty
    /// union can generate nothing, which upstream also rejects).
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "Union needs at least one variant");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].new_value(rng)
    }
}

/// Chooses uniformly among several strategies of one value type:
/// `prop_oneof![Just(1), 5..10i32]`. Subset of upstream: no `weight =>`
/// arms — every alternative is equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical full-range strategy (subset of upstream's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy generating any value of the type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type (the result of [`any`]).
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// `proptest::prelude::any`: the canonical full-range strategy of a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespaced strategy constructors (subset of upstream's `prop` module).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// An inclusive length range for collection strategies (subset of
        /// upstream's `SizeRange`): built from an exclusive range, an
        /// inclusive range, or a single fixed size.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    max: r.end.saturating_sub(1).max(r.start),
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: (*r.end()).max(*r.start()),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        /// A `Vec` whose length is uniform in `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        /// The result of [`vec()`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.max - self.len.min + 1) as u64;
                let n = self.len.min + rng.below(span) as usize;
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// A fair coin.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// A fair coin, `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Common imports (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, Union};
}

/// Property assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition
/// (upstream rejects-and-regenerates; this subset just moves on to the
/// next case, which keeps generation deterministic).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Property equality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::new_value(&($strat), &mut rng); )*
                    let run = || -> () { $body };
                    if let Err(payload) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "property {} failed at case {}/{} (deterministic per-name stream; \
                             rerun this test to reproduce)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("self_test");
        for _ in 0..1000 {
            let f = crate::Strategy::new_value(&(2.0..5.0f64), &mut rng);
            assert!((2.0..5.0).contains(&f));
            let u = crate::Strategy::new_value(&(1usize..4), &mut rng);
            assert!((1..4).contains(&u));
            let v = crate::Strategy::new_value(&prop::collection::vec(0.0..1.0f64, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn union_draws_every_variant_and_nothing_else() {
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..13];
        let mut rng = crate::TestRng::for_test("union_self_test");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = crate::Strategy::new_value(&strat, &mut rng);
            assert!(v == 1 || v == 2 || (10..13).contains(&v), "stray value {v}");
            seen.insert(v);
        }
        // 1000 draws over ≤5 outcomes: every variant must have surfaced.
        assert_eq!(seen.len(), 5, "some arm was never chosen: {seen:?}");
    }

    #[test]
    fn boxed_strategies_keep_generating_through_the_erased_type() {
        let boxed = (0.0..1.0f64).prop_map(|x| x * 2.0).boxed();
        let mut rng = crate::TestRng::for_test("boxed_self_test");
        for _ in 0..100 {
            let v = crate::Strategy::new_value(&boxed, &mut rng);
            assert!((0.0..2.0).contains(&v));
        }
    }

    #[test]
    fn vec_accepts_inclusive_and_fixed_size_ranges() {
        let mut rng = crate::TestRng::for_test("size_range_self_test");
        let inclusive = prop::collection::vec(0u8..10, 2..=4usize);
        let fixed = prop::collection::vec(0u8..10, 3usize);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = crate::Strategy::new_value(&inclusive, &mut rng);
            assert!((2..=4).contains(&v.len()));
            lens.insert(v.len());
            assert_eq!(crate::Strategy::new_value(&fixed, &mut rng).len(), 3);
        }
        // The inclusive upper bound must actually be reachable.
        assert!(lens.contains(&4), "len 4 never generated: {lens:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: tuples, maps, and asserts.
        #[test]
        fn macro_roundtrip(xy in (0.0..10.0f64, 0.0..10.0f64).prop_map(|(x, y)| x + y),
                           n in 1usize..5) {
            prop_assert!((0.0..20.0).contains(&xy));
            prop_assert_eq!(n.max(1), n);
        }

        /// `prop_oneof!` inside the macro harness, mixing combinators.
        #[test]
        fn oneof_in_harness(v in prop_oneof![
            (0.0..1.0f64).prop_map(|x| -x),
            Just(0.5f64),
            2.0..3.0f64,
        ]) {
            prop_assert!((-1.0..3.0).contains(&v));
            prop_assert!(v <= 0.0 || v == 0.5 || v >= 2.0);
        }
    }
}
