//! A minimal, offline, API-compatible subset of the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand`'s API it actually
//! uses: [`SeedableRng`], the [`Rng`] extension trait with `gen_range` /
//! `gen_bool` / `gen`, and [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ (the same family upstream `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64 exactly like
//! `rand_core::SeedableRng::seed_from_u64`. Streams are deterministic and
//! stable across platforms, but are **not** bit-identical to upstream
//! `rand` — every consumer in this workspace seeds explicitly and only
//! relies on determinism, never on specific draws.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
        let v = low + unit_f64(rng) * (high - low);
        // Guard against round-up to `high` on huge spans.
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
        let v = low + (unit_f64(rng) as f32) * (high - low);
        if v >= high {
            low
        } else {
            v
        }
    }
    fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
        low + (unit_f64(rng) as f32) * (high - low)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(bounded_u128(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(bounded_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` (span > 0) by widening rejection-free
/// multiply; `span == 0` means the full 64-bit range.
#[inline]
fn bounded_u128(rng: &mut impl RngCore, span: u128) -> u64 {
    if span == 0 || span > u64::MAX as u128 {
        return rng.next_u64();
    }
    // Lemire's multiply-shift; the tiny modulo bias is irrelevant for
    // simulation workloads.
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// A uniform value of a supported type (`f64` in `[0,1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws the "standard" distribution for the type.
    fn standard(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut impl RngCore) -> Self {
        unit_f64(rng)
    }
}
impl Standard for bool {
    fn standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            SmallRng { s }
        }
    }

    /// Upstream's default generator; here the same engine as [`SmallRng`].
    pub type StdRng = SmallRng;
}

/// Common imports (subset of `rand::prelude`).
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64).all(|_| a.gen_range(0..100u32) == c.gen_range(0..100u32));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&g));
            let u = rng.gen_range(5..8usize);
            assert!((5..8).contains(&u));
            let v = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&v));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
