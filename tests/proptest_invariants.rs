//! Property-based tests (proptest) of the workspace's core invariants.

use mobishare_senn::core::multiple::{knn_multiple, RegionMethod};
use mobishare_senn::core::verify::is_certain;
use mobishare_senn::core::{PeerCacheEntry, ResultHeap};
use mobishare_senn::geom::{Circle, DiskRegion, Point, PolygonRegion, Rect};
use mobishare_senn::rtree::RStarTree;
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn pois(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3.2 soundness: with an honest cache, a certified POI really is
    /// among the top-k NNs of the querier.
    #[test]
    fn lemma_soundness(world in pois(40), p in pt(), q in pt(), k in 1usize..10) {
        let mut by_p: Vec<(f64, usize)> =
            world.iter().enumerate().map(|(i, t)| (p.dist(*t), i)).collect();
        by_p.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cache: Vec<usize> = by_p.iter().take(k).map(|&(_, i)| i).collect();
        let radius = by_p[cache.len() - 1].0;
        let mut by_q: Vec<(f64, usize)> =
            world.iter().enumerate().map(|(i, t)| (q.dist(*t), i)).collect();
        by_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let true_knn: Vec<usize> = by_q.iter().take(k).map(|&(_, i)| i).collect();
        for &c in &cache {
            if is_certain(q, p, radius, world[c]) {
                prop_assert!(true_knn.contains(&c), "false certain");
            }
        }
    }

    /// R*-tree kNN equals a linear scan, for any insertion order.
    #[test]
    fn rtree_knn_equals_scan(world in pois(120), q in pt(), k in 1usize..12) {
        let mut tree = RStarTree::new();
        for (i, p) in world.iter().enumerate() {
            tree.insert(*p, i);
        }
        tree.check_invariants();
        let (got, _) = tree.knn(q, k);
        let mut d: Vec<f64> = world.iter().map(|p| q.dist(*p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), k.min(world.len()));
        for (g, want) in got.iter().zip(&d) {
            prop_assert!((g.dist - want).abs() < 1e-9);
        }
    }

    /// R*-tree range query equals a linear scan.
    #[test]
    fn rtree_range_equals_scan(world in pois(120), a in pt(), b in pt()) {
        let tree = RStarTree::bulk_load(
            world.iter().enumerate().map(|(i, p)| (*p, i)).collect(),
        );
        let rect = Rect::new(a, b);
        let (hits, _) = tree.range_query(rect);
        let expected = world.iter().filter(|p| rect.contains_point(**p)).count();
        prop_assert_eq!(hits.len(), expected);
    }

    /// Insert + remove round-trips keep the tree consistent and complete.
    #[test]
    fn rtree_insert_remove_roundtrip(world in pois(80), removals in prop::collection::vec(0usize..80, 0..40)) {
        let mut tree = RStarTree::new();
        for (i, p) in world.iter().enumerate() {
            tree.insert(*p, i);
        }
        let mut live: Vec<bool> = vec![true; world.len()];
        for r in removals {
            let idx = r % world.len();
            let removed = tree.remove(world[idx], |v| *v == idx);
            prop_assert_eq!(removed.is_some(), live[idx]);
            live[idx] = false;
        }
        tree.check_invariants();
        let alive = live.iter().filter(|x| **x).count();
        prop_assert_eq!(tree.len(), alive);
        for (i, p) in world.iter().enumerate() {
            let (hits, _) = tree.range_query(Rect::from_point(*p));
            prop_assert_eq!(hits.iter().any(|(_, v)| **v == i), live[i]);
        }
    }

    /// The polygonized region never certifies a circle the exact region
    /// refuses (the paper's approximation is conservative).
    #[test]
    fn polygon_region_conservative(
        circles in prop::collection::vec((pt(), 10.0..200.0f64), 1..6),
        cand_center in pt(),
        cand_r in 1.0..150.0f64,
    ) {
        let disks: Vec<Circle> =
            circles.iter().map(|&(c, r)| Circle::new(c, r)).collect();
        let poly = PolygonRegion::from_circles(&disks, 24);
        let exact = DiskRegion::from_circles(&disks);
        let cand = Circle::new(cand_center, cand_r);
        if poly.covers_circle(&cand) {
            prop_assert!(exact.covers_circle(&cand));
        }
    }

    /// Exact coverage agrees with dense Monte-Carlo sampling of the disk.
    #[test]
    fn exact_region_matches_sampling(
        circles in prop::collection::vec((pt(), 20.0..200.0f64), 1..5),
        cand_center in pt(),
        cand_r in 1.0..120.0f64,
    ) {
        let disks: Vec<Circle> =
            circles.iter().map(|&(c, r)| Circle::new(c, r)).collect();
        let region = DiskRegion::from_circles(&disks);
        let cand = Circle::new(cand_center, cand_r);
        let covered = region.covers_circle(&cand);
        if covered {
            // Every sample of the candidate disk must be inside some disk.
            for i in 0..48 {
                let th = std::f64::consts::TAU * i as f64 / 48.0;
                for fr in [0.3, 0.7, 0.999] {
                    let p = Point::new(
                        cand.center.x + cand.radius * fr * th.cos(),
                        cand.center.y + cand.radius * fr * th.sin(),
                    );
                    prop_assert!(
                        disks.iter().any(|d| d.center.dist(p) <= d.radius + 1e-6),
                        "covered circle has uncovered sample"
                    );
                }
            }
        }
    }

    /// Heap invariants under arbitrary insertion sequences: certains
    /// precede uncertains, each group ascending, capacity respected, no
    /// duplicate POI ids, certains never displaced by uncertains.
    #[test]
    fn heap_invariants(
        k in 1usize..8,
        ops in prop::collection::vec((0u64..30, 0.0..100.0f64, prop::bool::ANY), 0..60),
    ) {
        let mut heap = ResultHeap::new(k);
        for (id, dist, certain) in ops {
            let poi = mobishare_senn::core::CachedNn {
                poi_id: id,
                position: Point::new(dist, 0.0),
            };
            let certain_before = heap.certain_count();
            if certain {
                heap.insert_certain(poi, dist);
            } else {
                heap.insert_uncertain(poi, dist);
                prop_assert!(heap.certain_count() >= certain_before);
            }
            prop_assert!(heap.len() <= k);
            let entries = heap.entries();
            let c = heap.certain_count();
            prop_assert!(entries[..c].iter().all(|e| e.certain));
            prop_assert!(entries[c..].iter().all(|e| !e.certain));
            for w in entries[..c].windows(2) {
                prop_assert!(w[0].dist <= w[1].dist);
            }
            for w in entries[c..].windows(2) {
                prop_assert!(w[0].dist <= w[1].dist);
            }
            let mut ids: Vec<u64> = entries.iter().map(|e| e.poi.poi_id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), entries.len());
        }
    }

    /// Multi-peer verification never certifies a POI that is not a true
    /// top-k NN, for honest caches.
    #[test]
    fn knn_multiple_soundness(
        world in pois(30),
        q in pt(),
        peer_locs in prop::collection::vec(pt(), 1..4),
        k in 1usize..6,
        cache_k in 1usize..8,
    ) {
        let peers: Vec<PeerCacheEntry> = peer_locs
            .iter()
            .map(|&loc| {
                let mut by_d: Vec<(f64, usize)> =
                    world.iter().enumerate().map(|(i, p)| (loc.dist(*p), i)).collect();
                by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                PeerCacheEntry::from_sorted(
                    loc,
                    by_d.iter().take(cache_k).map(|&(_, i)| (i as u64, world[i])).collect(),
                )
            })
            .collect();
        let mut heap = ResultHeap::new(k);
        knn_multiple(q, &peers, RegionMethod::Exact, &mut heap);
        let mut by_q: Vec<(f64, u64)> =
            world.iter().enumerate().map(|(i, p)| (q.dist(*p), i as u64)).collect();
        by_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (rank, e) in heap.certain().iter().enumerate() {
            prop_assert!((e.dist - by_q[rank].0).abs() < 1e-9, "rank {} wrong", rank);
        }
    }
}
