//! Adversarial / failure-injection tests: what happens when the paper's
//! honest-cache assumption breaks, and that the machinery degrades in the
//! documented way rather than arbitrarily.
//!
//! SENN's soundness (certified answers are true answers) rests on every
//! peer cache being an exact prefix of the true NN ranking at its cached
//! query location. These tests pin down the trust boundary:
//!
//! * corrupted caches CAN produce wrong certified answers (there is no
//!   cryptographic defense — same as the paper);
//! * but every failure mode is *detectable* by a server cross-check, and
//! * malformed inputs (unsorted, duplicated, empty) never panic or hang.

use mobishare_senn::core::CachedNn;
use mobishare_senn::core::{PeerCacheEntry, RTreeServer, Resolution, SennEngine};
use mobishare_senn::geom::Point;

fn world() -> (Vec<Point>, RTreeServer) {
    let pois = vec![
        Point::new(10.0, 0.0),
        Point::new(30.0, 0.0),
        Point::new(60.0, 0.0),
        Point::new(100.0, 0.0),
    ];
    let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
    (pois, server)
}

#[test]
fn lying_peer_produces_detectably_wrong_certains() {
    let (_, server) = world();
    // The peer claims a cache from (0,0) whose farthest NN is at distance
    // 100 — implying it knows every POI within 100 m — but it omits the
    // POI at (10, 0). Lemma 3.2 will wrongly certify (30, 0) as the 1NN.
    let liar = PeerCacheEntry::from_sorted(
        Point::ORIGIN,
        vec![(1, Point::new(30.0, 0.0)), (3, Point::new(100.0, 0.0))],
    );
    let engine = SennEngine::default();
    let q = Point::new(5.0, 0.0);
    let out = engine.query_peers_only(q, 1, std::slice::from_ref(&liar));
    assert_eq!(
        out.resolution(),
        Resolution::SinglePeer,
        "the lie goes through"
    );
    assert_eq!(out.certain()[0].poi.poi_id, 1, "wrong POI certified");
    // ... and the server cross-check exposes it.
    let truth = engine.query::<PeerCacheEntry>(q, 1, &[], &server);
    assert_ne!(truth.results[0].poi.poi_id, out.certain()[0].poi.poi_id);
}

#[test]
fn understated_radius_is_harmless() {
    // A peer that under-reports its certain area (drops its farthest NNs)
    // can only make verification fail more often — never certify wrongly.
    let (pois, server) = world();
    let honest_prefix = PeerCacheEntry::from_sorted(
        Point::ORIGIN,
        vec![(0, Point::new(10.0, 0.0)), (1, Point::new(30.0, 0.0))],
    );
    let engine = SennEngine::default();
    for k in 1..=3usize {
        let out = engine.query(
            Point::new(2.0, 0.0),
            k,
            std::slice::from_ref(&honest_prefix),
            &server,
        );
        // Whatever gets certified matches ground truth.
        let mut d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (Point::new(2.0, 0.0).dist(*p), i))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (rank, e) in out.results.iter().enumerate() {
            assert_eq!(e.poi.poi_id, d[rank].1 as u64, "k={k} rank {rank}");
        }
    }
}

#[test]
fn malformed_caches_never_panic() {
    let (_, server) = world();
    let engine = SennEngine::default();
    let q = Point::new(50.0, 50.0);

    // Unsorted input: CacheEntry::new sorts it.
    let unsorted = PeerCacheEntry::new(
        Point::ORIGIN,
        vec![
            CachedNn {
                poi_id: 3,
                position: Point::new(100.0, 0.0),
            },
            CachedNn {
                poi_id: 0,
                position: Point::new(10.0, 0.0),
            },
        ],
    );
    assert!(unsorted.neighbors[0].poi_id == 0, "auto-sorted");

    // Duplicated POI ids across peers, empty caches, zero-radius caches,
    // self-referential positions: the query must complete and be correct.
    let dup_a = PeerCacheEntry::new(
        Point::new(49.0, 50.0),
        vec![CachedNn {
            poi_id: 1,
            position: Point::new(30.0, 0.0),
        }],
    );
    let dup_b = PeerCacheEntry::new(
        Point::new(51.0, 50.0),
        vec![CachedNn {
            poi_id: 1,
            position: Point::new(30.0, 0.0),
        }],
    );
    let empty = PeerCacheEntry::new(Point::new(50.0, 50.0), vec![]);
    let zero = PeerCacheEntry::new(
        q,
        vec![CachedNn {
            poi_id: 2,
            position: q,
        }], // POI exactly at the query point?!
    );
    let out = engine.query(q, 2, &[dup_a, dup_b, empty, zero], &server);
    assert_eq!(out.results.len(), 2);
    let mut ids: Vec<u64> = out.results.iter().map(|e| e.poi.poi_id).collect();
    ids.dedup();
    assert_eq!(ids.len(), 2, "no duplicate POIs in the answer");
}

#[test]
fn nan_positions_are_rejected_at_the_boundary() {
    // The tree refuses non-finite points, so a poisoned position cannot
    // enter the server index.
    let result = std::panic::catch_unwind(|| {
        let mut tree = mobishare_senn::rtree::RStarTree::new();
        tree.insert(Point::new(f64::NAN, 1.0), 0u32);
    });
    assert!(result.is_err());
}

#[test]
fn extreme_coordinates_stay_finite() {
    // Huge-but-finite coordinates flow through verification without
    // producing NaNs or panics.
    let far = 1e12;
    let server = RTreeServer::new(vec![(0, Point::new(far, far))]);
    let peer =
        PeerCacheEntry::from_sorted(Point::new(far - 10.0, far), vec![(0, Point::new(far, far))]);
    let engine = SennEngine::default();
    let out = engine.query(
        Point::new(far - 5.0, far),
        1,
        std::slice::from_ref(&peer),
        &server,
    );
    assert_eq!(out.results.len(), 1);
    assert!(out.results[0].dist.is_finite());
}
