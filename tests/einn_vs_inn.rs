//! Server-side search equivalence and page-access ordering: EINN must
//! return exactly the residual answer set of INN while never reading more
//! pages, across randomized worlds and verification states.

use mobishare_senn::geom::Point;
use mobishare_senn::rtree::{RStarTree, SearchBounds};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn world(n: usize, side: f64, seed: u64) -> (RStarTree<u32>, Vec<Point>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let tree = RStarTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
    );
    (tree, pts)
}

#[test]
fn einn_returns_residual_suffix_of_inn() {
    let (tree, pts) = world(5_000, 10_000.0, 2024);
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..40 {
        let q = Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0));
        let k = rng.gen_range(2..=20usize);
        let verified = rng.gen_range(0..k); // how many NNs the client holds
        let mut d: Vec<f64> = pts.iter().map(|p| q.dist(*p)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let bounds = SearchBounds {
            lower: (verified > 0).then(|| d[verified - 1]),
            upper: Some(d[k - 1]),
        };
        // Fetch the residual count (+1 for the re-reported boundary POI).
        let fetch = k - verified + usize::from(verified > 0);
        let (einn, acc_einn) = tree.knn_bounded(q, fetch, bounds);
        let (inn, acc_inn) = tree.knn(q, k);

        // EINN's results are a suffix of INN's (same distances).
        let inn_d: Vec<f64> = inn.iter().map(|n| n.dist).collect();
        let start = if verified > 0 { verified - 1 } else { 0 };
        for (e, want) in einn.iter().zip(&inn_d[start..]) {
            assert!((e.dist - want).abs() < 1e-9, "suffix mismatch");
        }
        assert!(
            acc_einn <= acc_inn,
            "EINN read more pages ({acc_einn}) than INN ({acc_inn}) at k={k}, verified={verified}"
        );
    }
}

#[test]
fn savings_grow_with_verified_prefix() {
    let (tree, pts) = world(20_000, 20_000.0, 7);
    let q = Point::new(10_000.0, 10_000.0);
    let k = 20usize;
    let mut d: Vec<f64> = pts.iter().map(|p| q.dist(*p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (_, base) = tree.knn(q, k);
    let mut last = u64::MAX;
    for verified in [0usize, 5, 10, 19] {
        let bounds = SearchBounds {
            lower: (verified > 0).then(|| d[verified - 1]),
            upper: Some(d[k - 1]),
        };
        let fetch = k - verified + usize::from(verified > 0);
        let (_, acc) = tree.knn_bounded(q, fetch, bounds);
        assert!(acc <= base, "never worse than INN");
        assert!(acc <= last, "more verification must not cost more pages");
        last = acc;
    }
    assert!(last < base, "a 19/20 verified prefix must save pages");
}

#[test]
fn clustered_data_prunes_whole_subtrees() {
    // POIs in tight clusters: once the verified circle swallows the
    // querier's own cluster, EINN must skip its entire subtree.
    let mut rng = SmallRng::seed_from_u64(555);
    let mut pts = Vec::new();
    for c in 0..20 {
        let cx = (c % 5) as f64 * 5_000.0 + 2_500.0;
        let cy = (c / 5) as f64 * 5_000.0 + 2_500.0;
        for _ in 0..200 {
            pts.push(Point::new(
                cx + rng.gen_range(-200.0..200.0),
                cy + rng.gen_range(-200.0..200.0),
            ));
        }
    }
    let tree = RStarTree::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
    );
    let q = Point::new(2_500.0, 2_500.0);
    let mut d: Vec<f64> = pts.iter().map(|p| q.dist(*p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let k = 201usize; // forces leaving the home cluster
    let verified = 200usize; // the whole home cluster is known
    let bounds = SearchBounds {
        lower: Some(d[verified - 1]),
        upper: Some(d[k - 1]),
    };
    let (res, acc_einn) = tree.knn_bounded(q, 2, bounds);
    let (_, acc_inn) = tree.knn(q, k);
    assert!((res.last().unwrap().dist - d[k - 1]).abs() < 1e-9);
    assert!(
        (acc_einn as f64) < acc_inn as f64 * 0.25,
        "cluster pruning should save >75% of pages ({acc_einn} vs {acc_inn})"
    );
}

#[test]
fn range_query_unaffected_by_nn_state() {
    // Sanity: range queries and NN queries coexist on the same tree.
    let (tree, pts) = world(2_000, 5_000.0, 3);
    let rect =
        mobishare_senn::geom::Rect::new(Point::new(1000.0, 1000.0), Point::new(2000.0, 2500.0));
    let (hits, accesses) = tree.range_query(rect);
    let expected = pts.iter().filter(|p| rect.contains_point(**p)).count();
    assert_eq!(hits.len(), expected);
    assert!(accesses > 0);
    let _ = tree.knn(Point::new(0.0, 0.0), 5);
    let (hits2, _) = tree.range_query(rect);
    assert_eq!(hits2.len(), expected);
}
