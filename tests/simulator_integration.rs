//! Integration tests of the full simulator: determinism, attribution,
//! steady-state behaviour, and the headline effects the paper reports.

use mobishare_senn::sim::{
    ExpOptions, KChoice, MovementMode, ParamSet, SimConfig, SimParams, Simulator,
};

fn short(set: ParamSet, minutes: f64, seed: u64) -> SimConfig {
    let mut params = SimParams::two_by_two(set);
    params.t_execution_hours = minutes / 60.0;
    SimConfig::new(params, seed)
}

#[test]
fn identical_seeds_identical_metrics() {
    let run = |seed: u64| {
        let mut sim = Simulator::new(short(ParamSet::Synthetic, 5.0, seed));
        let m = sim.run();
        (
            m.queries,
            m.single_peer,
            m.multi_peer,
            m.server,
            m.einn_accesses,
            m.inn_accesses,
        )
    };
    assert_eq!(run(1), run(1));
    assert_eq!(run(2), run(2));
    assert_ne!(run(1), run(2), "different seeds should differ");
}

#[test]
fn attribution_is_exhaustive_and_exclusive() {
    for set in ParamSet::ALL {
        let mut sim = Simulator::new(short(set, 4.0, 9));
        let m = sim.run();
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "{set:?}"
        );
    }
}

#[test]
fn denser_world_shares_more() {
    // The paper's scalability claim: "the higher the mobile peer density,
    // the more queries can be answered by peers."
    let run = |set: ParamSet| {
        let mut sim = Simulator::new(short(set, 15.0, 33));
        sim.run().sqrr()
    };
    let la = run(ParamSet::LosAngeles);
    let rv = run(ParamSet::Riverside);
    assert!(
        la < rv,
        "dense LA should have lower SQRR than sparse Riverside ({la:.2} vs {rv:.2})"
    );
}

#[test]
fn larger_tx_range_never_hurts_much() {
    let run = |tx: f64| {
        let mut cfg = short(ParamSet::LosAngeles, 12.0, 5);
        cfg.params.tx_range_m = tx;
        Simulator::new(cfg).run().sqrr()
    };
    let narrow = run(20.0);
    let wide = run(200.0);
    assert!(
        wide < narrow,
        "10x the transmission range should reduce SQRR ({wide:.2} vs {narrow:.2})"
    );
}

#[test]
fn einn_saves_pages_at_simulation_scale() {
    let mut cfg = short(ParamSet::LosAngeles, 10.0, 21);
    cfg.k_choice = KChoice::Fixed(5);
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    assert!(m.server > 10, "need server-bound queries to compare");
    assert!(
        m.einn_accesses < m.inn_accesses,
        "EINN {} must save pages vs INN {}",
        m.einn_accesses,
        m.inn_accesses
    );
}

#[test]
fn both_movement_modes_produce_comparable_mixes() {
    let run = |mode: MovementMode| {
        let mut cfg = short(ParamSet::LosAngeles, 10.0, 12);
        cfg.mode = mode;
        Simulator::new(cfg).run()
    };
    let road = run(MovementMode::RoadNetwork);
    let free = run(MovementMode::FreeMovement);
    assert!(road.queries > 0 && free.queries > 0);
    // §4.3: the two modes land within a few percentage points of each
    // other (free movement slightly better in dense areas).
    assert!(
        (road.sqrr() - free.sqrr()).abs() < 0.25,
        "modes diverge too much: road {:.2} free {:.2}",
        road.sqrr(),
        free.sqrr()
    );
}

#[test]
fn quick_experiment_drivers_produce_full_series() {
    let opts = ExpOptions::quick();
    let f9 = mobishare_senn::sim::experiments::fig9(&opts);
    assert_eq!(f9.len(), 3);
    for s in &f9 {
        assert_eq!(s.points.len(), 10);
    }
    let f17 = mobishare_senn::sim::experiments::fig17(&opts);
    assert_eq!(f17.len(), 3);
    let modes = mobishare_senn::sim::experiments::free_movement_comparison(&opts);
    assert_eq!(modes.len(), 6);
}

#[test]
fn scaled_down_worlds_preserve_headline_ordering() {
    // LA keeps a lower SQRR than Riverside after the density-preserving
    // scale-down used for 30x30 runs.
    let run = |set: ParamSet| {
        let mut params = SimParams::thirty_by_thirty(set).scaled_down(200.0);
        params.t_execution_hours = 0.2;
        Simulator::new(SimConfig::new(params, 77)).run().sqrr()
    };
    let la = run(ParamSet::LosAngeles);
    let rv = run(ParamSet::Riverside);
    assert!(la <= rv + 0.05, "LA {la:.2} vs Riverside {rv:.2}");
}
