//! Integration tests for the future-work extensions: sharing-based range
//! queries, R-tree distance joins, ALT routing and network serialization —
//! each spanning at least two crates.

use mobishare_senn::core::{PeerCacheEntry, RTreeServer, Resolution, SennEngine};
use mobishare_senn::geom::Point;
use mobishare_senn::network::{
    alt_distance, astar_distance, generate_network, network_to_string, parse_network, AltIndex,
    GeneratorConfig, NodeLocator,
};
use mobishare_senn::rtree::{distance_join, RStarTree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pois(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn honest_peer(loc: Point, world: &[Point], cache_k: usize) -> PeerCacheEntry {
    let mut by_d: Vec<(f64, usize)> = world
        .iter()
        .enumerate()
        .map(|(i, p)| (loc.dist(*p), i))
        .collect();
    by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PeerCacheEntry::from_sorted(
        loc,
        by_d.iter()
            .take(cache_k)
            .map(|&(_, i)| (i as u64, world[i]))
            .collect(),
    )
}

#[test]
fn range_query_exactness_across_resolutions() {
    let world = pois(150, 500.0, 77);
    let server = RTreeServer::new(world.iter().enumerate().map(|(i, p)| (i as u64, *p)));
    let engine = SennEngine::default();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut resolutions = std::collections::HashMap::new();
    for _ in 0..150 {
        let q = Point::new(rng.gen_range(50.0..450.0), rng.gen_range(50.0..450.0));
        let r = rng.gen_range(0.0..120.0);
        let peers: Vec<PeerCacheEntry> = (0..rng.gen_range(0..4))
            .map(|_| {
                let loc = Point::new(
                    q.x + rng.gen_range(-60.0..60.0),
                    q.y + rng.gen_range(-60.0..60.0),
                );
                honest_peer(loc, &world, rng.gen_range(5..30))
            })
            .collect();
        let out = engine.range_query(q, r, &peers, &server);
        *resolutions
            .entry(format!("{:?}", out.resolution))
            .or_insert(0u32) += 1;
        let mut want: Vec<u64> = world
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist(**p) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        let mut got: Vec<u64> = out.results.iter().map(|(n, _)| n.poi_id).collect();
        got.sort_unstable();
        assert_eq!(got, want, "range answer wrong under {:?}", out.resolution);
    }
    // The sweep must exercise both the peer path and the server path.
    assert!(resolutions.len() >= 2, "only {resolutions:?} seen");
}

#[test]
fn range_and_knn_results_are_consistent() {
    let world = pois(200, 800.0, 31);
    let server = RTreeServer::new(world.iter().enumerate().map(|(i, p)| (i as u64, *p)));
    let engine = SennEngine::default();
    let q = Point::new(400.0, 400.0);
    // The k-th NN's distance as a range radius returns exactly k POIs
    // (absent ties).
    let knn = engine.query::<PeerCacheEntry>(q, 7, &[], &server);
    let radius = knn.results.last().unwrap().dist;
    let range = engine.range_query(q, radius, &[], &server);
    assert_eq!(range.results.len(), 7);
    for (nn, (rp, _)) in knn.results.iter().zip(&range.results) {
        assert_eq!(nn.poi.poi_id, rp.poi_id);
    }
    assert_eq!(range.resolution, Resolution::Server);
}

#[test]
fn distance_join_between_hosts_and_pois() {
    // "Which cars are within 100 m of a gas station?" — a cross-crate join
    // between the host grid and the POI tree.
    let stations = pois(40, 2000.0, 3);
    let cars = pois(300, 2000.0, 4);
    let ts = RStarTree::bulk_load(stations.iter().enumerate().map(|(i, p)| (*p, i)).collect());
    let tc = RStarTree::bulk_load(cars.iter().enumerate().map(|(i, p)| (*p, i)).collect());
    let (pairs, accesses) = distance_join(&tc, &ts, 100.0);
    let brute: usize = cars
        .iter()
        .map(|c| stations.iter().filter(|s| c.dist(**s) <= 100.0).count())
        .sum();
    assert_eq!(pairs.len(), brute);
    assert!(accesses > 0);
}

#[test]
fn alt_agrees_with_astar_on_generated_city() {
    let net = generate_network(&GeneratorConfig::city(3000.0, 99));
    let idx = AltIndex::build(&net, 6);
    let n = net.node_count() as u32;
    for i in 0..25u32 {
        let a = (i * 131) % n;
        let b = (i * 37 + 11) % n;
        let want = astar_distance(&net, a, b);
        let (got, _) = alt_distance(&net, &idx, a, b);
        match (got, want) {
            (Some(g), Some(w)) => assert!((g - w).abs() < 1e-6),
            (g, w) => assert_eq!(g.is_some(), w.is_some()),
        }
    }
}

#[test]
fn serialized_network_supports_the_full_stack() {
    // Round-trip a generated network through the text format and run a
    // SNNN-style network distance on the parsed copy.
    let net = generate_network(&GeneratorConfig::city(1200.0, 8));
    let text = network_to_string(&net);
    let parsed = parse_network(&text).unwrap();
    assert!(parsed.is_connected());
    let locator = NodeLocator::new(&parsed);
    let a = Point::new(100.0, 100.0);
    let b = Point::new(1100.0, 900.0);
    let na = locator.nearest(a).unwrap();
    let nb = locator.nearest(b).unwrap();
    let d = astar_distance(&parsed, na, nb).unwrap();
    assert!(d >= parsed.position(na).dist(parsed.position(nb)) - 1e-9);
}
