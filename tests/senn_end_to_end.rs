//! End-to-end SENN correctness on randomized worlds, spanning
//! `senn-geom`, `senn-rtree`, `senn-cache` and `senn-core`.

use mobishare_senn::core::multiple::RegionMethod;
use mobishare_senn::core::{PeerCacheEntry, RTreeServer, Resolution, SennConfig, SennEngine};
use mobishare_senn::geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_pois(rng: &mut SmallRng, n: usize, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

/// Honest peer cache: the true `cache_k`-NN prefix at `loc`.
fn honest_peer(loc: Point, pois: &[Point], cache_k: usize) -> PeerCacheEntry {
    let mut by_d: Vec<(f64, usize)> = pois
        .iter()
        .enumerate()
        .map(|(i, p)| (loc.dist(*p), i))
        .collect();
    by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PeerCacheEntry::from_sorted(
        loc,
        by_d.iter()
            .take(cache_k)
            .map(|&(_, i)| (i as u64, pois[i]))
            .collect(),
    )
}

fn true_knn(pois: &[Point], q: Point, k: usize) -> Vec<(f64, usize)> {
    let mut by_d: Vec<(f64, usize)> = pois
        .iter()
        .enumerate()
        .map(|(i, p)| (q.dist(*p), i))
        .collect();
    by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    by_d.truncate(k);
    by_d
}

#[test]
fn senn_always_returns_true_knn() {
    let mut rng = SmallRng::seed_from_u64(0xE2E);
    for trial in 0..120 {
        let side = 1000.0;
        let n = rng.gen_range(10..200);
        let pois = random_pois(&mut rng, n, side);
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let k = rng.gen_range(1..=10usize);
        let peer_count = rng.gen_range(0..6);
        let peers: Vec<PeerCacheEntry> = (0..peer_count)
            .map(|_| {
                let loc = Point::new(
                    (q.x + rng.gen_range(-200.0..200.0)).clamp(0.0, side),
                    (q.y + rng.gen_range(-200.0..200.0)).clamp(0.0, side),
                );
                honest_peer(loc, &pois, rng.gen_range(1..=12))
            })
            .collect();
        let engine = SennEngine::default();
        let out = engine.query(q, k, &peers, &server);
        let want = true_knn(&pois, q, k);
        assert_eq!(out.results.len(), k.min(n), "trial {trial}");
        for (i, (r, (wd, _))) in out.results.iter().zip(&want).enumerate() {
            assert!(
                (r.dist - wd).abs() < 1e-9,
                "trial {trial} rank {i}: dist {} vs true {} ({:?})",
                r.dist,
                wd,
                out.resolution()
            );
        }
    }
}

#[test]
fn no_false_certains_even_with_stale_peer_positions() {
    // Peers have moved since caching (their *current* position is
    // irrelevant — only the cached query location matters). Verification
    // must stay sound regardless.
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..60 {
        let side = 500.0;
        let n = rng.gen_range(5..50);
        let pois = random_pois(&mut rng, n, side);
        let q = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let k = rng.gen_range(1..=6usize);
        let peer_count = rng.gen_range(1..5);
        let peers: Vec<PeerCacheEntry> = (0..peer_count)
            .map(|_| {
                let loc = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                let cache_k = rng.gen_range(1..=8);
                honest_peer(loc, &pois, cache_k)
            })
            .collect();
        let engine = SennEngine::default();
        let out = engine.query_peers_only(q, k, &peers);
        let want = true_knn(&pois, q, k);
        for (rank, e) in out.certain().iter().enumerate() {
            assert!(
                (e.dist - want[rank].0).abs() < 1e-9,
                "claimed-certain rank {rank} is not the true NN"
            );
        }
    }
}

#[test]
fn region_methods_agree_on_resolution_soundness() {
    // The exact region resolves at least as many queries as the
    // polygonized one, and both only report true answers.
    let mut rng = SmallRng::seed_from_u64(0x9e3779);
    let mut poly_resolved = 0u32;
    let mut exact_resolved = 0u32;
    for _ in 0..80 {
        let side = 400.0;
        let pois = random_pois(&mut rng, 40, side);
        let q = Point::new(rng.gen_range(100.0..300.0), rng.gen_range(100.0..300.0));
        let k = rng.gen_range(1..=4usize);
        let peers: Vec<PeerCacheEntry> = (0..4)
            .map(|_| {
                let loc = Point::new(
                    q.x + rng.gen_range(-60.0..60.0),
                    q.y + rng.gen_range(-60.0..60.0),
                );
                honest_peer(loc, &pois, 6)
            })
            .collect();
        for (method, counter) in [
            (
                RegionMethod::Polygonized { vertices: 24 },
                &mut poly_resolved,
            ),
            (RegionMethod::Exact, &mut exact_resolved),
        ] {
            let engine = SennEngine::new(SennConfig {
                region_method: method,
                ..Default::default()
            });
            let out = engine.query_peers_only(q, k, &peers);
            if out.resolution() != Resolution::Unresolved {
                *counter += 1;
                let want = true_knn(&pois, q, k);
                for (rank, e) in out.certain().iter().enumerate() {
                    assert!((e.dist - want[rank].0).abs() < 1e-9);
                }
            }
        }
    }
    assert!(
        exact_resolved >= poly_resolved,
        "exact {exact_resolved} vs poly {poly_resolved}"
    );
    assert!(
        exact_resolved > 0,
        "scenario too hard: nothing resolved peer-side"
    );
}

#[test]
fn bounds_forwarded_to_server_do_not_change_answers() {
    // With and without peer-derived pruning bounds, the final result set
    // must be identical — bounds only save pages.
    let mut rng = SmallRng::seed_from_u64(31337);
    for _ in 0..40 {
        let side = 800.0;
        let pois = random_pois(&mut rng, 150, side);
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        let k = rng.gen_range(2..=8usize);
        let peer = honest_peer(
            Point::new(
                q.x + rng.gen_range(-30.0..30.0),
                q.y + rng.gen_range(-30.0..30.0),
            ),
            &pois,
            3,
        );
        let engine = SennEngine::default();
        let with_peer = engine.query(q, k, std::slice::from_ref(&peer), &server);
        let without = engine.query::<PeerCacheEntry>(q, k, &[], &server);
        assert_eq!(with_peer.results.len(), without.results.len());
        for (a, b) in with_peer.results.iter().zip(&without.results) {
            assert!((a.dist - b.dist).abs() < 1e-9);
        }
    }
}
