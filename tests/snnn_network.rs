//! SNNN (Algorithm 2) on real generated road networks, checked against a
//! brute-force network kNN oracle. Spans `senn-network`, `senn-rtree` and
//! `senn-core`.

use mobishare_senn::core::{snnn_query, PeerCacheEntry, RTreeServer, SennEngine, SnnnConfig};
use mobishare_senn::geom::Point;
use mobishare_senn::network::{
    dijkstra_map, generate_network, ier_knn, ine_knn, GeneratorConfig, NetworkDistance,
    NetworkPois, NodeLocator,
};
use mobishare_senn::rtree::RStarTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct World {
    net: mobishare_senn::network::RoadNetwork,
    pois: NetworkPois,
    positions: Vec<Point>,
    tree: RStarTree<u32>,
    locator: NodeLocator,
    server: RTreeServer,
}

fn world(seed: u64, poi_count: usize, side: f64) -> World {
    let net = generate_network(&GeneratorConfig::city(side, seed));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDADA);
    let positions: Vec<Point> = (0..poi_count)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let pois = NetworkPois::snap(&net, positions.clone());
    let tree = RStarTree::bulk_load(
        positions
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i as u32))
            .collect(),
    );
    let locator = NodeLocator::new(&net);
    let server = RTreeServer::new(positions.iter().enumerate().map(|(i, p)| (i as u64, *p)));
    World {
        net,
        pois,
        positions,
        tree,
        locator,
        server,
    }
}

/// Brute-force network kNN with the same point-to-poi distance convention
/// the library uses (legs to/from snap nodes included).
fn brute(w: &World, q: Point, k: usize) -> Vec<f64> {
    let qn = w.locator.nearest(q).unwrap();
    let map = dijkstra_map(&w.net, qn, None);
    let leg = q.dist(w.net.position(qn));
    let mut d: Vec<f64> = (0..w.pois.len() as u32)
        .filter_map(|i| {
            let core = map[w.pois.snap_node(i) as usize];
            core.is_finite().then(|| leg + core + w.pois.snap_leg(i))
        })
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

#[test]
fn snnn_agrees_with_ier_ine_and_brute_force() {
    let w = world(11, 40, 3000.0);
    let mut rng = SmallRng::seed_from_u64(0xABC);
    let engine = SennEngine::default();
    for _ in 0..15 {
        let q = Point::new(rng.gen_range(0.0..3000.0), rng.gen_range(0.0..3000.0));
        let qn = w.locator.nearest(q).unwrap();
        let k = rng.gen_range(1..=5usize);

        let want = brute(&w, q, k);
        let ier = ier_knn(&w.net, &w.pois, &w.tree, q, qn, k);
        let ine = ine_knn(&w.net, &w.pois, q, qn, k);
        let mut model = NetworkDistance::anchored(&w.net, &w.locator, qn);
        let snnn = snnn_query::<mobishare_senn::core::PeerCacheEntry, _>(
            &engine,
            q,
            k,
            &[],
            &w.server,
            &mut model,
            SnnnConfig::default(),
        );
        assert_eq!(ier.len(), k);
        assert_eq!(ine.len(), k);
        assert_eq!(snnn.results.len(), k);
        for i in 0..k {
            assert!((ier[i].network_dist - want[i]).abs() < 1e-6, "IER rank {i}");
            assert!((ine[i].network_dist - want[i]).abs() < 1e-6, "INE rank {i}");
            // SNNN's distance convention differs slightly for the POI leg
            // (it snaps the POI independently); compare with a tolerance
            // proportional to the snap legs involved.
            let tol = 1e-6 + w.pois.snap_leg(ier[i].poi) + 1.0;
            assert!(
                (snnn.results[i].network_dist - want[i]).abs() <= tol,
                "SNNN rank {i}: {} vs {}",
                snnn.results[i].network_dist,
                want[i]
            );
        }
    }
}

#[test]
fn snnn_with_warm_peer_avoids_server_for_euclidean_phase() {
    let w = world(5, 60, 2500.0);
    let engine = SennEngine::default();
    let q = Point::new(1250.0, 1250.0);
    let qn = w.locator.nearest(q).unwrap();
    // A collocated peer cached every POI's Euclidean ranking (idealized).
    let mut by_d: Vec<(f64, usize)> = w
        .positions
        .iter()
        .enumerate()
        .map(|(i, p)| (q.dist(*p), i))
        .collect();
    by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let peer = PeerCacheEntry::from_sorted(
        q,
        by_d.iter()
            .take(30)
            .map(|&(_, i)| (i as u64, w.positions[i]))
            .collect(),
    );
    let mut model = NetworkDistance::anchored(&w.net, &w.locator, qn);
    let out = snnn_query(
        &engine,
        q,
        3,
        std::slice::from_ref(&peer),
        &w.server,
        &mut model,
        SnnnConfig::default(),
    );
    assert_eq!(
        out.trace.server_accesses, 0,
        "warm peer should spare the server entirely"
    );
    assert_eq!(out.results.len(), 3);
    // Network distances dominate Euclidean ones.
    for r in &out.results {
        assert!(r.network_dist >= r.euclid_dist - 1e-9);
    }
}

#[test]
fn network_distance_dominates_euclidean_on_generated_networks() {
    for seed in [1u64, 7, 23] {
        let w = world(seed, 25, 2000.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let a = Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0));
            let b = Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0));
            if let Some(nd) = w.net.network_distance_points(a, b) {
                assert!(nd >= a.dist(b) - 1e-9, "ED lower-bound property violated");
            }
        }
    }
}
