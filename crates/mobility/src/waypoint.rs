//! The random waypoint model (free movement mode).

use rand::rngs::SmallRng;
use rand::Rng;
use senn_geom::{Point, Rect};

/// Parameters of the random waypoint model.
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// The area hosts roam in.
    pub area: Rect,
    /// Travel speed in meters per second ("the movement velocity is
    /// fixed" in free movement mode).
    pub speed_mps: f64,
    /// Pause at each waypoint is uniform in `[0, max_pause_secs]`.
    pub max_pause_secs: f64,
    /// When set, destinations are drawn within this straight-line radius
    /// of the current position (clamped to the area) — local trips, like
    /// the road mover's `trip_radius`. `None` draws uniformly in the area.
    pub trip_radius: Option<f64>,
}

impl WaypointConfig {
    /// Config with the paper-style defaults (pause up to 60 s).
    pub fn new(area: Rect, speed_mps: f64) -> Self {
        assert!(!area.is_empty(), "waypoint area must be non-empty");
        assert!(speed_mps > 0.0, "speed must be positive");
        WaypointConfig {
            area,
            speed_mps,
            max_pause_secs: 60.0,
            trip_radius: None,
        }
    }
}

/// A host moving under the random waypoint model.
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use senn_geom::{Point, Rect};
/// use senn_mobility::{RandomWaypoint, WaypointConfig};
///
/// let area = Rect::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut host = RandomWaypoint::new(
///     Point::new(500.0, 500.0),
///     WaypointConfig::new(area, 13.4),
///     &mut rng,
/// );
/// for _ in 0..60 {
///     host.step(1.0, &mut rng);
///     assert!(area.contains_point(host.position()));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    config: WaypointConfig,
    position: Point,
    destination: Point,
    pause_left: f64,
}

impl RandomWaypoint {
    /// Creates a mover at `start` with a random first destination.
    pub fn new(start: Point, config: WaypointConfig, rng: &mut SmallRng) -> Self {
        let destination = pick_destination(&config, start, rng);
        RandomWaypoint {
            config,
            position: start,
            destination,
            pause_left: 0.0,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Current destination waypoint.
    pub fn destination(&self) -> Point {
        self.destination
    }

    /// Advances the mover by `dt_secs`.
    pub fn step(&mut self, dt_secs: f64, rng: &mut SmallRng) {
        let mut budget = dt_secs;
        while budget > 1e-12 {
            if self.pause_left > 0.0 {
                let used = self.pause_left.min(budget);
                self.pause_left -= used;
                budget -= used;
                continue;
            }
            let to_dest = self.destination - self.position;
            let dist = to_dest.norm();
            let reach = self.config.speed_mps * budget;
            if reach >= dist {
                // Arrive, then pause and pick the next destination.
                self.position = self.destination;
                budget -= if self.config.speed_mps > 0.0 {
                    dist / self.config.speed_mps
                } else {
                    budget
                };
                self.pause_left = rng.gen_range(0.0..=self.config.max_pause_secs.max(0.0));
                self.destination = pick_destination(&self.config, self.position, rng);
            } else {
                self.position = self.position + to_dest * (reach / dist);
                budget = 0.0;
            }
        }
    }
}

fn random_point(area: Rect, rng: &mut SmallRng) -> Point {
    Point::new(
        rng.gen_range(area.min.x..=area.max.x),
        rng.gen_range(area.min.y..=area.max.y),
    )
}

/// Next waypoint: uniform in the area, or (with a trip radius) uniform in
/// the disk around the current position, clamped into the area — clamping
/// each coordinate only shrinks the displacement, so the radius bound
/// always holds.
fn pick_destination(config: &WaypointConfig, from: Point, rng: &mut SmallRng) -> Point {
    match config.trip_radius {
        None => random_point(config.area, rng),
        Some(radius) => {
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = radius * rng.gen_range(0.0..1.0f64).sqrt();
            let area = config.area;
            Point::new(
                (from.x + r * theta.cos()).clamp(area.min.x, area.max.x),
                (from.y + r * theta.sin()).clamp(area.min.y, area.max.y),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn area() -> Rect {
        Rect::new(Point::ORIGIN, Point::new(1000.0, 1000.0))
    }

    #[test]
    fn stays_in_area() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut m = RandomWaypoint::new(
            Point::new(500.0, 500.0),
            WaypointConfig::new(area(), 15.0),
            &mut rng,
        );
        for _ in 0..5000 {
            m.step(1.0, &mut rng);
            let p = m.position();
            assert!(area().contains_point(p), "escaped to {p:?}");
        }
    }

    #[test]
    fn moves_at_configured_speed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut cfg = WaypointConfig::new(area(), 20.0);
        cfg.max_pause_secs = 0.0;
        let mut m = RandomWaypoint::new(Point::new(0.0, 0.0), cfg, &mut rng);
        let before = m.position();
        m.step(1.0, &mut rng);
        let moved = before.dist(m.position());
        // One second at 20 m/s moves exactly 20 m unless a waypoint was hit
        // (then the direction changes but the total path length is 20 m).
        assert!(moved <= 20.0 + 1e-9);
        assert!(moved > 0.0);
    }

    #[test]
    fn pauses_at_waypoints() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cfg = WaypointConfig::new(area(), 1000.0); // fast: reaches quickly
        cfg.max_pause_secs = 30.0;
        let mut m = RandomWaypoint::new(Point::new(500.0, 500.0), cfg, &mut rng);
        // Step in small increments and record any interval with no motion.
        let mut paused_once = false;
        let mut last = m.position();
        for _ in 0..500 {
            m.step(0.1, &mut rng);
            if m.position() == last {
                paused_once = true;
            }
            last = m.position();
        }
        assert!(paused_once, "a fast mover must hit waypoints and pause");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = RandomWaypoint::new(
                Point::new(10.0, 10.0),
                WaypointConfig::new(area(), 12.0),
                &mut rng,
            );
            for _ in 0..100 {
                m.step(1.0, &mut rng);
            }
            m.position()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn trip_radius_bounds_leg_lengths() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut cfg = WaypointConfig::new(area(), 50.0);
        cfg.max_pause_secs = 0.0;
        cfg.trip_radius = Some(150.0);
        let mut m = RandomWaypoint::new(Point::new(500.0, 500.0), cfg, &mut rng);
        for _ in 0..2000 {
            m.step(1.0, &mut rng);
            // The mover is always somewhere on the current leg, whose
            // length is bounded by the trip radius — so the remaining
            // distance to the destination is too.
            assert!(
                m.position().dist(m.destination()) <= 150.0 + 1e-9,
                "drifted beyond the trip radius"
            );
        }
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut m = RandomWaypoint::new(
            Point::new(1.0, 2.0),
            WaypointConfig::new(area(), 5.0),
            &mut rng,
        );
        let before = m.position();
        m.step(0.0, &mut rng);
        assert_eq!(m.position(), before);
    }
}
