#![warn(missing_docs)]
//! # senn-mobility
//!
//! Mobility models for the mobile hosts of the simulation (Section 4.1).
//!
//! The paper's movement generator has two modes:
//!
//! * **Free movement** — the random waypoint model (Broch et al., MobiCom
//!   1998): pick a uniform destination inside the area, travel straight at
//!   a fixed velocity, pause a random interval, repeat.
//! * **Road network** — the same waypoint logic constrained to the
//!   modeling graph: pick a destination junction, follow the shortest
//!   path, travel each segment at `min(host velocity, segment speed
//!   limit)` ("each mobile host monitors the speed limit on the road it
//!   is currently traveling on and adjusts its velocity accordingly").
//!
//! A configurable percentage of hosts (`M_percentage`) moves at all; the
//! rest are parked. All trajectories are deterministic in the per-host RNG.

pub mod road;
pub mod waypoint;

use rand::rngs::SmallRng;
use senn_geom::Point;
use senn_network::RoadNetwork;

pub use road::{RoadMover, RoadMoverConfig};
pub use waypoint::{RandomWaypoint, WaypointConfig};

/// The movement state of one mobile host.
#[derive(Clone, Debug)]
pub enum HostMobility {
    /// A host that never moves (the `1 - M_percentage` fraction).
    Parked(Point),
    /// Free-movement random waypoint.
    Free(RandomWaypoint),
    /// Road-network-constrained movement.
    Road(RoadMover),
}

impl HostMobility {
    /// Current position of the host.
    pub fn position(&self) -> Point {
        match self {
            HostMobility::Parked(p) => *p,
            HostMobility::Free(m) => m.position(),
            HostMobility::Road(m) => m.position(),
        }
    }

    /// Advances the host by `dt_secs` of simulated time. Road movers need
    /// the network they travel on; the other variants ignore it.
    pub fn step(&mut self, net: Option<&RoadNetwork>, dt_secs: f64, rng: &mut SmallRng) {
        match self {
            HostMobility::Parked(_) => {}
            HostMobility::Free(m) => m.step(dt_secs, rng),
            HostMobility::Road(m) => m.step(
                net.expect("road movers need the road network"),
                dt_secs,
                rng,
            ),
        }
    }

    /// True when the host moves at all.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, HostMobility::Parked(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use senn_geom::Rect;

    #[test]
    fn parked_host_never_moves() {
        let mut host = HostMobility::Parked(Point::new(3.0, 4.0));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            host.step(None, 1.0, &mut rng);
        }
        assert_eq!(host.position(), Point::new(3.0, 4.0));
        assert!(!host.is_mobile());
    }

    #[test]
    fn free_host_dispatches() {
        let area = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let cfg = WaypointConfig {
            area,
            speed_mps: 10.0,
            ..WaypointConfig::new(area, 10.0)
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut host =
            HostMobility::Free(RandomWaypoint::new(Point::new(50.0, 50.0), cfg, &mut rng));
        assert!(host.is_mobile());
        let before = host.position();
        for _ in 0..200 {
            host.step(None, 1.0, &mut rng);
        }
        assert_ne!(host.position(), before);
    }
}
