//! Road-network-constrained movement (the paper's road network mode).

use rand::rngs::SmallRng;
use rand::Rng;
use senn_geom::Point;
use senn_network::{astar_path, NodeId, RoadNetwork};

/// Parameters of the road mover.
#[derive(Clone, Copy, Debug)]
pub struct RoadMoverConfig {
    /// Host's own cruising velocity in meters per second (the paper's
    /// `M_velocity`). On each segment the host travels at
    /// `min(velocity, segment speed limit)`.
    pub velocity_mps: f64,
    /// Pause at each destination is uniform in `[0, max_pause_secs]`.
    pub max_pause_secs: f64,
    /// Destinations are picked among junctions within this straight-line
    /// radius (meters) of the current position — cars make local trips,
    /// and bounding the radius keeps route computation cheap on
    /// county-scale networks. `f64::INFINITY` disables the bound.
    pub trip_radius: f64,
}

impl RoadMoverConfig {
    /// Defaults: 60 s max pause, 3 km trips.
    pub fn new(velocity_mps: f64) -> Self {
        assert!(velocity_mps > 0.0, "velocity must be positive");
        RoadMoverConfig {
            velocity_mps,
            max_pause_secs: 60.0,
            trip_radius: 3000.0,
        }
    }
}

/// A host moving along the road network between random junctions.
#[derive(Clone, Debug)]
pub struct RoadMover {
    config: RoadMoverConfig,
    /// Remaining route: `route[leg]` is the node being approached;
    /// the mover stands on the segment `route[leg - 1] -> route[leg]`.
    route: Vec<NodeId>,
    leg: usize,
    /// Distance already covered on the current segment.
    leg_progress: f64,
    position: Point,
    pause_left: f64,
    /// Node the mover last departed from (route anchor).
    at_node: NodeId,
}

impl RoadMover {
    /// Creates a mover parked at `start_node`.
    pub fn new(net: &RoadNetwork, start_node: NodeId, config: RoadMoverConfig) -> Self {
        RoadMover {
            config,
            route: Vec::new(),
            leg: 0,
            leg_progress: 0.0,
            position: net.position(start_node),
            pause_left: 0.0,
            at_node: start_node,
        }
    }

    /// Current position (interpolated along the current segment).
    pub fn position(&self) -> Point {
        self.position
    }

    /// Node the mover last departed from or is resting at.
    pub fn anchor_node(&self) -> NodeId {
        self.at_node
    }

    /// Speed on the current segment: host velocity capped by the segment's
    /// speed limit; the host velocity when idle.
    pub fn current_speed(&self, net: &RoadNetwork) -> f64 {
        if self.leg == 0 || self.leg >= self.route.len() {
            return self.config.velocity_mps;
        }
        let from = self.route[self.leg - 1];
        let to = self.route[self.leg];
        let limit = net
            .neighbors(from)
            .iter()
            .find(|e| e.to == to)
            .map(|e| e.class.speed_limit_mps())
            .unwrap_or(f64::INFINITY);
        self.config.velocity_mps.min(limit)
    }

    /// Advances the mover by `dt_secs`.
    pub fn step(&mut self, net: &RoadNetwork, dt_secs: f64, rng: &mut SmallRng) {
        let mut budget = dt_secs;
        let mut replans = 0;
        while budget > 1e-12 {
            if self.pause_left > 0.0 {
                let used = self.pause_left.min(budget);
                self.pause_left -= used;
                budget -= used;
                continue;
            }
            if self.leg >= self.route.len() {
                // Need a new trip.
                if replans >= 4 {
                    // Could not find a reachable destination this tick
                    // (e.g. isolated node): stay put.
                    return;
                }
                replans += 1;
                if !self.plan_trip(net, rng) {
                    continue;
                }
            }
            // Advance along the current segment.
            let from = self.route[self.leg - 1];
            let to = self.route[self.leg];
            let seg_len = net.position(from).dist(net.position(to));
            let speed = self.current_speed(net);
            let remaining = seg_len - self.leg_progress;
            let reach = speed * budget;
            if reach >= remaining {
                // Cross into the next segment.
                budget -= if speed > 0.0 {
                    remaining / speed
                } else {
                    budget
                };
                self.leg += 1;
                self.leg_progress = 0.0;
                self.at_node = to;
                self.position = net.position(to);
                if self.leg >= self.route.len() {
                    // Trip complete: pause here.
                    self.route.clear();
                    self.leg = 0;
                    self.pause_left = rng.gen_range(0.0..=self.config.max_pause_secs.max(0.0));
                }
            } else {
                self.leg_progress += reach;
                let t = if seg_len > 0.0 {
                    self.leg_progress / seg_len
                } else {
                    1.0
                };
                self.position = net.position(from).lerp(net.position(to), t);
                budget = 0.0;
            }
        }
    }

    /// Picks a random reachable destination junction and computes the
    /// route. Returns false when no usable trip was found.
    fn plan_trip(&mut self, net: &RoadNetwork, rng: &mut SmallRng) -> bool {
        let n = net.node_count();
        if n < 2 {
            self.pause_left = 1.0;
            return false;
        }
        // Rejection-sample a destination within the trip radius.
        let here = net.position(self.at_node);
        let mut dest = None;
        for _ in 0..16 {
            let cand = rng.gen_range(0..n) as NodeId;
            if cand == self.at_node {
                continue;
            }
            if net.position(cand).dist(here) <= self.config.trip_radius {
                dest = Some(cand);
                break;
            }
        }
        let Some(dest) = dest else {
            self.pause_left = 1.0;
            return false;
        };
        match astar_path(net, self.at_node, dest) {
            Some((path, _)) if path.len() >= 2 => {
                self.route = path;
                self.leg = 1;
                self.leg_progress = 0.0;
                true
            }
            _ => {
                self.pause_left = 1.0;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use senn_network::{generate_network, GeneratorConfig};

    fn net() -> RoadNetwork {
        generate_network(&GeneratorConfig::city(2000.0, 77))
    }

    #[test]
    fn moves_along_network() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cfg = RoadMoverConfig::new(15.0);
        cfg.max_pause_secs = 0.0;
        let mut m = RoadMover::new(&net, 0, cfg);
        let start = m.position();
        for _ in 0..120 {
            m.step(&net, 1.0, &mut rng);
        }
        assert_ne!(m.position(), start, "mover should have departed");
    }

    #[test]
    fn position_is_always_on_some_segment() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut m = RoadMover::new(&net, 5, RoadMoverConfig::new(20.0));
        for _ in 0..600 {
            m.step(&net, 1.0, &mut rng);
            let p = m.position();
            // The position must be within epsilon of the straight segment
            // between two adjacent nodes somewhere in the network. Check
            // against the anchor's incident segments (cheap sufficient
            // condition: distance to nearest node bounded by longest
            // incident edge).
            let anchor = m.anchor_node();
            let max_incident = net
                .neighbors(anchor)
                .iter()
                .map(|e| e.length)
                .fold(0.0f64, f64::max);
            assert!(
                p.dist(net.position(anchor)) <= max_incident + 1e-6,
                "position drifted off the anchor's neighborhood"
            );
        }
    }

    #[test]
    fn respects_speed_cap() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut cfg = RoadMoverConfig::new(100.0); // faster than any limit
        cfg.max_pause_secs = 0.0;
        let mut m = RoadMover::new(&net, 0, cfg);
        let mut prev = m.position();
        let max_limit = senn_network::RoadClass::Primary.speed_limit_mps();
        for _ in 0..300 {
            m.step(&net, 1.0, &mut rng);
            // Straight-line displacement per second can never exceed the
            // fastest speed limit (paths only make it shorter).
            assert!(prev.dist(m.position()) <= max_limit + 1e-6);
            prev = m.position();
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let net = net();
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = RoadMover::new(&net, 3, RoadMoverConfig::new(13.0));
            for _ in 0..200 {
                m.step(&net, 1.0, &mut rng);
            }
            m.position()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn single_node_network_stays_put() {
        let mut lonely = RoadNetwork::new();
        let n0 = lonely.add_node(Point::new(1.0, 1.0));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut m = RoadMover::new(&lonely, n0, RoadMoverConfig::new(10.0));
        for _ in 0..10 {
            m.step(&lonely, 1.0, &mut rng);
        }
        assert_eq!(m.position(), Point::new(1.0, 1.0));
    }
}
