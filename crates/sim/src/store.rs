//! Struct-of-arrays host substrate.
//!
//! At the million-host scale the per-host `struct { mobility, cache, rng }`
//! layout is what caps throughput: the movement pass and grid maintenance
//! touch every host every interval, and pointer-chasing a `Vec<Host>`
//! drags the (cold) cache state of every parked host through the data
//! cache along the way. [`HostStore`] splits the host population into
//! parallel dense columns — positions, mobility state, RNG streams — plus
//! a *sparse side table* of NN caches keyed by host id, touched only by
//! the querying/caching minority:
//!
//! * the **position column** is the single authoritative snapshot the
//!   peer-discovery grid indexes and every query reads — no per-batch
//!   position staging buffer exists anymore;
//! * the **movers list** fixes the hosts that can move at world-build
//!   time (parked hosts draw no RNG in `step`, so skipping them is
//!   behavior-identical to stepping them), making the movement pass
//!   O(movers) over contiguous memory;
//! * the **cache side table** holds an entry only for hosts that have
//!   completed a query — a missing entry is exactly an empty cache, so
//!   lookups are behavior-identical to the eager per-host caches while a
//!   99%-idle million-host world allocates nothing for the idle majority.
//!
//! Column order is host-id order everywhere, and the side table is only
//! ever accessed by key (never iterated), so the layout change cannot
//! perturb any deterministic ordering the batch engine relies on.

use std::collections::HashMap;

use rand::rngs::SmallRng;

use senn_cache::{CacheEntry, LruCache, MostRecentCache};
use senn_geom::Point;
use senn_mobility::HostMobility;

use crate::cache_step::{CachePolicy, HostCache};

/// Struct-of-arrays storage for the host population (see module docs).
pub(crate) struct HostStore {
    /// Current position of every host (authoritative; the grid indexes
    /// into this column).
    positions: Vec<Point>,
    /// Mobility state of every host.
    mobility: Vec<HostMobility>,
    /// Per-host deterministic RNG stream.
    rngs: Vec<SmallRng>,
    /// Ids of hosts whose mobility is not `Parked` — the only hosts the
    /// movement pass visits.
    movers: Vec<u32>,
    /// Sparse NN-cache side table: present only for hosts that stored a
    /// query result. Keyed access only — never iterated — so map order
    /// can't leak into the simulation.
    caches: HashMap<u32, HostCache>,
    policy: CachePolicy,
    cache_capacity: usize,
}

impl HostStore {
    /// An empty store that will build host caches with the given policy
    /// and per-host NN capacity (`C_Size`).
    pub(crate) fn new(policy: CachePolicy, cache_capacity: usize, host_hint: usize) -> Self {
        HostStore {
            positions: Vec::with_capacity(host_hint),
            mobility: Vec::with_capacity(host_hint),
            rngs: Vec::with_capacity(host_hint),
            movers: Vec::new(),
            caches: HashMap::new(),
            policy,
            cache_capacity,
        }
    }

    /// Appends one host (id = current `len`), in world-build order.
    pub(crate) fn push(&mut self, mobility: HostMobility, rng: SmallRng) {
        let id = self.positions.len() as u32;
        self.positions.push(mobility.position());
        if mobility.is_mobile() {
            self.movers.push(id);
        }
        self.mobility.push(mobility);
        self.rngs.push(rng);
    }

    /// Number of hosts.
    pub(crate) fn len(&self) -> usize {
        self.positions.len()
    }

    /// The dense position column (indexed by host id).
    pub(crate) fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// One host's current position.
    pub(crate) fn position(&self, host: u32) -> Point {
        self.positions[host as usize]
    }

    /// One host's RNG stream.
    pub(crate) fn rng_mut(&mut self, host: u32) -> &mut SmallRng {
        &mut self.rngs[host as usize]
    }

    /// The columns the movement pass streams over: positions (written),
    /// mobility + rngs (stepped), movers (the visit list). Split borrows
    /// so the caller can hold all four at once.
    pub(crate) fn movement_columns(
        &mut self,
    ) -> (&mut [Point], &mut [HostMobility], &mut [SmallRng], &[u32]) {
        (
            &mut self.positions,
            &mut self.mobility,
            &mut self.rngs,
            &self.movers,
        )
    }

    /// One host's NN cache, if it ever stored anything (`None` is exactly
    /// an empty cache).
    pub(crate) fn cache(&self, host: u32) -> Option<&HostCache> {
        self.caches.get(&host)
    }

    /// Stores a query result into one host's cache, creating the cache
    /// per the configured policy on first store.
    pub(crate) fn cache_store(&mut self, host: u32, entry: CacheEntry) {
        let (policy, capacity) = (self.policy, self.cache_capacity);
        self.caches
            .entry(host)
            .or_insert_with(|| match policy {
                CachePolicy::MostRecent => HostCache::MostRecent(MostRecentCache::new(capacity)),
                CachePolicy::Lru => HostCache::Lru(LruCache::new(capacity)),
            })
            .store(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use senn_cache::CachedNn;

    #[test]
    fn columns_stay_parallel_and_movers_are_sparse() {
        let mut store = HostStore::new(CachePolicy::MostRecent, 4, 3);
        let rng = SmallRng::seed_from_u64(1);
        store.push(HostMobility::Parked(Point::new(1.0, 2.0)), rng.clone());
        store.push(HostMobility::Parked(Point::new(3.0, 4.0)), rng);
        assert_eq!(store.len(), 2);
        assert_eq!(store.position(1), Point::new(3.0, 4.0));
        assert_eq!(store.positions().len(), 2);
        let (_, _, _, movers) = store.movement_columns();
        assert!(movers.is_empty(), "parked hosts never enter the visit list");
    }

    #[test]
    fn cache_side_table_is_lazy_and_behaves_like_an_empty_cache() {
        let mut store = HostStore::new(CachePolicy::MostRecent, 2, 1);
        store.push(
            HostMobility::Parked(Point::ORIGIN),
            SmallRng::seed_from_u64(2),
        );
        assert!(store.cache(0).is_none(), "no store yet: no cache entry");
        let entry = CacheEntry::new(
            Point::ORIGIN,
            vec![CachedNn {
                poi_id: 7,
                position: Point::new(1.0, 0.0),
            }],
        );
        store.cache_store(0, entry);
        let cached = store.cache(0).expect("created on first store");
        assert_eq!(cached.iter().count(), 1);
    }
}
