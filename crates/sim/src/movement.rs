//! Host movement (the mobile-host module's mobility half, Section 4.1):
//! the world's movement mode, per-host mobility construction, and the
//! per-interval advance step that carries every host forward in simulated
//! time. The Poisson draw shared by batch sizing and POI churn lives here
//! too, since both model event arrivals over the same intervals.

use rand::rngs::SmallRng;
use rand::Rng;

use senn_geom::Point;
use senn_mobility::{HostMobility, RandomWaypoint, RoadMover, RoadMoverConfig, WaypointConfig};
use senn_network::{NodeLocator, RoadNetwork};

use crate::simulator::Simulator;

/// Movement mode of the mobile hosts (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MovementMode {
    /// Hosts follow the road network at per-segment speed limits.
    RoadNetwork,
    /// Hosts move freely (random waypoint) at a fixed velocity.
    FreeMovement,
}

/// Builds one host's mobility state: parked hosts stay at their start
/// position; movers follow the configured mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_mobility(
    mode: MovementMode,
    start: Point,
    moves: bool,
    network: &RoadNetwork,
    locator: &NodeLocator,
    mover_cfg: RoadMoverConfig,
    waypoint_cfg: WaypointConfig,
    rng: &mut SmallRng,
) -> HostMobility {
    if !moves {
        return HostMobility::Parked(start);
    }
    match mode {
        MovementMode::FreeMovement => {
            HostMobility::Free(RandomWaypoint::new(start, waypoint_cfg, rng))
        }
        MovementMode::RoadNetwork => {
            let node = locator.nearest(start).expect("network non-empty");
            HostMobility::Road(RoadMover::new(network, node, mover_cfg))
        }
    }
}

impl Simulator {
    /// Moves every host forward by `dt` seconds.
    pub(crate) fn advance_movement(&mut self, dt: f64) {
        let net = self.network.as_ref();
        for host in &mut self.hosts {
            host.mobility.step(net, dt, &mut host.rng);
        }
    }
}

/// Draws a Poisson-distributed count (Knuth's method; λ stays small here
/// because it is per-interval).
pub(crate) fn poisson(lambda: f64, rng: &mut SmallRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 700.0 {
        // Normal approximation for very large λ (full-size Table 4 runs).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_sanity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut total = 0u64;
        for _ in 0..2000 {
            total += poisson(3.0, &mut rng);
        }
        let mean = total as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.2, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
        // Large-λ path.
        let big = poisson(10_000.0, &mut rng);
        assert!((big as f64 - 10_000.0).abs() < 500.0);
    }
}
