//! Host movement (the mobile-host module's mobility half, Section 4.1):
//! the world's movement mode, per-host mobility construction, and the
//! per-interval advance step that carries every host forward in simulated
//! time. The Poisson draw shared by batch sizing and POI churn lives here
//! too, since both model event arrivals over the same intervals.

use rand::rngs::SmallRng;
use rand::Rng;

use senn_geom::Point;
use senn_mobility::{HostMobility, RandomWaypoint, RoadMover, RoadMoverConfig, WaypointConfig};
use senn_network::{NodeLocator, RoadNetwork};

use crate::simulator::Simulator;

/// Movement mode of the mobile hosts (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MovementMode {
    /// Hosts follow the road network at per-segment speed limits.
    RoadNetwork,
    /// Hosts move freely (random waypoint) at a fixed velocity.
    FreeMovement,
}

/// Builds one host's mobility state: parked hosts stay at their start
/// position; movers follow the configured mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_mobility(
    mode: MovementMode,
    start: Point,
    moves: bool,
    network: &RoadNetwork,
    locator: &NodeLocator,
    mover_cfg: RoadMoverConfig,
    waypoint_cfg: WaypointConfig,
    rng: &mut SmallRng,
) -> HostMobility {
    if !moves {
        return HostMobility::Parked(start);
    }
    match mode {
        MovementMode::FreeMovement => {
            HostMobility::Free(RandomWaypoint::new(start, waypoint_cfg, rng))
        }
        MovementMode::RoadNetwork => {
            let node = locator.nearest(start).expect("network non-empty");
            HostMobility::Road(RoadMover::new(network, node, mover_cfg))
        }
    }
}

impl Simulator {
    /// Moves every mobile host forward by `dt` seconds, streaming over the
    /// store's columns and keeping the peer-discovery grid current as a
    /// side effect (incremental mode): each host that crossed a cell
    /// boundary costs two sorted cell-list edits, everything else costs
    /// nothing. Parked hosts are skipped entirely — their `step` is a
    /// no-op that draws no RNG, so the trajectory of every mover is
    /// bit-identical to the visit-everyone loop.
    pub(crate) fn advance_movement(&mut self, dt: f64) {
        let started = std::time::Instant::now();
        let Simulator {
            store,
            grid,
            network,
            config,
            batch_stats,
            ..
        } = self;
        let net = network.as_ref();
        let maintain = config.grid_maintenance == crate::simulator::GridMaintenance::Incremental;
        let (positions, mobility, rngs, movers) = store.movement_columns();
        let mut cell_moves = 0u64;
        for &i in movers {
            let i = i as usize;
            mobility[i].step(net, dt, &mut rngs[i]);
            let p = mobility[i].position();
            positions[i] = p;
            if maintain && grid.apply_move(i as u32, p) {
                cell_moves += 1;
            }
        }
        batch_stats.grid_cell_moves += cell_moves;
        batch_stats.move_secs += started.elapsed().as_secs_f64();
    }
}

/// Draws a Poisson-distributed count (Knuth's method; λ stays small here
/// because it is per-interval).
pub(crate) fn poisson(lambda: f64, rng: &mut SmallRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 700.0 {
        // Normal approximation for very large λ (full-size Table 4 runs).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_sanity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut total = 0u64;
        for _ in 0..2000 {
            total += poisson(3.0, &mut rng);
        }
        let mean = total as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.2, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
        // Large-λ path.
        let big = poisson(10_000.0, &mut rng);
        assert!((big as f64 - 10_000.0).abs() < 500.0);
    }
}
