//! The ad-hoc communication step: which peer cache entries reach the
//! querier over the radio channel (and what each exchange costs).
//!
//! "A mobile host will first attempt to answer each spatial query from its
//! local cache and via the SENN algorithm": the querier's own cached
//! result participates exactly like a peer's, followed by the caches of
//! hosts in radio range, with expired entries filtered on both sides when
//! a TTL is configured. [`WorkerScratch`] bundles the per-worker buffers —
//! peer ids, borrowed entries, and the staged kernel's
//! [`QueryContext`](senn_core::QueryContext) — so the steady-state query
//! path stays allocation-free and each worker thread reuses one context
//! across every query it executes.

use senn_cache::CacheEntry;
use senn_core::QueryContext;

use crate::query_step::QueryPlan;
use crate::simulator::Simulator;

/// Reusable per-worker buffers for peer discovery: peer ids from the grid
/// and borrowed peer cache entries.
pub(crate) struct QueryScratch<'a> {
    pub(crate) peer_ids: Vec<u32>,
    pub(crate) peers: Vec<&'a CacheEntry>,
}

/// Everything one batch worker reuses across the queries it executes:
/// the comms buffers plus the staged kernel's query context.
pub(crate) struct WorkerScratch<'a> {
    pub(crate) comms: QueryScratch<'a>,
    pub(crate) ctx: QueryContext,
}

impl WorkerScratch<'_> {
    pub(crate) fn new() -> Self {
        WorkerScratch {
            comms: QueryScratch {
                peer_ids: Vec::new(),
                peers: Vec::new(),
            },
            ctx: QueryContext::new(),
        }
    }
}

impl Simulator {
    /// Collects the fresh cache entries visible to a planned query — the
    /// querier's own first, then every peer's within radio range — into
    /// `scratch.peers`. Returns the count of own entries; everything after
    /// that index crossed the ad-hoc channel (the P2P overhead the merge
    /// phase accounts).
    pub(crate) fn gather_peers<'a>(
        &'a self,
        plan: &QueryPlan,
        scratch: &mut QueryScratch<'a>,
    ) -> usize {
        let q = self.store.position(plan.querier);
        self.grid.within_into(
            self.store.positions(),
            q,
            self.config.params.tx_range_m,
            plan.querier,
            &mut scratch.peer_ids,
        );
        let now = self.time;
        let ttl = self.config.cache_ttl_secs;
        let fresh = move |e: &&CacheEntry| ttl.is_none_or(|t| !e.is_expired(now, t));
        scratch.peers.clear();
        // Hosts without a side-table entry have (exactly) an empty cache;
        // iteration borrows entries in place, so the probe allocates
        // nothing per peer.
        if let Some(cache) = self.store.cache(plan.querier) {
            scratch.peers.extend(cache.iter().filter(fresh));
        }
        let own_count = scratch.peers.len();
        for &id in &scratch.peer_ids {
            if let Some(cache) = self.store.cache(id) {
                scratch.peers.extend(cache.iter().filter(fresh));
            }
        }
        own_count
    }
}
