//! The simulator: mobile-host module + server module (Section 4.1).
//!
//! * Every mobile host is an independent object with its own mobility
//!   state, NN result cache and RNG stream.
//! * The simulation advances in Poisson-distributed intervals; at the end
//!   of each interval a random subset of hosts (sized by `λ_Query`)
//!   launches kNN queries.
//! * Each query runs Algorithm 1 (SENN) against the peers currently in
//!   radio range; queries the peers cannot complete go to the server
//!   module, which executes both EINN (with the forwarded bounds) and the
//!   original INN on its R\*-tree and records node accesses for the PAR
//!   comparison (Section 4.4).
//! * Results are recorded only after a warm-up period ("all simulation
//!   results were recorded after the system reached steady state").
//!
//! ## Batch engine
//!
//! Each interval's query batch runs in three phases: **plan** (every
//! random draw, in batch order, against the live RNG streams), **execute**
//! (each planned query reads a frozen snapshot of host positions, caches
//! and the server — a pure function, fanned out across worker threads when
//! the `parallel` feature is on; the interval's residual queries are
//! collected into **one** service batch and submitted through the
//! configured [`SpatialService`] backend with retry/degradation), and
//! **merge** (outcomes are folded into the metrics and host caches in
//! query-index order). Because the fold order is fixed by the plan — and
//! the service batch composition by plan order — the parallel engine
//! produces bit-identical [`Metrics`] to the sequential path, seeded fault
//! injection included. All queries of a batch see the cache state from the
//! start of the batch; stores land at merge time.
//!
//! The steps live in sibling modules, each owning one concern of the
//! loop: `movement` (host mobility + the Poisson draw), `comms` (peer
//! discovery and the per-worker scratch), `query_step` (plan + execute
//! via the staged SENN kernel) and `cache_step` (cache policies + the
//! deterministic merge fold). This file keeps the world construction and
//! the interval loop.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use senn_core::multiple::RegionMethod;
use senn_core::rknn::{rknn_batch, RknnBatch, RknnHost, RknnQuery};
use senn_core::service::{ServerReply, ServerRequest, SpatialService};
use senn_core::transport::{AdaptivePolicy, RetryBudget, RetryPolicy, TransportPolicy};
use senn_core::{RTreeServer, SennConfig, SennEngine, STAGE_COUNT};
use senn_geom::{Point, Rect};
use senn_mobility::{RoadMoverConfig, WaypointConfig};
use senn_network::{generate_network, GeneratorConfig, NodeLocator, RoadNetwork};
use senn_server::{FaultConfig, FaultyService, ServiceMetrics, ShardedService};

pub use crate::cache_step::CachePolicy;
pub use crate::movement::MovementMode;

use crate::alloc_probe;
use crate::grid::HostGrid;
use crate::metrics::Metrics;
use crate::movement::{build_mobility, poisson};
use crate::params::{ParamSet, SimParams};
use crate::store::HostStore;

/// The target metric of network-mode (SNNN) queries — which
/// `DistanceModel` implementation ranks candidates during the incremental
/// Euclidean expansion (Algorithm 2). All of them are exact road metrics
/// respecting the Euclidean lower bound, so the expansion stays sound;
/// they differ in how the shortest-path evaluation is driven (and, for
/// [`NetworkModelKind::TimeDependent`], in what the edge weights mean).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkModelKind {
    /// Euclidean-heuristic A\* over edge lengths
    /// (`senn_network::NetworkDistance`).
    AStar,
    /// ALT (A\*, Landmarks, Triangle inequality) over the same edge
    /// lengths: distances are identical to [`NetworkModelKind::AStar`],
    /// but the landmark lower bounds prune the search harder
    /// (`senn_network::AltDistance`).
    Alt {
        /// Landmarks to select (clamped to the node count; must be ≥ 1).
        landmarks: usize,
    },
    /// Travel-time metric: per-class speed limits with a time-of-day
    /// congestion multiplier (`senn_network::TimeDependentCost`). The
    /// query hour advances with simulated time from `start_hour`.
    TimeDependent {
        /// Hour of day `[0, 24)` at simulation start.
        start_hour: f64,
    },
    /// Contraction-hierarchy distance oracle over the same edge lengths:
    /// distances are identical to [`NetworkModelKind::AStar`], but every
    /// exact evaluation is a hub-label merge instead of a graph search,
    /// and the paired `ChBound` gives `offer_pruned` an *exact* lower
    /// bound (`senn_network::ChDistance` / `senn_network::ChBound`). The
    /// hierarchy is preprocessed once per world, seeded by the master
    /// seed.
    Ch,
}

/// How the peer-discovery [`HostGrid`] is kept in sync with host
/// movement. Both modes index exactly the same positions, and because the
/// incremental path keeps every cell list sorted ascending by host id —
/// the order a fresh index-order build produces — `within_into` returns
/// identical hits in identical order either way: recorded
/// [`Metrics`] are bit-identical (asserted in
/// `tests/grid_maintenance.rs` and in the perf gate at 1M hosts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GridMaintenance {
    /// Move-only edits during the movement pass: a host that crosses a
    /// cell boundary is removed from its old cell list and inserted into
    /// the new one; hosts that stay in their cell cost nothing. The
    /// default — per-interval grid work is O(boundary crossings) instead
    /// of O(hosts).
    #[default]
    Incremental,
    /// The pre-refactor behavior: rebuild the grid from the position
    /// column once per query batch. Kept as the equivalence baseline and
    /// as a fallback.
    Rebuild,
}

/// A [`SimConfig`] that cannot run: the combination of knobs is rejected
/// at build time ([`SimConfigBuilder::try_build`] /
/// [`SimConfig::validate`]) instead of panicking mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// A network distance model was requested together with
    /// [`MovementMode::FreeMovement`]. Free movement drops the road
    /// network from the world model, so there is no graph to run the
    /// metric on.
    NetworkModelWithoutRoadNetwork,
    /// A network distance model was requested together with
    /// `accept_uncertain`. Uncertain answers have no grading against the
    /// Euclidean ground truth, so expanding them under a network metric
    /// would rank unverified candidates — the combination is unsound.
    NetworkModelWithUncertainAnswers,
    /// `Alt { landmarks: 0 }` — the ALT index needs at least one landmark.
    AltWithoutLandmarks,
    /// An overlapped transport was configured with a zero in-flight
    /// window — the uplink could never dispatch a request.
    ZeroInFlightWindow,
    /// An overlapped transport was configured with a zero-capacity queue —
    /// every request past the in-flight window would be shed on arrival.
    ZeroQueueCapacity,
    /// An overlapped transport was requested together with a network
    /// distance model. SNNN expansion is round-synchronous (each round's
    /// residual must resolve before the next round's `k` is known), so it
    /// cannot ride the deferred-completion transport.
    TransportWithNetworkModel,
    /// Adaptive transport control was configured with an empty or inverted
    /// AIMD window band (`window_min` of zero, `window_min > window_max`,
    /// or `window_start` outside the band).
    InvalidAdaptiveWindow,
    /// Adaptive transport control was configured with a multiplicative
    /// decrease that does not decrease (`shrink_den` of zero or
    /// `shrink_num ≥ shrink_den`).
    InvalidAdaptiveShrink,
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::NetworkModelWithoutRoadNetwork => write!(
                f,
                "a network distance model requires MovementMode::RoadNetwork \
                 (free movement has no road graph to run the metric on)"
            ),
            SimConfigError::NetworkModelWithUncertainAnswers => write!(
                f,
                "a network distance model cannot rank uncertain answers; \
                 disable accept_uncertain"
            ),
            SimConfigError::AltWithoutLandmarks => {
                write!(f, "the ALT model needs at least one landmark")
            }
            SimConfigError::ZeroInFlightWindow => write!(
                f,
                "the overlapped transport needs an in-flight window of at \
                 least one request (TransportPolicy::window)"
            ),
            SimConfigError::ZeroQueueCapacity => write!(
                f,
                "the overlapped transport needs a queue capacity of at \
                 least one request (TransportPolicy::queue_cap)"
            ),
            SimConfigError::TransportWithNetworkModel => write!(
                f,
                "the overlapped transport cannot drive round-synchronous \
                 SNNN expansion; disable distance_model or transport"
            ),
            SimConfigError::InvalidAdaptiveWindow => write!(
                f,
                "adaptive transport control needs a non-empty AIMD window \
                 band: 1 <= window_min <= window_start <= window_max"
            ),
            SimConfigError::InvalidAdaptiveShrink => write!(
                f,
                "adaptive transport control needs a genuine multiplicative \
                 decrease: shrink_num < shrink_den, shrink_den >= 1"
            ),
        }
    }
}

impl std::error::Error for SimConfigError {}

/// How the number of requested neighbors `k` is chosen per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KChoice {
    /// Every query uses the same `k`.
    Fixed(usize),
    /// `k` is uniform in `[lo, hi]` — the paper "chose k randomly for each
    /// host and each query in the range from 1 to 9 and 3 to 15".
    Uniform(usize, usize),
    /// Uniform in `1..=2·λ_kNN − 1`, i.e. mean `λ_kNN` (the default).
    MeanLambda,
}

/// Full configuration of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Table 3/4 parameters.
    pub params: SimParams,
    /// Road-network or free movement.
    pub mode: MovementMode,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Fraction of `T_execution` discarded as warm-up.
    pub warmup_frac: f64,
    /// Mean spacing of query batches, seconds (interval lengths are
    /// exponential, i.e. batch arrivals form a Poisson process).
    pub mean_interval_secs: f64,
    /// Certain-region representation used by `kNN_multiple`.
    pub region_method: RegionMethod,
    /// How each query's `k` is drawn.
    pub k_choice: KChoice,
    /// Also run the baseline INN for every server-bound query (PAR
    /// comparison; small extra cost).
    pub compare_inn: bool,
    /// Host-side cache policy (the paper uses [`CachePolicy::MostRecent`]).
    pub cache_policy: CachePolicy,
    /// Accept a full heap of uncertain answers instead of contacting the
    /// server (Algorithm 1, line 15). Off by default; when on, the
    /// simulator grades every accepted answer against the ground truth
    /// (see [`Metrics::uncertain_exact`]).
    pub accept_uncertain: bool,
    /// Expected POI relocations per simulated hour (gas stations closing
    /// and opening elsewhere). `0.0` (the paper's setting) keeps POIs
    /// static. With churn, peer-resolved answers are graded against the
    /// current ground truth.
    pub poi_churn_per_hour: f64,
    /// Time-to-live for cached entries: peers ignore (and hosts purge)
    /// entries older than this. `None` disables TTL invalidation.
    pub cache_ttl_secs: Option<f64>,
    /// Worker threads for the batch engine when the `parallel` feature is
    /// on: `None` uses every available core (`SENN_THREADS` still
    /// overrides), `Some(1)` forces the in-process sequential path.
    /// Metrics are identical either way; only wall time changes.
    pub threads: Option<usize>,
    /// Shard count of the residual-query service backend: `1` serves from
    /// the single-tree [`RTreeServer`] reference backend, `> 1`
    /// strip-partitions the POI set across that many R\*-tree shards
    /// (`senn_server::ShardedService`). Query results — and therefore
    /// every recorded metric — are identical either way; only server-side
    /// fan-out and per-shard accounting change.
    pub server_shards: usize,
    /// Seeded fault injection on the service seam (`None` = no faults; a
    /// disabled config is a pure passthrough and leaves [`Metrics`]
    /// bit-identical). Each request's fate is keyed by
    /// `(seed, request id, attempt ordinal)`, so a fixed seed reproduces
    /// the exact same retry counts regardless of worker-thread count,
    /// shard count, or how submissions are coalesced into batches.
    pub fault: Option<FaultConfig>,
    /// Client-side retry/backoff/degradation policy for residual batches
    /// (inert when the service never fails). In overlapped-transport mode
    /// ([`SimConfig::transport`]) the policy embedded in the
    /// [`TransportPolicy`] governs instead.
    pub retry: RetryPolicy,
    /// Event-driven service transport: `None` (the default) submits each
    /// interval's residual batch synchronously (`submit_with_retry`
    /// blocks the interval until every ladder resolves, exactly the
    /// pre-transport behavior — metrics are bit-identical to earlier
    /// releases). `Some(policy)` routes residuals through
    /// `senn_core::transport::AsyncClient`: requests are *enqueued* with a
    /// globally unique id at the interval that issued them and their
    /// completions are *polled* at later interval boundaries, so residual
    /// round-trips overlap subsequent intervals instead of blocking.
    /// Request ids — and therefore the keyed fault schedule and the
    /// transport's own service-time draws — are a pure function of plan
    /// order, so recorded [`Metrics`] stay bit-identical across
    /// worker-thread counts and shard layouts. Rejected at build time when
    /// combined with a [`NetworkModelKind`]
    /// ([`SimConfigError::TransportWithNetworkModel`]).
    pub transport: Option<TransportPolicy>,
    /// Target metric for network-mode queries: `None` (the default) runs
    /// plain Euclidean SENN; `Some(kind)` runs every query as SNNN
    /// (Algorithm 2) under that road metric — peer probe, verification
    /// and batched server residual per expansion round. Requires
    /// [`MovementMode::RoadNetwork`] (validated at build time).
    pub distance_model: Option<NetworkModelKind>,
    /// Safety cap on Euclidean expansion rounds per SNNN query; truncated
    /// expansions are counted in [`Metrics::expansion_cap_hits`].
    pub snnn_max_expansion: usize,
    /// Submission layout of the SNNN expand pass: `true` (the default)
    /// coalesces every eligible query's same-round residuals into one
    /// `ServerRequest` batch per interval-round; `false` submits one
    /// request per query-round (the PR-4 access pattern). Metrics are
    /// bit-identical either way — the keyed fault schedule sees the same
    /// per-id attempt stream — only the submission count changes
    /// (`BatchStats::snnn_submissions`; proven in
    /// `tests/batched_expansion.rs`).
    pub expansion_batching: bool,
    /// Candidate re-ranking strategy of the SNNN expand pass: `false`
    /// (the default) runs one private network search per (query,
    /// candidate) via the configured model's scratch; `true` answers
    /// every exact distance of the batch from shared resumable Dijkstra
    /// frontiers ([`senn_core::shared_expansion`]) keyed by snap node, so
    /// co-anchored queries and repeat candidates settle each node at most
    /// once per group. Results and [`Metrics`] are bit-identical either
    /// way except for [`Metrics::shared_settles_saved`], which counts the
    /// settlements the sharing skipped (proven in
    /// `tests/shared_expansion.rs`). Inert without a
    /// [`Self::distance_model`].
    pub shared_expansion: bool,
    /// How the peer-discovery grid tracks host movement:
    /// [`GridMaintenance::Incremental`] (the default) applies move-only
    /// edits during the movement pass, [`GridMaintenance::Rebuild`]
    /// reconstructs the grid once per query batch. Metrics are
    /// bit-identical either way; only maintenance cost changes.
    pub grid_maintenance: GridMaintenance,
}

impl SimConfig {
    /// Defaults for a parameter set: road-network mode, 20 % warm-up, 10 s
    /// mean batch interval, polygonized regions, random `k`, INN shadow
    /// on, single-shard fault-free service.
    pub fn new(params: SimParams, seed: u64) -> Self {
        SimConfig {
            params,
            mode: MovementMode::RoadNetwork,
            seed,
            warmup_frac: 0.2,
            mean_interval_secs: 10.0,
            region_method: RegionMethod::default(),
            k_choice: KChoice::MeanLambda,
            compare_inn: true,
            cache_policy: CachePolicy::MostRecent,
            accept_uncertain: false,
            poi_churn_per_hour: 0.0,
            cache_ttl_secs: None,
            threads: None,
            server_shards: 1,
            fault: None,
            retry: RetryPolicy::default(),
            transport: None,
            distance_model: None,
            snnn_max_expansion: 256,
            expansion_batching: true,
            shared_expansion: false,
            grid_maintenance: GridMaintenance::Incremental,
        }
    }

    /// Checks cross-field invariants — the combinations
    /// [`SimConfigBuilder::try_build`] rejects. [`Simulator::new`] calls
    /// this, so an invalid hand-assembled config fails fast with the same
    /// typed reason.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if let Some(kind) = self.distance_model {
            if self.mode != MovementMode::RoadNetwork {
                return Err(SimConfigError::NetworkModelWithoutRoadNetwork);
            }
            if self.accept_uncertain {
                return Err(SimConfigError::NetworkModelWithUncertainAnswers);
            }
            if let NetworkModelKind::Alt { landmarks: 0 } = kind {
                return Err(SimConfigError::AltWithoutLandmarks);
            }
        }
        if let Some(policy) = self.transport {
            if policy.window == 0 {
                return Err(SimConfigError::ZeroInFlightWindow);
            }
            if policy.queue_cap == 0 {
                return Err(SimConfigError::ZeroQueueCapacity);
            }
            if self.distance_model.is_some() {
                return Err(SimConfigError::TransportWithNetworkModel);
            }
            if let Some(a) = policy.adaptive {
                let start = a.window_start;
                if a.window_min == 0
                    || a.window_min > a.window_max
                    || start < a.window_min
                    || start > a.window_max
                {
                    return Err(SimConfigError::InvalidAdaptiveWindow);
                }
                if a.shrink_den == 0 || a.shrink_num >= a.shrink_den {
                    return Err(SimConfigError::InvalidAdaptiveShrink);
                }
            }
        }
        Ok(())
    }

    /// Starts a fluent builder from [`SimConfig::default`].
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Turns this configuration back into a builder for further tweaks.
    pub fn to_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { config: self }
    }
}

impl Default for SimConfig {
    /// The paper's dense-urban baseline: Los Angeles 2×2 miles, seed 0.
    fn default() -> Self {
        SimConfig::new(SimParams::two_by_two(ParamSet::LosAngeles), 0)
    }
}

/// Fluent construction of a [`SimConfig`] — new knobs (like the service
/// backend and retry policy) get a builder method instead of breaking
/// every struct-literal call site. Every method overrides one field;
/// everything not set keeps the [`SimConfig::default`] value.
///
/// ```
/// use senn_sim::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .seed(7)
///     .threads(2)
///     .server_shards(4)
///     .build();
/// assert_eq!(cfg.server_shards, 4);
/// assert_eq!(cfg.threads, Some(2));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Table 3/4 parameter set.
    pub fn params(mut self, params: SimParams) -> Self {
        self.config.params = params;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Road-network or free movement.
    pub fn mode(mut self, mode: MovementMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Fraction of `T_execution` discarded as warm-up.
    pub fn warmup_frac(mut self, frac: f64) -> Self {
        self.config.warmup_frac = frac;
        self
    }

    /// Mean spacing of query batches, seconds.
    pub fn mean_interval_secs(mut self, secs: f64) -> Self {
        self.config.mean_interval_secs = secs;
        self
    }

    /// Certain-region representation used by `kNN_multiple`.
    pub fn region_method(mut self, method: RegionMethod) -> Self {
        self.config.region_method = method;
        self
    }

    /// How each query's `k` is drawn.
    pub fn k_choice(mut self, choice: KChoice) -> Self {
        self.config.k_choice = choice;
        self
    }

    /// Whether to run the baseline INN shadow for the PAR comparison.
    pub fn compare_inn(mut self, on: bool) -> Self {
        self.config.compare_inn = on;
        self
    }

    /// Host-side cache policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.config.cache_policy = policy;
        self
    }

    /// Accept a full heap of uncertain answers instead of the server.
    pub fn accept_uncertain(mut self, on: bool) -> Self {
        self.config.accept_uncertain = on;
        self
    }

    /// Expected POI relocations per simulated hour.
    pub fn poi_churn_per_hour(mut self, per_hour: f64) -> Self {
        self.config.poi_churn_per_hour = per_hour;
        self
    }

    /// Time-to-live for cached entries (`None` disables invalidation).
    pub fn cache_ttl_secs(mut self, ttl: Option<f64>) -> Self {
        self.config.cache_ttl_secs = ttl;
        self
    }

    /// Worker threads for the batch engine.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = Some(threads);
        self
    }

    /// Shard count of the residual-query service backend (≥ 1).
    pub fn server_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "the service needs at least one shard");
        self.config.server_shards = shards;
        self
    }

    /// Seeded fault injection on the service seam.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = Some(fault);
        self
    }

    /// Client-side retry/backoff/degradation policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Overlapped service transport: residuals are enqueued through the
    /// event-driven `senn_core::transport` layer and their completions
    /// polled at later interval boundaries (see [`SimConfig::transport`]).
    pub fn transport(mut self, policy: TransportPolicy) -> Self {
        self.config.transport = Some(policy);
        self
    }

    /// Adaptive transport control (AIMD windows, probe aging, shed-aware
    /// retry budget) on the overlapped transport. Attaches `adaptive` to
    /// the already-configured [`TransportPolicy`], or to
    /// `TransportPolicy::default()` when [`Self::transport`] was not
    /// called first.
    pub fn transport_adaptive(mut self, adaptive: AdaptivePolicy) -> Self {
        let mut policy = self.config.transport.unwrap_or_default();
        policy.adaptive = Some(adaptive);
        self.config.transport = Some(policy);
        self
    }

    /// Target metric for network-mode (SNNN) queries.
    pub fn distance_model(mut self, kind: NetworkModelKind) -> Self {
        self.config.distance_model = Some(kind);
        self
    }

    /// Safety cap on Euclidean expansion rounds per SNNN query.
    pub fn snnn_max_expansion(mut self, rounds: usize) -> Self {
        self.config.snnn_max_expansion = rounds;
        self
    }

    /// Submission layout of the SNNN expand pass: `true` (default)
    /// batches every same-round residual per interval, `false` submits
    /// one request per query-round. Metrics are identical either way.
    pub fn expansion_batching(mut self, batched: bool) -> Self {
        self.config.expansion_batching = batched;
        self
    }

    /// Candidate re-ranking strategy of the SNNN expand pass: `true`
    /// answers exact distances from batch-shared Dijkstra frontiers
    /// (one settle sweep per snap-node group), `false` (default) runs a
    /// private search per (query, candidate). Results are identical
    /// either way modulo `Metrics::shared_settles_saved`.
    pub fn shared_expansion(mut self, shared: bool) -> Self {
        self.config.shared_expansion = shared;
        self
    }

    /// How the peer-discovery grid tracks host movement (incremental
    /// move-only edits vs rebuild-per-batch). Metrics are identical
    /// either way.
    pub fn grid_maintenance(mut self, maintenance: GridMaintenance) -> Self {
        self.config.grid_maintenance = maintenance;
        self
    }

    /// Finishes the build, rejecting invalid knob combinations (e.g. a
    /// network distance model without a road network) with a typed error
    /// instead of a runtime panic.
    pub fn try_build(self) -> Result<SimConfig, SimConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// On an invalid knob combination — use
    /// [`SimConfigBuilder::try_build`] to handle the error.
    pub fn build(self) -> SimConfig {
        self.try_build().expect("invalid SimConfig")
    }
}

/// The configurable backend behind the sim's residual-query service seam.
/// `RTreeServer` stays the trivial 1-shard implementation of the batched
/// trait; higher shard counts use the strip-partitioned service. Both
/// return identical answers (golden-tested in `senn-server`), so the
/// choice never leaks into [`Metrics`].
pub(crate) enum ServiceBackend {
    Plain(RTreeServer),
    Sharded(ShardedService),
}

impl ServiceBackend {
    /// Mirrors a POI relocation into the backend's index. Returns `false`
    /// when `old` is stale (the index stays untouched), exactly like
    /// [`RTreeServer::relocate`].
    fn relocate(&mut self, id: u64, old: Point, new: Point) -> bool {
        match self {
            ServiceBackend::Plain(s) => s.relocate(id, old, new),
            ServiceBackend::Sharded(s) => s.relocate(id, old, new),
        }
    }
}

impl SpatialService for ServiceBackend {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        match self {
            ServiceBackend::Plain(s) => s.submit(batch),
            ServiceBackend::Sharded(s) => s.submit(batch),
        }
    }

    fn poi_count(&self) -> usize {
        match self {
            ServiceBackend::Plain(s) => s.poi_count(),
            ServiceBackend::Sharded(s) => s.poi_count(),
        }
    }
}

/// The submission discipline in front of the service seam — how an
/// interval's residual requests travel to the backend and when their
/// answers come back.
pub(crate) enum ServiceHandle {
    /// The pre-transport path: `submit_with_retry` blocks the interval
    /// until every request's retry ladder resolves.
    Blocking(Box<FaultyService<ServiceBackend>>),
    /// The event-driven path ([`SimConfig::transport`]): requests are
    /// enqueued into `senn_core::transport::AsyncClient` and completions
    /// are polled at interval boundaries, so residual round-trips overlap
    /// later intervals (state in [`crate::transport_step::OverlapState`]).
    Overlapped(Box<crate::transport_step::OverlapState>),
}

impl ServiceHandle {
    /// The fault-wrapped backend, in either mode. Synchronous callers
    /// (the blocking residual batch, SNNN expansion rounds, POI-churn
    /// mirroring) go through here; in overlapped mode this is the same
    /// service instance the transport dispatches to.
    pub(crate) fn residual_service(&self) -> &FaultyService<ServiceBackend> {
        match self {
            ServiceHandle::Blocking(s) => s,
            ServiceHandle::Overlapped(o) => o.client.service(),
        }
    }

    /// Mutable access to the fault-wrapped backend (POI churn mirrors
    /// relocations into the live index in both modes).
    pub(crate) fn residual_service_mut(&mut self) -> &mut FaultyService<ServiceBackend> {
        match self {
            ServiceHandle::Blocking(s) => s,
            ServiceHandle::Overlapped(o) => o.client.service_mut(),
        }
    }
}

/// The simulator state.
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) area: Rect,
    pub(crate) network: Option<RoadNetwork>,
    /// Point-to-node snapper over `network` (SNNN models anchor queries
    /// and POIs through it).
    pub(crate) locator: NodeLocator,
    /// Landmark index for [`NetworkModelKind::Alt`], built once per world.
    pub(crate) alt_index: Option<senn_network::AltIndex>,
    /// Contraction hierarchy for [`NetworkModelKind::Ch`], built once per
    /// world.
    pub(crate) ch_index: Option<senn_network::ChIndex>,
    /// Current POI positions, indexed by POI id (ground truth mirror).
    pub(crate) poi_positions: Vec<Point>,
    /// The truth server: measurement-only calls (grading, the EINN/INN
    /// shadow) always run here so metrics are invariant to the backend.
    pub(crate) server: RTreeServer,
    /// The service seam residual batches go through: the configured
    /// backend behind the (possibly disabled) fault wrapper, behind the
    /// configured submission discipline (blocking or overlapped).
    pub(crate) service: ServiceHandle,
    pub(crate) engine: SennEngine,
    /// Struct-of-arrays host substrate: position/mobility/rng columns, the
    /// movers visit list, and the sparse cache side table.
    pub(crate) store: HostStore,
    pub(crate) rng: SmallRng,
    pub(crate) metrics: Metrics,
    pub(crate) time: f64,
    pub(crate) warmed_up: bool,
    /// Peer-discovery grid over the store's position column — maintained
    /// incrementally during the movement pass (or rebuilt per batch under
    /// [`GridMaintenance::Rebuild`]); read-only while a batch executes.
    pub(crate) grid: HostGrid,
    pub(crate) batch_stats: BatchStats,
}

/// Wall-clock statistics of the batch-execution phase, accumulated over a
/// whole run (warm-up included). Timing is observation only — it never
/// feeds back into the simulation, so instrumentation cannot perturb
/// determinism.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Executed batches (only batches that had at least one query).
    pub batches: u64,
    /// Queries executed across all batches.
    pub queries: u64,
    /// Total wall time spent in the execute phase, seconds.
    pub exec_secs: f64,
    /// Wall time of the slowest single batch, seconds.
    pub peak_batch_secs: f64,
    /// Query count of that slowest batch.
    pub peak_batch_queries: u64,
    /// Wall nanoseconds per pipeline stage, summed over every executed
    /// query (indexed by [`senn_core::Stage`]; see
    /// [`senn_core::STAGE_NAMES`]).
    pub stage_nanos: [u64; STAGE_COUNT],
    /// Times each pipeline stage ran, summed over every executed query.
    pub stage_calls: [u64; STAGE_COUNT],
    /// SNNN expansion rounds executed across all batches (0 unless a
    /// [`NetworkModelKind`] is configured).
    pub snnn_rounds: u64,
    /// Service submissions (`submit_with_retry` calls) the SNNN expand
    /// pass performed across all batches: with interval batching one per
    /// round that needed the server, without it one per query-round —
    /// the denominator of the batching win tracked by `perf_gate`.
    pub snnn_submissions: u64,
    /// Shared-expansion mode only: frontier groups (distinct snap nodes)
    /// the expand pass opened across all batches (0 with
    /// [`SimConfig::shared_expansion`] off).
    pub shared_groups: u64,
    /// Shared-expansion mode only: settlements a fresh per-probe search
    /// would have performed — the solo-cost numerator of the sharing
    /// win tracked by `perf_gate` (0 with sharing off).
    pub shared_solo_settles: u64,
    /// Shared-expansion mode only: settlements the shared frontiers
    /// actually performed — the denominator of the sharing win; the
    /// difference is `Metrics::shared_settles_saved` summed over the run
    /// (0 with sharing off).
    pub shared_settles: u64,
    /// Wall time of the movement pass (host stepping + incremental grid
    /// maintenance) across the whole run, seconds.
    pub move_secs: f64,
    /// Grid cell-boundary crossings applied by incremental maintenance
    /// (0 under [`GridMaintenance::Rebuild`]) — the per-interval grid
    /// work the incremental path actually pays.
    pub grid_cell_moves: u64,
    /// Heap allocations observed across the run's intervals (movement +
    /// churn + query batch), via the [`crate::alloc_probe`] hook. `0`
    /// when no probe is installed. Observation only — smaller is better;
    /// the perf gate tracks it as the per-interval allocation budget.
    pub allocations: u64,
    /// Overlapped mode only: peak queued residuals across uplink lanes
    /// observed at any transport event (0 in blocking mode).
    pub queue_depth_peak: u64,
    /// Overlapped mode only: peak in-flight residuals across uplink lanes
    /// (0 in blocking mode).
    pub in_flight_peak: u64,
    /// Overlapped mode only: residual requests refused by transport
    /// admission control (`ReplyStatus::Shed`; 0 in blocking mode).
    pub shed_count: u64,
    /// Overlapped mode only: median end-to-end *virtual* latency (ms,
    /// enqueue → completion) of completed residuals, from the transport's
    /// log2 histogram (0 in blocking mode).
    pub latency_p50_ms: f64,
    /// Overlapped mode only: p99 end-to-end virtual latency, ms.
    pub latency_p99_ms: f64,
    /// Overlapped mode only: smallest per-lane in-flight window observed
    /// over the run (the static window when adaptive control is off;
    /// 0 in blocking mode).
    pub window_min: u64,
    /// Overlapped mode only: largest per-lane in-flight window observed
    /// over the run (0 in blocking mode).
    pub window_max: u64,
    /// Overlapped mode only: final sum of per-lane windows — the
    /// transport's total in-flight budget at run end (0 in blocking mode).
    pub window_final: u64,
    /// Overlapped mode only: residual retries refused by the adaptive
    /// token-bucket budget across the whole run, warm-up included
    /// (0 in blocking mode or with the unlimited budget).
    pub retries_denied: u64,
}

impl BatchStats {
    pub(crate) fn record(&mut self, secs: f64, queries: u64) {
        self.batches += 1;
        self.queries += queries;
        self.exec_secs += secs;
        if secs > self.peak_batch_secs {
            self.peak_batch_secs = secs;
            self.peak_batch_queries = queries;
        }
    }

    /// Mean executed queries per second of execute-phase wall time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.exec_secs > 0.0 {
            self.queries as f64 / self.exec_secs
        } else {
            0.0
        }
    }
}

impl Simulator {
    /// Builds the world: road network (when needed), POIs, hosts.
    pub fn new(config: SimConfig) -> Self {
        config
            .validate()
            .expect("invalid SimConfig (use SimConfigBuilder::try_build to handle the error)");
        let params = &config.params;
        assert!(params.mh_number >= 1, "need at least one host");
        assert!(
            (0.0..1.0).contains(&config.warmup_frac),
            "warm-up must be in [0,1)"
        );
        let side = params.area_side_m();
        let area = Rect::new(Point::ORIGIN, Point::new(side, side));
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Road network (also generated in free-movement mode so POI
        // placement matches across mode comparisons — POIs sit near roads).
        let network = generate_network(&GeneratorConfig::city(side, config.seed ^ 0x9e37));
        let locator = NodeLocator::new(&network);

        // POIs: uniform positions snapped near the network (gas stations
        // sit on streets).
        let mut pois = Vec::with_capacity(params.poi_number);
        for i in 0..params.poi_number {
            let raw = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let snapped = locator
                .nearest(raw)
                .map(|n| network.position(n))
                .unwrap_or(raw);
            // Offset slightly off the junction so distances are generic.
            let jitterx = rng.gen_range(-20.0..20.0);
            let jittery = rng.gen_range(-20.0..20.0);
            let p = Point::new(
                (snapped.x + jitterx).clamp(0.0, side),
                (snapped.y + jittery).clamp(0.0, side),
            );
            pois.push((i as u64, p));
        }
        let poi_positions: Vec<Point> = pois.iter().map(|(_, p)| *p).collect();
        assert!(
            config.server_shards >= 1,
            "the service needs at least one shard"
        );
        let backend = if config.server_shards > 1 {
            ServiceBackend::Sharded(ShardedService::new(pois.clone(), config.server_shards))
        } else {
            ServiceBackend::Plain(RTreeServer::new(pois.clone()))
        };
        let service = FaultyService::new(backend, config.fault.unwrap_or_default());
        let service = match config.transport {
            None => ServiceHandle::Blocking(Box::new(service)),
            Some(policy) => ServiceHandle::Overlapped(Box::new(
                crate::transport_step::OverlapState::new(service, config.seed, policy),
            )),
        };
        let server = RTreeServer::new(pois);

        // Hosts: random start positions; `M_Percentage` of them move.
        // Urban trips are local: a couple of kilometers between stops keeps
        // the displacement from a host's cached query location diffusive
        // rather than ballistic, which is what makes sharing effective.
        let mover_cfg = RoadMoverConfig {
            velocity_mps: params.velocity_mps(),
            max_pause_secs: 600.0,
            trip_radius: (side * 0.5).min(3000.0),
        };
        let mut waypoint_cfg = WaypointConfig::new(area, params.velocity_mps());
        waypoint_cfg.max_pause_secs = mover_cfg.max_pause_secs;
        waypoint_cfg.trip_radius = Some(mover_cfg.trip_radius);
        let mut store = HostStore::new(config.cache_policy, params.c_size, params.mh_number);
        for i in 0..params.mh_number {
            let mut host_rng = SmallRng::seed_from_u64(config.seed ^ (0xc0ffee + i as u64 * 7919));
            let start = Point::new(host_rng.gen_range(0.0..side), host_rng.gen_range(0.0..side));
            let moves = host_rng.gen_bool(params.m_percentage);
            let mobility = build_mobility(
                config.mode,
                start,
                moves,
                &network,
                &locator,
                mover_cfg,
                waypoint_cfg,
                &mut host_rng,
            );
            store.push(mobility, host_rng);
        }

        let engine = SennEngine::new(SennConfig {
            region_method: config.region_method,
            accept_uncertain: config.accept_uncertain,
            server_fetch: params.c_size,
        });

        // The grid indexes the store's position column from the start, so
        // incremental maintenance has a valid baseline before any batch.
        let grid = HostGrid::build(area, config.params.tx_range_m.max(1.0), store.positions());
        // The ALT landmark index is part of the world: built once, seeded
        // by the master seed so runs are reproducible.
        let alt_index = match config.distance_model {
            Some(NetworkModelKind::Alt { landmarks }) => Some(
                senn_network::AltIndex::build_seeded(&network, landmarks, config.seed),
            ),
            _ => None,
        };
        // Likewise the contraction hierarchy: deterministic preprocessing
        // keyed by the master seed, shared by every batch of the run.
        let ch_index = match config.distance_model {
            Some(NetworkModelKind::Ch) => {
                Some(senn_network::ChIndex::build_seeded(&network, config.seed))
            }
            _ => None,
        };
        Simulator {
            config,
            area,
            network: Some(network),
            locator,
            alt_index,
            ch_index,
            poi_positions,
            server,
            service,
            engine,
            store,
            rng,
            metrics: Metrics::new(),
            time: 0.0,
            warmed_up: false,
            grid,
            batch_stats: BatchStats::default(),
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The road network of the world.
    pub fn network(&self) -> Option<&RoadNetwork> {
        self.network.as_ref()
    }

    /// The server module (the ground-truth single-tree backend).
    pub fn server(&self) -> &RTreeServer {
        &self.server
    }

    /// Per-shard observability counters of the residual-query service —
    /// `Some` when the sharded backend is configured (`server_shards > 1`).
    pub fn service_metrics(&self) -> Option<ServiceMetrics> {
        match self.service.residual_service().inner() {
            ServiceBackend::Sharded(s) => Some(s.metrics()),
            ServiceBackend::Plain(_) => None,
        }
    }

    /// Observability counters of the overlapped transport — `Some` when
    /// [`SimConfig::transport`] is configured. Queue-depth and in-flight
    /// peaks, shed count and the end-to-end virtual latency histogram;
    /// every quantity is virtual, so the snapshot is as deterministic as
    /// the metrics themselves.
    pub fn transport_stats(&self) -> Option<&senn_core::transport::TransportStats> {
        match &self.service {
            ServiceHandle::Blocking(_) => None,
            ServiceHandle::Overlapped(o) => Some(o.client.stats()),
        }
    }

    /// Collected metrics (post warm-up).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Wall-clock statistics of the batch execute phase (for benchmarks
    /// and the perf gate; unrelated to simulated time).
    pub fn batch_stats(&self) -> &BatchStats {
        &self.batch_stats
    }

    /// Runs the configured `T_execution` (including warm-up) and returns
    /// the steady-state metrics.
    pub fn run(&mut self) -> Metrics {
        let total = self.config.params.duration_secs();
        let warmup_end = total * self.config.warmup_frac;
        while self.time < total {
            // Next query batch after an exponential interval.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let interval = -u.ln() * self.config.mean_interval_secs;
            let interval = interval.min(total - self.time).max(1e-6);
            // Allocation accounting per interval (observation only; 0
            // when no probe is installed — see `crate::alloc_probe`).
            let allocs_before = alloc_probe::sample();
            self.advance_movement(interval);
            self.apply_poi_churn(interval);
            self.time += interval;
            if !self.warmed_up && self.time >= warmup_end {
                self.metrics.reset();
                self.warmed_up = true;
            }
            self.run_query_batch(interval);
            self.batch_stats.allocations += alloc_probe::sample().saturating_sub(allocs_before);
        }
        // Overlapped mode: residuals still in flight at the horizon are
        // drained (their completions measured and folded) so every issued
        // query is attributed exactly once. No-op in blocking mode.
        self.drain_transport();
        self.metrics.clone()
    }

    /// Current POI positions, indexed by POI id — the ground-truth mirror
    /// reverse-kNN oracles rank against.
    pub fn poi_positions(&self) -> &[Point] {
        &self.poi_positions
    }

    /// The reverse-kNN candidate set the driver verifies: every host at
    /// its current position, with the cached-kNN prune radii its NN cache
    /// proves — distances from the host's *current* position to the
    /// distinct POIs it has cached, sorted ascending. Cached radii are
    /// only used on churn-free worlds (a relocated POI would invalidate
    /// the cached positions the radii are computed from); under churn
    /// every host gets an empty radius list, so every pair verifies.
    pub fn rknn_hosts(&self) -> Vec<RknnHost> {
        let use_caches = self.config.poi_churn_per_hour <= 0.0;
        (0..self.store.len() as u32)
            .map(|h| {
                let position = self.store.position(h);
                let mut seen: Vec<u64> = Vec::new();
                let mut cached_dists: Vec<f64> = Vec::new();
                if use_caches {
                    if let Some(cache) = self.store.cache(h) {
                        for entry in cache.iter() {
                            for nn in &entry.neighbors {
                                if !seen.contains(&nn.poi_id) {
                                    seen.push(nn.poi_id);
                                    cached_dists.push(position.dist(nn.position));
                                }
                            }
                        }
                    }
                }
                cached_dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
                RknnHost {
                    host_id: h as u64,
                    position,
                    cached_dists,
                }
            })
            .collect()
    }

    /// Answers a batch of reverse-kNN queries ("which hosts rank this POI
    /// top-k?") against the configured service backend — the same
    /// sharded/fault-wrapped seam residual queries go through — spending
    /// at most one kNN verification request per host (pairs the hosts'
    /// cached-kNN radii prove non-members are pruned for free). Folds the
    /// batch's accounting into [`Metrics`]: the `rknn_*` counters plus
    /// the service dispositions (retries/timeouts/drops) of the
    /// verification requests. Membership is invariant to thread count and
    /// shard layout like every other query type (proven in
    /// `tests/rknn.rs`).
    pub fn run_rknn(&mut self, queries: &[RknnQuery]) -> RknnBatch {
        let hosts = self.rknn_hosts();
        let batch = rknn_batch(
            self.service.residual_service(),
            &self.config.retry,
            &mut RetryBudget::unlimited(),
            queries,
            &hosts,
        );
        self.metrics.record_rknn(&batch.stats);
        // Service dispositions only — an RkNN batch is not a kNN query,
        // so the attribution counters (queries/server/...) stay untouched.
        self.metrics.server_retries += batch.trace.server_retries as u64;
        self.metrics.server_timeouts += batch.trace.server_timeouts as u64;
        self.metrics.server_drops += batch.trace.server_drops as u64;
        self.metrics.server_shed += batch.trace.server_shed as u64;
        self.metrics.server_retries_denied += batch.trace.server_retries_denied as u64;
        batch
    }

    /// Relocates a Poisson-distributed number of POIs for the elapsed
    /// interval (uniform new positions near the road network).
    fn apply_poi_churn(&mut self, interval_secs: f64) {
        if self.config.poi_churn_per_hour <= 0.0 || self.poi_positions.is_empty() {
            return;
        }
        let lambda = self.config.poi_churn_per_hour * interval_secs / 3600.0;
        let moves = poisson(lambda, &mut self.rng);
        let side = self.config.params.area_side_m();
        for _ in 0..moves {
            let id = self.rng.gen_range(0..self.poi_positions.len());
            let new_pos = Point::new(self.rng.gen_range(0.0..side), self.rng.gen_range(0.0..side));
            let old = self.poi_positions[id];
            if self.server.relocate(id as u64, old, new_pos) {
                // The service backend mirrors the truth server's index.
                let mirrored = self
                    .service
                    .residual_service_mut()
                    .inner_mut()
                    .relocate(id as u64, old, new_pos);
                debug_assert!(mirrored, "service backend diverged from truth server");
                self.poi_positions[id] = new_pos;
            }
        }
    }

    /// Launches the Poisson-sized query batch for an elapsed interval.
    ///
    /// Plan → execute → merge (see the module docs): all randomness is
    /// drawn up front in batch order, execution reads a frozen snapshot
    /// (fanned out across threads with the `parallel` feature), and the
    /// outcomes are folded into metrics and caches in query-index order —
    /// so the parallel and sequential engines produce identical metrics.
    fn run_query_batch(&mut self, interval_secs: f64) {
        let lambda = self.config.params.lambda_query_per_min * interval_secs / 60.0;
        let n = poisson(lambda, &mut self.rng).min(self.store.len() as u64) as usize;
        if matches!(self.service, ServiceHandle::Overlapped(_)) {
            // Overlapped transport: plan/execute as below, but residuals
            // are enqueued (not awaited) and earlier intervals' matured
            // completions are polled and folded — even when n == 0, since
            // the elapsed interval may have matured completions.
            self.run_query_batch_overlapped(n);
            return;
        }
        if n == 0 {
            return;
        }
        // Phase 1 — plan (crate::query_step).
        let plans = self.plan_batch(n);

        // Phase 2 — snapshot: under incremental maintenance the grid is
        // already current (the movement pass applied every cell move);
        // the rebuild fallback reconstructs it from the position column.
        if self.config.grid_maintenance == GridMaintenance::Rebuild {
            self.grid.rebuild(
                self.area,
                self.config.params.tx_range_m.max(1.0),
                self.store.positions(),
            );
        }

        // Phase 3 — execute against the frozen snapshot (crate::query_step),
        // in three passes: the parallel peer stages, then ONE interval
        // batch of every residual through the service seam (retry and
        // degradation included), then the parallel measurement pass.
        // Results come back in query-index order regardless of thread
        // scheduling.
        let started = std::time::Instant::now();
        let pendings = self.execute_batch(&plans);
        let pendings = self.submit_residual_batch(&plans, pendings);
        // Network-mode only: SNNN expansion rounds on the main thread, in
        // query-index order — interval-batched by default, with bound-
        // driven candidate pruning (round residuals go through the
        // configured service; the keyed fault schedule is invariant to
        // threads, shards and batch layout).
        let (pendings, expand) = self.expand_network_batch(&plans, pendings);
        let measures = self.measure_batch(&plans, &pendings);
        self.batch_stats.snnn_rounds += expand.rounds;
        self.batch_stats.snnn_submissions += expand.submissions;
        self.batch_stats.shared_groups += expand.shared_groups;
        self.batch_stats.shared_solo_settles += expand.shared_solo_settles;
        self.batch_stats.shared_settles += expand.shared_settles;
        self.batch_stats
            .record(started.elapsed().as_secs_f64(), n as u64);

        // Phase 4 — merge in query order (crate::cache_step): exactly the
        // fold a sequential left-to-right execution would perform.
        for ((plan, pending), measured) in plans.iter().zip(pendings).zip(measures) {
            self.apply_outcome(
                plan,
                crate::query_step::QueryOutcome::assemble(pending, measured),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamSet, SimParams};

    fn tiny_config(seed: u64) -> SimConfig {
        let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
        params.t_execution_hours = 0.05; // 3 simulated minutes
        SimConfig::new(params, seed)
    }

    #[test]
    fn simulation_runs_and_issues_queries() {
        let mut sim = Simulator::new(tiny_config(1));
        let m = sim.run();
        assert!(m.queries > 0, "no queries issued");
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "every query is attributed exactly once"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(tiny_config(seed));
            let m = sim.run();
            (
                m.queries,
                m.server,
                m.single_peer,
                m.multi_peer,
                m.einn_accesses,
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn free_movement_mode_runs() {
        let mut cfg = tiny_config(3);
        cfg.mode = MovementMode::FreeMovement;
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 0);
    }

    #[test]
    fn sharing_reduces_server_load_in_dense_world() {
        // Dense hosts + long horizon: a large share of queries must be
        // peer-answered once caches are warm.
        let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
        params.t_execution_hours = 0.2;
        let mut cfg = SimConfig::new(params, 7);
        cfg.compare_inn = false;
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 100);
        assert!(
            m.sqrr() < 0.9,
            "dense scenario should offload some queries to peers (sqrr={})",
            m.sqrr()
        );
        assert!(m.single_peer + m.multi_peer > 0);
    }

    #[test]
    fn einn_never_reads_more_pages_than_inn() {
        let mut sim = Simulator::new(tiny_config(11));
        let m = sim.run();
        if m.server > 0 {
            assert!(
                m.einn_accesses <= m.inn_accesses,
                "EINN {} vs INN {}",
                m.einn_accesses,
                m.inn_accesses
            );
        }
    }

    #[test]
    fn fixed_k_is_respected() {
        let mut cfg = tiny_config(13);
        cfg.k_choice = KChoice::Fixed(4);
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.per_k.keys().all(|&k| k == 4));
    }

    #[test]
    fn heap_states_recorded_for_server_queries() {
        let mut sim = Simulator::new(tiny_config(99));
        let m = sim.run();
        let total: u64 = m.heap_states.iter().sum();
        assert_eq!(total, m.server, "one state per server-bound query");
    }

    #[test]
    fn stage_timings_accumulate_in_batch_stats() {
        let mut sim = Simulator::new(tiny_config(5));
        let m = sim.run();
        let stats = sim.batch_stats();
        // Every query runs PeerProbe exactly once (stage 0), even over an
        // empty peer set; pure-Euclidean runs never hit the expansion cap.
        assert!(stats.stage_calls[0] >= m.queries);
        assert_eq!(m.expansion_cap_hits, 0);
        // Server-resolved queries each ran the residual stage.
        assert!(stats.stage_calls[3] >= m.server);
    }

    #[test]
    fn network_model_without_road_network_is_rejected_at_build_time() {
        let err = SimConfig::builder()
            .mode(MovementMode::FreeMovement)
            .distance_model(NetworkModelKind::AStar)
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::NetworkModelWithoutRoadNetwork);
        // The message names the fix, not just the failure.
        assert!(err.to_string().contains("RoadNetwork"));
    }

    #[test]
    fn network_model_with_uncertain_answers_is_rejected() {
        let err = SimConfig::builder()
            .accept_uncertain(true)
            .distance_model(NetworkModelKind::Alt { landmarks: 4 })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::NetworkModelWithUncertainAnswers);
    }

    #[test]
    fn alt_model_needs_landmarks() {
        let err = SimConfig::builder()
            .distance_model(NetworkModelKind::Alt { landmarks: 0 })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::AltWithoutLandmarks);
        // Valid combinations still build.
        let cfg = SimConfig::builder()
            .distance_model(NetworkModelKind::Alt { landmarks: 4 })
            .try_build()
            .unwrap();
        assert_eq!(
            cfg.distance_model,
            Some(NetworkModelKind::Alt { landmarks: 4 })
        );
    }

    #[test]
    fn zero_transport_window_is_rejected() {
        let err = SimConfig::builder()
            .transport(TransportPolicy {
                window: 0,
                ..TransportPolicy::default()
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::ZeroInFlightWindow);
        // The message names the knob to fix.
        assert!(err.to_string().contains("window"));
    }

    #[test]
    fn zero_transport_queue_capacity_is_rejected() {
        let err = SimConfig::builder()
            .transport(TransportPolicy {
                queue_cap: 0,
                ..TransportPolicy::default()
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::ZeroQueueCapacity);
        assert!(err.to_string().contains("queue"));
    }

    #[test]
    fn degenerate_adaptive_window_band_is_rejected() {
        let err = SimConfig::builder()
            .transport_adaptive(AdaptivePolicy {
                window_min: 8,
                window_start: 8,
                window_max: 4,
                ..AdaptivePolicy::default()
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::InvalidAdaptiveWindow);
        assert!(err.to_string().contains("window"));
        // A zero floor is equally rejected — the AIMD clamp needs ≥ 1.
        let err = SimConfig::builder()
            .transport_adaptive(AdaptivePolicy {
                window_min: 0,
                ..AdaptivePolicy::default()
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::InvalidAdaptiveWindow);
    }

    #[test]
    fn non_contracting_adaptive_shrink_is_rejected() {
        let err = SimConfig::builder()
            .transport_adaptive(AdaptivePolicy {
                shrink_num: 2,
                shrink_den: 2,
                ..AdaptivePolicy::default()
            })
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::InvalidAdaptiveShrink);
        assert!(err.to_string().contains("shrink"));
        // The defaults themselves must build.
        let cfg = SimConfig::builder()
            .transport_adaptive(AdaptivePolicy::default())
            .try_build()
            .unwrap();
        assert!(cfg.transport.unwrap().adaptive.is_some());
    }

    #[test]
    fn transport_with_network_model_is_rejected() {
        let err = SimConfig::builder()
            .transport(TransportPolicy::default())
            .distance_model(NetworkModelKind::AStar)
            .try_build()
            .unwrap_err();
        assert_eq!(err, SimConfigError::TransportWithNetworkModel);
        // A valid transport config still builds.
        let cfg = SimConfig::builder()
            .transport(TransportPolicy::default())
            .try_build()
            .unwrap();
        assert!(cfg.transport.is_some());
    }

    #[test]
    fn overlapped_transport_attributes_every_query() {
        // Residuals complete in later intervals (or in the final drain),
        // yet every issued query must still be attributed exactly once
        // and travel through the transport's counters.
        let cfg = tiny_config(17)
            .to_builder()
            .transport(TransportPolicy::default())
            .build();
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 0, "no queries issued");
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "every query is attributed exactly once"
        );
        let stats = sim.transport_stats().expect("overlapped mode");
        assert!(stats.enqueued > 0, "residuals must ride the transport");
        // After the final drain nothing is left in flight.
        assert_eq!(stats.completed, stats.enqueued);
        assert!(sim.batch_stats().in_flight_peak > 0);
        // Transport counters span the whole run; `Metrics` reset at
        // warm-up — the snapshot can only be larger.
        assert!(sim.batch_stats().shed_count >= m.server_shed);
    }

    #[test]
    fn adaptive_transport_attributes_every_query_and_reports_windows() {
        let cfg = tiny_config(17)
            .to_builder()
            .transport_adaptive(AdaptivePolicy::default())
            .build();
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 0, "no queries issued");
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "every query is attributed exactly once"
        );
        let stats = sim.transport_stats().expect("overlapped mode");
        assert_eq!(stats.completed, stats.enqueued);
        // Strict-priority dispatch never inverts: the counter is a
        // defensive witness and must stay zero.
        assert_eq!(stats.priority_inversions, 0);
        // Window telemetry flows into BatchStats and respects the band.
        let a = AdaptivePolicy::default();
        let bs = sim.batch_stats();
        assert!(bs.window_min >= 1);
        assert!(bs.window_min <= bs.window_max);
        assert!(bs.window_final >= 1);
        assert!(bs.window_max as usize <= a.window_max);
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn build_panics_on_invalid_combination() {
        let _ = SimConfig::builder()
            .mode(MovementMode::FreeMovement)
            .distance_model(NetworkModelKind::TimeDependent { start_hour: 8.0 })
            .build();
    }

    #[test]
    fn churn_and_ttl_behave() {
        // Without churn nothing is graded; with churn some peer answers
        // are graded and a TTL reduces the stale rate.
        let mut base = tiny_config(31);
        base.params.t_execution_hours = 0.3;
        base.compare_inn = false;

        let mut no_churn = Simulator::new(base);
        let m0 = no_churn.run();
        assert_eq!(m0.peer_answers_graded, 0);
        assert_eq!(m0.stale_answer_rate(), 0.0);

        let mut churned_cfg = base;
        churned_cfg.poi_churn_per_hour = 16.0;
        let mut churned = Simulator::new(churned_cfg);
        let mc = churned.run();
        assert!(
            mc.peer_answers_graded > 0,
            "churn runs must grade peer answers"
        );
        assert!(
            mc.peer_answers_wrong > 0,
            "heavy churn must produce stale answers"
        );

        let mut ttl_cfg = churned_cfg;
        ttl_cfg.cache_ttl_secs = Some(240.0);
        let mut with_ttl = Simulator::new(ttl_cfg);
        let mt = with_ttl.run();
        assert!(
            mt.stale_answer_rate() < mc.stale_answer_rate(),
            "TTL must reduce staleness ({:.2} vs {:.2})",
            mt.stale_answer_rate(),
            mc.stale_answer_rate()
        );
        // The ground truth mirror stays consistent with the server.
        let (hits, _) = with_ttl
            .server()
            .tree()
            .range_query(senn_geom::Rect::new(Point::ORIGIN, Point::new(1e9, 1e9)));
        assert_eq!(hits.len(), with_ttl.poi_positions.len());
        for (p, id) in hits {
            assert_eq!(with_ttl.poi_positions[*id as usize], p);
        }
    }
}
