//! The simulator: mobile-host module + server module (Section 4.1).
//!
//! * Every mobile host is an independent object with its own mobility
//!   state, NN result cache and RNG stream.
//! * The simulation advances in Poisson-distributed intervals; at the end
//!   of each interval a random subset of hosts (sized by `λ_Query`)
//!   launches kNN queries.
//! * Each query runs Algorithm 1 (SENN) against the peers currently in
//!   radio range; queries the peers cannot complete go to the server
//!   module, which executes both EINN (with the forwarded bounds) and the
//!   original INN on its R\*-tree and records node accesses for the PAR
//!   comparison (Section 4.4).
//! * Results are recorded only after a warm-up period ("all simulation
//!   results were recorded after the system reached steady state").
//!
//! ## Batch engine
//!
//! Each interval's query batch runs in three phases: **plan** (every
//! random draw, in batch order, against the live RNG streams), **execute**
//! (each planned query reads a frozen snapshot of host positions, caches
//! and the server — a pure function, fanned out across worker threads when
//! the `parallel` feature is on), and **merge** (outcomes are folded into
//! the metrics and host caches in query-index order). Because the fold
//! order is fixed by the plan, the parallel engine produces bit-identical
//! [`Metrics`] to the sequential path. All queries of a batch see the
//! cache state from the start of the batch; stores land at merge time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use senn_cache::{CacheEntry, CachedNn, LruCache, MostRecentCache, QueryCache};
use senn_core::multiple::RegionMethod;
use senn_core::{RTreeServer, Resolution, SearchBounds, SennConfig, SennEngine, SpatialServer};
use senn_geom::{Point, Rect};
use senn_mobility::{HostMobility, RandomWaypoint, RoadMover, RoadMoverConfig, WaypointConfig};
use senn_network::{generate_network, GeneratorConfig, NodeLocator, RoadNetwork};

use crate::grid::HostGrid;
use crate::metrics::Metrics;
use crate::params::SimParams;

/// Movement mode of the mobile hosts (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MovementMode {
    /// Hosts follow the road network at per-segment speed limits.
    RoadNetwork,
    /// Hosts move freely (random waypoint) at a fixed velocity.
    FreeMovement,
}

/// Which host-side cache policy the simulation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// The paper's policy: only the most recent query's certain NNs.
    MostRecent,
    /// Extension/ablation: several past results under a shared NN budget.
    Lru,
}

/// How the number of requested neighbors `k` is chosen per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KChoice {
    /// Every query uses the same `k`.
    Fixed(usize),
    /// `k` is uniform in `[lo, hi]` — the paper "chose k randomly for each
    /// host and each query in the range from 1 to 9 and 3 to 15".
    Uniform(usize, usize),
    /// Uniform in `1..=2·λ_kNN − 1`, i.e. mean `λ_kNN` (the default).
    MeanLambda,
}

/// Full configuration of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Table 3/4 parameters.
    pub params: SimParams,
    /// Road-network or free movement.
    pub mode: MovementMode,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Fraction of `T_execution` discarded as warm-up.
    pub warmup_frac: f64,
    /// Mean spacing of query batches, seconds (interval lengths are
    /// exponential, i.e. batch arrivals form a Poisson process).
    pub mean_interval_secs: f64,
    /// Certain-region representation used by `kNN_multiple`.
    pub region_method: RegionMethod,
    /// How each query's `k` is drawn.
    pub k_choice: KChoice,
    /// Also run the baseline INN for every server-bound query (PAR
    /// comparison; small extra cost).
    pub compare_inn: bool,
    /// Host-side cache policy (the paper uses [`CachePolicy::MostRecent`]).
    pub cache_policy: CachePolicy,
    /// Accept a full heap of uncertain answers instead of contacting the
    /// server (Algorithm 1, line 15). Off by default; when on, the
    /// simulator grades every accepted answer against the ground truth
    /// (see [`Metrics::uncertain_exact`]).
    pub accept_uncertain: bool,
    /// Expected POI relocations per simulated hour (gas stations closing
    /// and opening elsewhere). `0.0` (the paper's setting) keeps POIs
    /// static. With churn, peer-resolved answers are graded against the
    /// current ground truth.
    pub poi_churn_per_hour: f64,
    /// Time-to-live for cached entries: peers ignore (and hosts purge)
    /// entries older than this. `None` disables TTL invalidation.
    pub cache_ttl_secs: Option<f64>,
    /// Worker threads for the batch engine when the `parallel` feature is
    /// on: `None` uses every available core (`SENN_THREADS` still
    /// overrides), `Some(1)` forces the in-process sequential path.
    /// Metrics are identical either way; only wall time changes.
    pub threads: Option<usize>,
}

impl SimConfig {
    /// Defaults for a parameter set: road-network mode, 20 % warm-up, 10 s
    /// mean batch interval, polygonized regions, random `k`, INN shadow on.
    pub fn new(params: SimParams, seed: u64) -> Self {
        SimConfig {
            params,
            mode: MovementMode::RoadNetwork,
            seed,
            warmup_frac: 0.2,
            mean_interval_secs: 10.0,
            region_method: RegionMethod::default(),
            k_choice: KChoice::MeanLambda,
            compare_inn: true,
            cache_policy: CachePolicy::MostRecent,
            accept_uncertain: false,
            poi_churn_per_hour: 0.0,
            cache_ttl_secs: None,
            threads: None,
        }
    }
}

/// Either cache implementation, dispatched statically per run.
enum HostCache {
    MostRecent(MostRecentCache),
    Lru(LruCache),
}

impl HostCache {
    fn store(&mut self, entry: CacheEntry) {
        match self {
            HostCache::MostRecent(c) => c.store(entry),
            HostCache::Lru(c) => c.store(entry),
        }
    }

    fn entries(&self) -> Vec<&CacheEntry> {
        match self {
            HostCache::MostRecent(c) => c.entries(),
            HostCache::Lru(c) => c.entries(),
        }
    }
}

struct Host {
    mobility: HostMobility,
    cache: HostCache,
    rng: SmallRng,
}

/// The simulator state.
pub struct Simulator {
    config: SimConfig,
    area: Rect,
    network: Option<RoadNetwork>,
    /// Current POI positions, indexed by POI id (ground truth mirror).
    poi_positions: Vec<Point>,
    server: RTreeServer,
    engine: SennEngine,
    hosts: Vec<Host>,
    rng: SmallRng,
    metrics: Metrics,
    time: f64,
    warmed_up: bool,
    /// Peer-discovery grid, rebuilt in place once per batch; holds the
    /// frozen position snapshot every query of the batch reads.
    grid: HostGrid,
    /// Reused staging buffer for host positions between batches.
    pos_buf: Vec<Point>,
    batch_stats: BatchStats,
}

/// Wall-clock statistics of the batch-execution phase, accumulated over a
/// whole run (warm-up included). Timing is observation only — it never
/// feeds back into the simulation, so instrumentation cannot perturb
/// determinism.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Executed batches (only batches that had at least one query).
    pub batches: u64,
    /// Queries executed across all batches.
    pub queries: u64,
    /// Total wall time spent in the execute phase, seconds.
    pub exec_secs: f64,
    /// Wall time of the slowest single batch, seconds.
    pub peak_batch_secs: f64,
    /// Query count of that slowest batch.
    pub peak_batch_queries: u64,
}

impl BatchStats {
    fn record(&mut self, secs: f64, queries: u64) {
        self.batches += 1;
        self.queries += queries;
        self.exec_secs += secs;
        if secs > self.peak_batch_secs {
            self.peak_batch_secs = secs;
            self.peak_batch_queries = queries;
        }
    }

    /// Mean executed queries per second of execute-phase wall time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.exec_secs > 0.0 {
            self.queries as f64 / self.exec_secs
        } else {
            0.0
        }
    }
}

/// One planned query of a batch. Every random draw happens up front in
/// batch order, so executing a plan is a pure function of the frozen world
/// snapshot and can run on any thread.
#[derive(Clone, Copy, Debug)]
struct QueryPlan {
    querier: u32,
    k: usize,
}

/// The flat, thread-crossing result of executing one planned query —
/// everything the merge phase needs to update metrics and caches.
struct QueryOutcome {
    resolution: Resolution,
    remote_entries: u64,
    remote_records: u64,
    graded: bool,
    wrong: bool,
    uncertain_exact: bool,
    uncertain_inflation: f64,
    heap_state_idx: Option<usize>,
    einn_accesses: u64,
    inn_accesses: Option<u64>,
    cache_entry: Option<CacheEntry>,
}

/// Reusable per-worker buffers for query execution: peer ids from the
/// grid and borrowed peer cache entries. One scratch per worker makes the
/// steady-state query path allocation-free.
struct QueryScratch<'a> {
    peer_ids: Vec<u32>,
    peers: Vec<&'a CacheEntry>,
}

impl QueryScratch<'_> {
    fn new() -> Self {
        QueryScratch {
            peer_ids: Vec::new(),
            peers: Vec::new(),
        }
    }
}

impl Simulator {
    /// Builds the world: road network (when needed), POIs, hosts.
    pub fn new(config: SimConfig) -> Self {
        let params = &config.params;
        assert!(params.mh_number >= 1, "need at least one host");
        assert!(
            (0.0..1.0).contains(&config.warmup_frac),
            "warm-up must be in [0,1)"
        );
        let side = params.area_side_m();
        let area = Rect::new(Point::ORIGIN, Point::new(side, side));
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Road network (also generated in free-movement mode so POI
        // placement matches across mode comparisons — POIs sit near roads).
        let network = generate_network(&GeneratorConfig::city(side, config.seed ^ 0x9e37));
        let locator = NodeLocator::new(&network);

        // POIs: uniform positions snapped near the network (gas stations
        // sit on streets).
        let mut pois = Vec::with_capacity(params.poi_number);
        for i in 0..params.poi_number {
            let raw = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let snapped = locator
                .nearest(raw)
                .map(|n| network.position(n))
                .unwrap_or(raw);
            // Offset slightly off the junction so distances are generic.
            let jitterx = rng.gen_range(-20.0..20.0);
            let jittery = rng.gen_range(-20.0..20.0);
            let p = Point::new(
                (snapped.x + jitterx).clamp(0.0, side),
                (snapped.y + jittery).clamp(0.0, side),
            );
            pois.push((i as u64, p));
        }
        let poi_positions: Vec<Point> = pois.iter().map(|(_, p)| *p).collect();
        let server = RTreeServer::new(pois);

        // Hosts: random start positions; `M_Percentage` of them move.
        // Urban trips are local: a couple of kilometers between stops keeps
        // the displacement from a host's cached query location diffusive
        // rather than ballistic, which is what makes sharing effective.
        let mover_cfg = RoadMoverConfig {
            velocity_mps: params.velocity_mps(),
            max_pause_secs: 600.0,
            trip_radius: (side * 0.5).min(3000.0),
        };
        let mut waypoint_cfg = WaypointConfig::new(area, params.velocity_mps());
        waypoint_cfg.max_pause_secs = mover_cfg.max_pause_secs;
        waypoint_cfg.trip_radius = Some(mover_cfg.trip_radius);
        let mut hosts = Vec::with_capacity(params.mh_number);
        for i in 0..params.mh_number {
            let mut host_rng = SmallRng::seed_from_u64(config.seed ^ (0xc0ffee + i as u64 * 7919));
            let start = Point::new(host_rng.gen_range(0.0..side), host_rng.gen_range(0.0..side));
            let moves = host_rng.gen_bool(params.m_percentage);
            let mobility = if !moves {
                HostMobility::Parked(start)
            } else {
                match config.mode {
                    MovementMode::FreeMovement => {
                        HostMobility::Free(RandomWaypoint::new(start, waypoint_cfg, &mut host_rng))
                    }
                    MovementMode::RoadNetwork => {
                        let node = locator.nearest(start).expect("network non-empty");
                        HostMobility::Road(RoadMover::new(&network, node, mover_cfg))
                    }
                }
            };
            let cache = match config.cache_policy {
                CachePolicy::MostRecent => {
                    HostCache::MostRecent(MostRecentCache::new(params.c_size))
                }
                CachePolicy::Lru => HostCache::Lru(LruCache::new(params.c_size)),
            };
            hosts.push(Host {
                mobility,
                cache,
                rng: host_rng,
            });
        }

        let engine = SennEngine::new(SennConfig {
            region_method: config.region_method,
            accept_uncertain: config.accept_uncertain,
            server_fetch: params.c_size,
        });

        let grid = HostGrid::build(area, config.params.tx_range_m.max(1.0), &[]);
        Simulator {
            config,
            area,
            network: Some(network),
            poi_positions,
            server,
            engine,
            hosts,
            rng,
            metrics: Metrics::new(),
            time: 0.0,
            warmed_up: false,
            grid,
            pos_buf: Vec::new(),
            batch_stats: BatchStats::default(),
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The road network of the world.
    pub fn network(&self) -> Option<&RoadNetwork> {
        self.network.as_ref()
    }

    /// The server module.
    pub fn server(&self) -> &RTreeServer {
        &self.server
    }

    /// Collected metrics (post warm-up).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Wall-clock statistics of the batch execute phase (for benchmarks
    /// and the perf gate; unrelated to simulated time).
    pub fn batch_stats(&self) -> &BatchStats {
        &self.batch_stats
    }

    /// Runs the configured `T_execution` (including warm-up) and returns
    /// the steady-state metrics.
    pub fn run(&mut self) -> Metrics {
        let total = self.config.params.duration_secs();
        let warmup_end = total * self.config.warmup_frac;
        while self.time < total {
            // Next query batch after an exponential interval.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let interval = -u.ln() * self.config.mean_interval_secs;
            let interval = interval.min(total - self.time).max(1e-6);
            self.advance_movement(interval);
            self.apply_poi_churn(interval);
            self.time += interval;
            if !self.warmed_up && self.time >= warmup_end {
                self.metrics.reset();
                self.warmed_up = true;
            }
            self.run_query_batch(interval);
        }
        self.metrics.clone()
    }

    /// Relocates a Poisson-distributed number of POIs for the elapsed
    /// interval (uniform new positions near the road network).
    fn apply_poi_churn(&mut self, interval_secs: f64) {
        if self.config.poi_churn_per_hour <= 0.0 || self.poi_positions.is_empty() {
            return;
        }
        let lambda = self.config.poi_churn_per_hour * interval_secs / 3600.0;
        let moves = poisson(lambda, &mut self.rng);
        let side = self.config.params.area_side_m();
        for _ in 0..moves {
            let id = self.rng.gen_range(0..self.poi_positions.len());
            let new_pos = Point::new(self.rng.gen_range(0.0..side), self.rng.gen_range(0.0..side));
            let old = self.poi_positions[id];
            if self.server.relocate(id as u64, old, new_pos) {
                self.poi_positions[id] = new_pos;
            }
        }
    }

    /// Moves every host forward by `dt` seconds.
    fn advance_movement(&mut self, dt: f64) {
        let net = self.network.as_ref();
        for host in &mut self.hosts {
            host.mobility.step(net, dt, &mut host.rng);
        }
    }

    /// Launches the Poisson-sized query batch for an elapsed interval.
    ///
    /// Plan → execute → merge (see the module docs): all randomness is
    /// drawn up front in batch order, execution reads a frozen snapshot
    /// (fanned out across threads with the `parallel` feature), and the
    /// outcomes are folded into metrics and caches in query-index order —
    /// so the parallel and sequential engines produce identical metrics.
    fn run_query_batch(&mut self, interval_secs: f64) {
        let lambda = self.config.params.lambda_query_per_min * interval_secs / 60.0;
        let n = poisson(lambda, &mut self.rng).min(self.hosts.len() as u64) as usize;
        if n == 0 {
            return;
        }
        // Phase 1 — plan: the only place the batch touches RNG streams.
        // Draw order matches the sequential engine: querier from the
        // simulator stream, then that host's own stream for `k`.
        let mut plans = Vec::with_capacity(n);
        for _ in 0..n {
            let querier = self.rng.gen_range(0..self.hosts.len());
            let k = match self.config.k_choice {
                KChoice::Fixed(k) => k,
                KChoice::Uniform(lo, hi) => self.hosts[querier].rng.gen_range(lo..=hi.max(lo)),
                KChoice::MeanLambda => {
                    let max_k = (2 * self.config.params.lambda_knn).saturating_sub(1).max(1);
                    self.hosts[querier].rng.gen_range(1..=max_k)
                }
            };
            plans.push(QueryPlan {
                querier: querier as u32,
                k,
            });
        }

        // Phase 2 — snapshot: refresh the peer-discovery grid in place
        // from current positions (reusing last batch's allocations).
        self.pos_buf.clear();
        self.pos_buf
            .extend(self.hosts.iter().map(|h| h.mobility.position()));
        self.grid.rebuild(
            self.area,
            self.config.params.tx_range_m.max(1.0),
            &self.pos_buf,
        );

        // Phase 3 — execute against the frozen snapshot; outcomes come
        // back in query-index order regardless of thread scheduling.
        let started = std::time::Instant::now();
        let outcomes = self.execute_batch(&plans);
        self.batch_stats
            .record(started.elapsed().as_secs_f64(), n as u64);

        // Phase 4 — merge in query order: exactly the fold a sequential
        // left-to-right execution would perform.
        for (plan, outcome) in plans.iter().zip(outcomes) {
            self.apply_outcome(plan, outcome);
        }
    }

    /// Executes every planned query of a batch against the frozen
    /// snapshot, fanning out across worker threads.
    #[cfg(feature = "parallel")]
    fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<QueryOutcome> {
        let threads = self.config.threads.unwrap_or_else(senn_par::worker_count);
        senn_par::par_map_with_threads(plans, threads, QueryScratch::new, |scratch, _, plan| {
            self.execute_query(plan, scratch)
        })
    }

    /// Sequential fallback when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<QueryOutcome> {
        let mut scratch = QueryScratch::new();
        plans
            .iter()
            .map(|plan| self.execute_query(plan, &mut scratch))
            .collect()
    }

    /// Executes one planned SENN query against the frozen batch snapshot.
    ///
    /// Takes `&self` only: no RNG, no metrics, no cache writes — anything
    /// mutable is returned in the [`QueryOutcome`] and applied by
    /// [`Self::apply_outcome`]. This is the property that lets the batch
    /// fan out across threads.
    fn execute_query<'a>(
        &'a self,
        plan: &QueryPlan,
        scratch: &mut QueryScratch<'a>,
    ) -> QueryOutcome {
        let querier = plan.querier as usize;
        let k = plan.k;
        let q = self.grid.positions()[querier];
        // "A mobile host will first attempt to answer each spatial query
        // from its local cache and via the SENN algorithm": the querier's
        // own cached result participates exactly like a peer's, followed by
        // the caches of hosts in radio range.
        self.grid.within_into(
            q,
            self.config.params.tx_range_m,
            plan.querier,
            &mut scratch.peer_ids,
        );
        let now = self.time;
        let ttl = self.config.cache_ttl_secs;
        let fresh = move |e: &CacheEntry| ttl.is_none_or(|t| !e.is_expired(now, t));
        scratch.peers.clear();
        scratch.peers.extend(
            self.hosts[querier]
                .cache
                .entries()
                .into_iter()
                .filter(|e| fresh(e)),
        );
        let own_count = scratch.peers.len();
        for &id in &scratch.peer_ids {
            scratch.peers.extend(
                self.hosts[id as usize]
                    .cache
                    .entries()
                    .into_iter()
                    .filter(|e| fresh(e)),
            );
        }

        let outcome = self.engine.query(q, k, &scratch.peers, &self.server);

        // P2P communication overhead: every non-empty peer entry crosses
        // the ad-hoc channel once ("it may increase the communication
        // overheads among mobile hosts" — quantified here). The querier's
        // own cache entry is local and free.
        let remote_entries = (scratch.peers.len() - own_count) as u64;
        let remote_records = scratch.peers[own_count..]
            .iter()
            .map(|e| e.len() as u64)
            .sum::<u64>();

        let matches_truth = |truth: &senn_core::ServerResponse| {
            truth.pois.len() == outcome.results.len()
                && truth
                    .pois
                    .iter()
                    .zip(&outcome.results)
                    .all(|((t, _), r)| t.poi_id == r.poi.poi_id)
        };
        let mut graded = false;
        let mut wrong = false;
        if self.config.poi_churn_per_hour > 0.0
            && matches!(
                outcome.resolution,
                Resolution::SinglePeer | Resolution::MultiPeer
            )
        {
            // Under churn, stale caches can certify objects that are no
            // longer the true NNs. Grade against current ground truth.
            let truth = self.server.knn(q, k, SearchBounds::NONE);
            graded = true;
            wrong = !matches_truth(&truth);
        }

        let mut uncertain_exact = false;
        let mut uncertain_inflation = 0.0;
        let mut heap_state_idx = None;
        let mut einn_accesses = 0;
        let mut inn_accesses = None;
        match outcome.resolution {
            Resolution::SinglePeer | Resolution::MultiPeer => {}
            Resolution::AcceptedUncertain => {
                // Grade the accepted answer against ground truth (a
                // measurement-only server call, not counted in PAR).
                let truth = self.server.knn(q, k, SearchBounds::NONE);
                uncertain_exact = matches_truth(&truth);
                let true_sum: f64 = truth.pois.iter().map(|(_, d)| d).sum();
                let got_sum: f64 = outcome.results.iter().map(|r| r.dist).sum();
                if true_sum > 0.0 {
                    uncertain_inflation = (got_sum / true_sum - 1.0).max(0.0);
                }
            }
            Resolution::Server | Resolution::Unresolved => {
                heap_state_idx = outcome.heap_state.map(|state| {
                    use senn_core::HeapState;
                    match state {
                        HeapState::FullMixed => 0,
                        HeapState::FullUncertain => 1,
                        HeapState::PartialMixed => 2,
                        HeapState::PartialCertain => 3,
                        HeapState::PartialUncertain => 4,
                        HeapState::Empty => 5,
                    }
                });
                // PAR measurement (Section 4.4): "the server module executes
                // both the original INN algorithm and our extended INN
                // algorithm (EINN) to compare the performance". Both run on
                // the pure k-query; the client's C_Size over-fetch (cache
                // refill) is protocol, not part of the comparison.
                let strictly_below = match outcome.bounds.lower {
                    Some(lb) => outcome
                        .results
                        .iter()
                        .filter(|e| e.certain && e.dist < lb - senn_geom::EPS)
                        .count(),
                    None => 0,
                };
                let need = k.saturating_sub(strictly_below).max(1);
                einn_accesses = self.server.knn(q, need, outcome.bounds).node_accesses;
                if self.config.compare_inn {
                    inn_accesses = Some(self.server.knn(q, k, SearchBounds::NONE).node_accesses);
                }
            }
        }

        // Cache policy 1: store the certain NNs of the most recent query.
        let cacheable: Vec<CachedNn> = outcome.cacheable().iter().map(|e| e.poi).collect();
        let cache_entry =
            (!cacheable.is_empty()).then(|| CacheEntry::new(q, cacheable).at_time(self.time));

        QueryOutcome {
            resolution: outcome.resolution,
            remote_entries,
            remote_records,
            graded,
            wrong,
            uncertain_exact,
            uncertain_inflation,
            heap_state_idx,
            einn_accesses,
            inn_accesses,
            cache_entry,
        }
    }

    /// Folds one executed query's outcome into metrics and the querier's
    /// cache. Called in query-index order, so the accumulation (including
    /// the `f64` inflation sum) matches a sequential run bit-for-bit.
    fn apply_outcome(&mut self, plan: &QueryPlan, outcome: QueryOutcome) {
        self.metrics.queries += 1;
        self.metrics.peer_entries_received += outcome.remote_entries;
        self.metrics.peer_records_received += outcome.remote_records;
        if outcome.graded {
            self.metrics.peer_answers_graded += 1;
            if outcome.wrong {
                self.metrics.peer_answers_wrong += 1;
            }
        }
        match outcome.resolution {
            Resolution::SinglePeer => self.metrics.single_peer += 1,
            Resolution::MultiPeer => self.metrics.multi_peer += 1,
            Resolution::AcceptedUncertain => {
                self.metrics.accepted_uncertain += 1;
                if outcome.uncertain_exact {
                    self.metrics.uncertain_exact += 1;
                }
                self.metrics.uncertain_inflation_sum += outcome.uncertain_inflation;
            }
            Resolution::Server | Resolution::Unresolved => {
                self.metrics.server += 1;
                if let Some(idx) = outcome.heap_state_idx {
                    self.metrics.heap_states[idx] += 1;
                }
                self.metrics.einn_accesses += outcome.einn_accesses;
                if let Some(inn) = outcome.inn_accesses {
                    self.metrics.inn_accesses += inn;
                }
                let entry = self.metrics.per_k.entry(plan.k).or_default();
                entry.queries += 1;
                entry.einn_accesses += outcome.einn_accesses;
                entry.inn_accesses += outcome.inn_accesses.unwrap_or(0);
            }
        }
        if let Some(entry) = outcome.cache_entry {
            self.hosts[plan.querier as usize].cache.store(entry);
        }
    }
}

/// Draws a Poisson-distributed count (Knuth's method; λ stays small here
/// because it is per-interval).
fn poisson(lambda: f64, rng: &mut SmallRng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 700.0 {
        // Normal approximation for very large λ (full-size Table 4 runs).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamSet, SimParams};

    fn tiny_config(seed: u64) -> SimConfig {
        let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
        params.t_execution_hours = 0.05; // 3 simulated minutes
        SimConfig::new(params, seed)
    }

    #[test]
    fn simulation_runs_and_issues_queries() {
        let mut sim = Simulator::new(tiny_config(1));
        let m = sim.run();
        assert!(m.queries > 0, "no queries issued");
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "every query is attributed exactly once"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(tiny_config(seed));
            let m = sim.run();
            (
                m.queries,
                m.server,
                m.single_peer,
                m.multi_peer,
                m.einn_accesses,
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn free_movement_mode_runs() {
        let mut cfg = tiny_config(3);
        cfg.mode = MovementMode::FreeMovement;
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 0);
    }

    #[test]
    fn sharing_reduces_server_load_in_dense_world() {
        // Dense hosts + long horizon: a large share of queries must be
        // peer-answered once caches are warm.
        let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
        params.t_execution_hours = 0.2;
        let mut cfg = SimConfig::new(params, 7);
        cfg.compare_inn = false;
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.queries > 100);
        assert!(
            m.sqrr() < 0.9,
            "dense scenario should offload some queries to peers (sqrr={})",
            m.sqrr()
        );
        assert!(m.single_peer + m.multi_peer > 0);
    }

    #[test]
    fn einn_never_reads_more_pages_than_inn() {
        let mut sim = Simulator::new(tiny_config(11));
        let m = sim.run();
        if m.server > 0 {
            assert!(
                m.einn_accesses <= m.inn_accesses,
                "EINN {} vs INN {}",
                m.einn_accesses,
                m.inn_accesses
            );
        }
    }

    #[test]
    fn fixed_k_is_respected() {
        let mut cfg = tiny_config(13);
        cfg.k_choice = KChoice::Fixed(4);
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        assert!(m.per_k.keys().all(|&k| k == 4));
    }

    #[test]
    fn heap_states_recorded_for_server_queries() {
        let mut sim = Simulator::new(tiny_config(99));
        let m = sim.run();
        let total: u64 = m.heap_states.iter().sum();
        assert_eq!(total, m.server, "one state per server-bound query");
    }

    #[test]
    fn churn_and_ttl_behave() {
        // Without churn nothing is graded; with churn some peer answers
        // are graded and a TTL reduces the stale rate.
        let mut base = tiny_config(31);
        base.params.t_execution_hours = 0.3;
        base.compare_inn = false;

        let mut no_churn = Simulator::new(base);
        let m0 = no_churn.run();
        assert_eq!(m0.peer_answers_graded, 0);
        assert_eq!(m0.stale_answer_rate(), 0.0);

        let mut churned_cfg = base;
        churned_cfg.poi_churn_per_hour = 16.0;
        let mut churned = Simulator::new(churned_cfg);
        let mc = churned.run();
        assert!(
            mc.peer_answers_graded > 0,
            "churn runs must grade peer answers"
        );
        assert!(
            mc.peer_answers_wrong > 0,
            "heavy churn must produce stale answers"
        );

        let mut ttl_cfg = churned_cfg;
        ttl_cfg.cache_ttl_secs = Some(240.0);
        let mut with_ttl = Simulator::new(ttl_cfg);
        let mt = with_ttl.run();
        assert!(
            mt.stale_answer_rate() < mc.stale_answer_rate(),
            "TTL must reduce staleness ({:.2} vs {:.2})",
            mt.stale_answer_rate(),
            mc.stale_answer_rate()
        );
        // The ground truth mirror stays consistent with the server.
        let (hits, _) = with_ttl
            .server()
            .tree()
            .range_query(senn_geom::Rect::new(Point::ORIGIN, Point::new(1e9, 1e9)));
        assert_eq!(hits.len(), with_ttl.poi_positions.len());
        for (p, id) in hits {
            assert_eq!(with_ttl.poi_positions[*id as usize], p);
        }
    }

    #[test]
    fn poisson_sanity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut total = 0u64;
        for _ in 0..2000 {
            total += poisson(3.0, &mut rng);
        }
        let mean = total as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.2, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
        // Large-λ path.
        let big = poisson(10_000.0, &mut rng);
        assert!((big as f64 - 10_000.0).abs() < 500.0);
    }
}
