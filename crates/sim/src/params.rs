//! The paper's simulation parameter sets (Tables 2, 3 and 4).
//!
//! Two real-world-derived sets (Los Angeles County: dense urban; Riverside
//! County: sparse rural) plus a synthetic suburban blend, each instantiated
//! for a 2×2-mile and a 30×30-mile region.

use senn_network::graph::METERS_PER_MILE;

/// Which county-derived parameter set to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamSet {
    /// Dense urban (5,498,554 registered vehicles; Table 3/4 column 1).
    LosAngeles,
    /// Sparse rural (944,645 registered vehicles; Table 3/4 column 2).
    Riverside,
    /// Suburban blend of the two (Table 3/4 column 3).
    Synthetic,
}

impl ParamSet {
    /// All three sets in the paper's presentation order.
    pub const ALL: [ParamSet; 3] = [
        ParamSet::LosAngeles,
        ParamSet::Synthetic,
        ParamSet::Riverside,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ParamSet::LosAngeles => "LA",
            ParamSet::Riverside => "RV",
            ParamSet::Synthetic => "SYN",
        }
    }

    /// Full name as in the figures.
    pub fn name(self) -> &'static str {
        match self {
            ParamSet::LosAngeles => "Los Angeles County",
            ParamSet::Riverside => "Riverside County",
            ParamSet::Synthetic => "Synthetic Suburbia",
        }
    }
}

/// One column of Table 3 or Table 4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimParams {
    /// Which county-derived set this is.
    pub set: ParamSet,
    /// Side of the square simulation area, in miles.
    pub area_miles: f64,
    /// `POI Number`: points of interest in the area.
    pub poi_number: usize,
    /// `MH Number`: mobile hosts in the area.
    pub mh_number: usize,
    /// `C_Size`: NN cache capacity per host.
    pub c_size: usize,
    /// `M_Percentage`: fraction of hosts that move (0..=1).
    pub m_percentage: f64,
    /// `M_Velocity`: host movement velocity in mph.
    pub m_velocity_mph: f64,
    /// `λ_Query`: mean queries per minute across the system.
    pub lambda_query_per_min: f64,
    /// `Tx_Range`: wireless transmission range in meters.
    pub tx_range_m: f64,
    /// `λ_kNN`: mean number of queried nearest neighbors.
    pub lambda_knn: usize,
    /// `T_execution`: simulated duration in hours.
    pub t_execution_hours: f64,
}

impl SimParams {
    /// Table 3: the 2×2-mile area parameter sets.
    pub fn two_by_two(set: ParamSet) -> SimParams {
        let (poi, mh, lambda_q) = match set {
            ParamSet::LosAngeles => (16, 463, 23.0),
            ParamSet::Riverside => (5, 50, 2.5),
            ParamSet::Synthetic => (11, 257, 13.0),
        };
        SimParams {
            set,
            area_miles: 2.0,
            poi_number: poi,
            mh_number: mh,
            c_size: 10,
            m_percentage: 0.8,
            m_velocity_mph: 30.0,
            lambda_query_per_min: lambda_q,
            tx_range_m: 200.0,
            lambda_knn: 3,
            t_execution_hours: 1.0,
        }
    }

    /// Table 4: the 30×30-mile area parameter sets.
    pub fn thirty_by_thirty(set: ParamSet) -> SimParams {
        let (poi, mh, lambda_q) = match set {
            ParamSet::LosAngeles => (4050, 121_500, 8100.0),
            ParamSet::Riverside => (2160, 11_700, 780.0),
            ParamSet::Synthetic => (3105, 66_600, 4440.0),
        };
        SimParams {
            set,
            area_miles: 30.0,
            poi_number: poi,
            mh_number: mh,
            c_size: 20,
            m_percentage: 0.8,
            m_velocity_mph: 30.0,
            lambda_query_per_min: lambda_q,
            tx_range_m: 200.0,
            lambda_knn: 5,
            t_execution_hours: 5.0,
        }
    }

    /// Area side in meters.
    pub fn area_side_m(&self) -> f64 {
        self.area_miles * METERS_PER_MILE
    }

    /// Host velocity in meters per second.
    pub fn velocity_mps(&self) -> f64 {
        self.m_velocity_mph * METERS_PER_MILE / 3600.0
    }

    /// Simulated duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.t_execution_hours * 3600.0
    }

    /// Scales the scenario down by `divisor` while *preserving densities*
    /// (hosts/mi², POIs/mi², queries per host): the area shrinks by
    /// `divisor`, its side by `sqrt(divisor)`, and all counts and rates by
    /// `divisor`. Used by benches and tests so county-scale scenarios run
    /// in seconds; the shapes of the results are preserved because every
    /// per-area statistic is unchanged.
    pub fn scaled_down(mut self, divisor: f64) -> SimParams {
        assert!(divisor >= 1.0, "use >= 1 divisors");
        self.area_miles /= divisor.sqrt();
        self.poi_number = ((self.poi_number as f64 / divisor).round() as usize).max(1);
        self.mh_number = ((self.mh_number as f64 / divisor).round() as usize).max(2);
        self.lambda_query_per_min = (self.lambda_query_per_min / divisor).max(0.5);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper, verbatim.
    #[test]
    fn params_match_paper_table_3() {
        let la = SimParams::two_by_two(ParamSet::LosAngeles);
        assert_eq!((la.poi_number, la.mh_number), (16, 463));
        assert_eq!(la.lambda_query_per_min, 23.0);
        let rv = SimParams::two_by_two(ParamSet::Riverside);
        assert_eq!((rv.poi_number, rv.mh_number), (5, 50));
        assert_eq!(rv.lambda_query_per_min, 2.5);
        let syn = SimParams::two_by_two(ParamSet::Synthetic);
        assert_eq!((syn.poi_number, syn.mh_number), (11, 257));
        assert_eq!(syn.lambda_query_per_min, 13.0);
        for p in [la, rv, syn] {
            assert_eq!(p.c_size, 10);
            assert_eq!(p.m_percentage, 0.8);
            assert_eq!(p.m_velocity_mph, 30.0);
            assert_eq!(p.tx_range_m, 200.0);
            assert_eq!(p.lambda_knn, 3);
            assert_eq!(p.t_execution_hours, 1.0);
            assert_eq!(p.area_miles, 2.0);
        }
    }

    /// Table 4 of the paper, verbatim.
    #[test]
    fn params_match_paper_table_4() {
        let la = SimParams::thirty_by_thirty(ParamSet::LosAngeles);
        assert_eq!((la.poi_number, la.mh_number), (4050, 121_500));
        assert_eq!(la.lambda_query_per_min, 8100.0);
        let rv = SimParams::thirty_by_thirty(ParamSet::Riverside);
        assert_eq!((rv.poi_number, rv.mh_number), (2160, 11_700));
        assert_eq!(rv.lambda_query_per_min, 780.0);
        let syn = SimParams::thirty_by_thirty(ParamSet::Synthetic);
        assert_eq!((syn.poi_number, syn.mh_number), (3105, 66_600));
        assert_eq!(syn.lambda_query_per_min, 4440.0);
        for p in [la, rv, syn] {
            assert_eq!(p.c_size, 20);
            assert_eq!(p.lambda_knn, 5);
            assert_eq!(p.t_execution_hours, 5.0);
            assert_eq!(p.area_miles, 30.0);
        }
    }

    #[test]
    fn unit_conversions() {
        let p = SimParams::two_by_two(ParamSet::LosAngeles);
        assert!((p.area_side_m() - 3218.688).abs() < 1e-3);
        assert!((p.velocity_mps() - 13.4112).abs() < 1e-3);
        assert_eq!(p.duration_secs(), 3600.0);
    }

    #[test]
    fn scaling_preserves_densities() {
        let p = SimParams::thirty_by_thirty(ParamSet::LosAngeles);
        let s = p.scaled_down(100.0);
        let density = |x: usize, a: f64| x as f64 / (a * a);
        assert!(
            (density(p.mh_number, p.area_miles) - density(s.mh_number, s.area_miles)).abs()
                / density(p.mh_number, p.area_miles)
                < 0.05
        );
        assert!(
            (density(p.poi_number, p.area_miles) - density(s.poi_number, s.area_miles)).abs()
                / density(p.poi_number, p.area_miles)
                < 0.05
        );
        // Queries per host per minute preserved.
        let qph = |l: f64, m: usize| l / m as f64;
        assert!(
            (qph(p.lambda_query_per_min, p.mh_number) - qph(s.lambda_query_per_min, s.mh_number))
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn labels() {
        assert_eq!(ParamSet::LosAngeles.label(), "LA");
        assert_eq!(ParamSet::Synthetic.name(), "Synthetic Suburbia");
        assert_eq!(ParamSet::ALL.len(), 3);
    }
}
