//! The cache/merge step of the batch engine: host-side cache policies and
//! the query-order fold of executed outcomes into [`Metrics`] and the
//! querier's cache. Because the fold order is fixed by the plan, this step
//! is what makes the parallel engine's metrics bit-identical to the
//! sequential path's.
//!
//! [`Metrics`]: crate::metrics::Metrics

use senn_cache::{CacheEntry, LruCache, MostRecentCache, QueryCache};
use senn_core::{Resolution, STAGE_COUNT};

use crate::query_step::{QueryOutcome, QueryPlan};
use crate::simulator::Simulator;

/// Which host-side cache policy the simulation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// The paper's policy: only the most recent query's certain NNs.
    MostRecent,
    /// Extension/ablation: several past results under a shared NN budget.
    Lru,
}

/// Either cache implementation, dispatched statically per run.
pub(crate) enum HostCache {
    MostRecent(MostRecentCache),
    Lru(LruCache),
}

impl HostCache {
    pub(crate) fn store(&mut self, entry: CacheEntry) {
        match self {
            HostCache::MostRecent(c) => c.store(entry),
            HostCache::Lru(c) => c.store(entry),
        }
    }

    /// Live entries, most recent first — the same order
    /// [`QueryCache::entries`] returns, without materializing a `Vec` per
    /// peer probe (the per-interval allocation budget excludes O(peers)
    /// churn).
    pub(crate) fn iter(&self) -> CacheIter<'_> {
        match self {
            HostCache::MostRecent(c) => CacheIter::One(c.entry().into_iter()),
            HostCache::Lru(c) => CacheIter::Many(c.iter()),
        }
    }
}

/// Non-allocating iterator over a [`HostCache`]'s live entries.
pub(crate) enum CacheIter<'a> {
    One(std::option::IntoIter<&'a CacheEntry>),
    Many(senn_cache::LruIter<'a>),
}

impl<'a> Iterator for CacheIter<'a> {
    type Item = &'a CacheEntry;

    fn next(&mut self) -> Option<&'a CacheEntry> {
        match self {
            CacheIter::One(it) => it.next(),
            CacheIter::Many(it) => it.next(),
        }
    }
}

impl Simulator {
    /// Folds one executed query's outcome into metrics and the querier's
    /// cache. Called in query-index order, so the accumulation (including
    /// the `f64` inflation sum) matches a sequential run bit-for-bit.
    /// Stage wall times from the trace land in the observation-only
    /// [`BatchStats`](crate::simulator::BatchStats), never in `Metrics`.
    pub(crate) fn apply_outcome(&mut self, plan: &QueryPlan, outcome: QueryOutcome) {
        self.metrics.record_trace(&outcome.trace);
        for i in 0..STAGE_COUNT {
            self.batch_stats.stage_nanos[i] += outcome.trace.stage_nanos[i];
            self.batch_stats.stage_calls[i] += outcome.trace.stage_calls[i];
        }
        self.metrics.peer_entries_received += outcome.remote_entries;
        self.metrics.peer_records_received += outcome.remote_records;
        if outcome.graded {
            self.metrics.peer_answers_graded += 1;
            if outcome.wrong {
                self.metrics.peer_answers_wrong += 1;
            }
        }
        match outcome.trace.resolution() {
            Resolution::SinglePeer | Resolution::MultiPeer => {}
            Resolution::AcceptedUncertain => {
                if outcome.uncertain_exact {
                    self.metrics.uncertain_exact += 1;
                }
                self.metrics.uncertain_inflation_sum += outcome.uncertain_inflation;
            }
            Resolution::Server | Resolution::Unresolved => {
                if let Some(idx) = outcome.heap_state_idx {
                    self.metrics.heap_states[idx] += 1;
                }
                self.metrics.einn_accesses += outcome.einn_accesses;
                if let Some(inn) = outcome.inn_accesses {
                    self.metrics.inn_accesses += inn;
                }
                let entry = self.metrics.per_k.entry(plan.k).or_default();
                entry.queries += 1;
                entry.einn_accesses += outcome.einn_accesses;
                entry.inn_accesses += outcome.inn_accesses.unwrap_or(0);
            }
        }
        if let Some(entry) = outcome.cache_entry {
            self.store.cache_store(plan.querier, entry);
        }
    }
}
