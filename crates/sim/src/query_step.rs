//! The query step of the batch engine: planning (every random draw, in
//! batch order), executing each plan as a pure function of the frozen
//! world snapshot via the staged SENN kernel, and the measurement-only
//! server calls (grading, EINN/INN shadow) that ride along.
//!
//! Execution takes `&self` only — no RNG, no metrics, no cache writes.
//! Anything mutable is returned in the [`QueryOutcome`] and folded in by
//! the merge phase ([`crate::cache_step`]), which is what lets the batch
//! fan out across threads while producing bit-identical
//! [`Metrics`](crate::metrics::Metrics).

use senn_cache::{CacheEntry, CachedNn};
use senn_core::{QueryTrace, Resolution, SearchBounds, SpatialServer};

use crate::comms::WorkerScratch;
use crate::simulator::{KChoice, Simulator};

/// One planned query of a batch. Every random draw happens up front in
/// batch order, so executing a plan is a pure function of the frozen world
/// snapshot and can run on any thread.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QueryPlan {
    pub(crate) querier: u32,
    pub(crate) k: usize,
}

/// The flat, thread-crossing result of executing one planned query —
/// everything the merge phase needs to update metrics and caches. The
/// kernel's [`QueryTrace`] travels whole: attribution, server accounting,
/// the expansion-cap flag and the per-stage timings all come from it.
pub(crate) struct QueryOutcome {
    pub(crate) trace: QueryTrace,
    pub(crate) remote_entries: u64,
    pub(crate) remote_records: u64,
    pub(crate) graded: bool,
    pub(crate) wrong: bool,
    pub(crate) uncertain_exact: bool,
    pub(crate) uncertain_inflation: f64,
    pub(crate) heap_state_idx: Option<usize>,
    pub(crate) einn_accesses: u64,
    pub(crate) inn_accesses: Option<u64>,
    pub(crate) cache_entry: Option<CacheEntry>,
}

impl Simulator {
    /// Phase 1 — plan: the only place the batch touches RNG streams.
    /// Draw order matches the sequential engine: querier from the
    /// simulator stream, then that host's own stream for `k`.
    pub(crate) fn plan_batch(&mut self, n: usize) -> Vec<QueryPlan> {
        use rand::Rng;
        let mut plans = Vec::with_capacity(n);
        for _ in 0..n {
            let querier = self.rng.gen_range(0..self.hosts.len());
            let k = match self.config.k_choice {
                KChoice::Fixed(k) => k,
                KChoice::Uniform(lo, hi) => self.hosts[querier].rng.gen_range(lo..=hi.max(lo)),
                KChoice::MeanLambda => {
                    let max_k = (2 * self.config.params.lambda_knn).saturating_sub(1).max(1);
                    self.hosts[querier].rng.gen_range(1..=max_k)
                }
            };
            plans.push(QueryPlan {
                querier: querier as u32,
                k,
            });
        }
        plans
    }

    /// Executes every planned query of a batch against the frozen
    /// snapshot, fanning out across worker threads. Each worker owns one
    /// [`WorkerScratch`] — and therefore one reused `QueryContext` — for
    /// its whole share of the batch.
    #[cfg(feature = "parallel")]
    pub(crate) fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<QueryOutcome> {
        let threads = self.config.threads.unwrap_or_else(senn_par::worker_count);
        senn_par::par_map_with_threads(plans, threads, WorkerScratch::new, |scratch, _, plan| {
            self.execute_query(plan, scratch)
        })
    }

    /// Sequential fallback when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    pub(crate) fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<QueryOutcome> {
        let mut scratch = WorkerScratch::new();
        plans
            .iter()
            .map(|plan| self.execute_query(plan, &mut scratch))
            .collect()
    }

    /// Executes one planned SENN query against the frozen batch snapshot:
    /// peer gathering ([`Simulator::gather_peers`]), the staged kernel
    /// (`SennEngine::query_with` over the worker's reused context), then
    /// the measurement-only grading and PAR shadow searches.
    fn execute_query<'a>(
        &'a self,
        plan: &QueryPlan,
        scratch: &mut WorkerScratch<'a>,
    ) -> QueryOutcome {
        let k = plan.k;
        let q = self.grid.positions()[plan.querier as usize];
        let own_count = self.gather_peers(plan, &mut scratch.comms);
        let peers = &scratch.comms.peers;

        let outcome = self
            .engine
            .query_with(q, k, peers, &self.server, &mut scratch.ctx);

        // P2P communication overhead: every non-empty peer entry crosses
        // the ad-hoc channel once ("it may increase the communication
        // overheads among mobile hosts" — quantified here). The querier's
        // own cache entry is local and free.
        let remote_entries = (peers.len() - own_count) as u64;
        let remote_records = peers[own_count..]
            .iter()
            .map(|e| e.len() as u64)
            .sum::<u64>();

        let matches_truth = |truth: &senn_core::ServerResponse| {
            truth.pois.len() == outcome.results.len()
                && truth
                    .pois
                    .iter()
                    .zip(&outcome.results)
                    .all(|((t, _), r)| t.poi_id == r.poi.poi_id)
        };
        let mut graded = false;
        let mut wrong = false;
        if self.config.poi_churn_per_hour > 0.0
            && matches!(
                outcome.resolution(),
                Resolution::SinglePeer | Resolution::MultiPeer
            )
        {
            // Under churn, stale caches can certify objects that are no
            // longer the true NNs. Grade against current ground truth.
            let truth = self.server.knn(q, k, SearchBounds::NONE);
            graded = true;
            wrong = !matches_truth(&truth);
        }

        let mut uncertain_exact = false;
        let mut uncertain_inflation = 0.0;
        let mut heap_state_idx = None;
        let mut einn_accesses = 0;
        let mut inn_accesses = None;
        match outcome.resolution() {
            Resolution::SinglePeer | Resolution::MultiPeer => {}
            Resolution::AcceptedUncertain => {
                // Grade the accepted answer against ground truth (a
                // measurement-only server call, not counted in PAR).
                let truth = self.server.knn(q, k, SearchBounds::NONE);
                uncertain_exact = matches_truth(&truth);
                let true_sum: f64 = truth.pois.iter().map(|(_, d)| d).sum();
                let got_sum: f64 = outcome.results.iter().map(|r| r.dist).sum();
                if true_sum > 0.0 {
                    uncertain_inflation = (got_sum / true_sum - 1.0).max(0.0);
                }
            }
            Resolution::Server | Resolution::Unresolved => {
                heap_state_idx = outcome.heap_state.map(|state| {
                    use senn_core::HeapState;
                    match state {
                        HeapState::FullMixed => 0,
                        HeapState::FullUncertain => 1,
                        HeapState::PartialMixed => 2,
                        HeapState::PartialCertain => 3,
                        HeapState::PartialUncertain => 4,
                        HeapState::Empty => 5,
                    }
                });
                // PAR measurement (Section 4.4): "the server module executes
                // both the original INN algorithm and our extended INN
                // algorithm (EINN) to compare the performance". Both run on
                // the pure k-query; the client's C_Size over-fetch (cache
                // refill) is protocol, not part of the comparison.
                let strictly_below = match outcome.bounds.lower {
                    Some(lb) => outcome
                        .results
                        .iter()
                        .filter(|e| e.certain && e.dist < lb - senn_geom::EPS)
                        .count(),
                    None => 0,
                };
                let need = k.saturating_sub(strictly_below).max(1);
                einn_accesses = self.server.knn(q, need, outcome.bounds).node_accesses;
                if self.config.compare_inn {
                    inn_accesses = Some(self.server.knn(q, k, SearchBounds::NONE).node_accesses);
                }
            }
        }

        // Cache policy 1: store the certain NNs of the most recent query.
        let cacheable: Vec<CachedNn> = outcome.cacheable().iter().map(|e| e.poi).collect();
        let cache_entry =
            (!cacheable.is_empty()).then(|| CacheEntry::new(q, cacheable).at_time(self.time));

        QueryOutcome {
            trace: outcome.trace,
            remote_entries,
            remote_records,
            graded,
            wrong,
            uncertain_exact,
            uncertain_inflation,
            heap_state_idx,
            einn_accesses,
            inn_accesses,
            cache_entry,
        }
    }
}
