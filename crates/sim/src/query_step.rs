//! The query step of the batch engine: planning (every random draw, in
//! batch order), executing each plan as a pure function of the frozen
//! world snapshot via the staged SENN kernel, the **interval-batched**
//! residual round-trip through the configured [`SpatialService`], and the
//! measurement-only server calls (grading, EINN/INN shadow) that ride
//! along.
//!
//! One query batch flows through three passes:
//!
//! 1. **execute** (parallel, `&self` only) — peer gathering plus the peer
//!    stages of the SENN kernel; queries the peers cannot finish come back
//!    [`Resolution::Unresolved`].
//! 2. **submit** (main thread) — all unresolved queries of the interval
//!    become one [`ServerRequest`] batch, submitted through the service
//!    seam via [`submit_budgeted`] with an unlimited bucket (retries,
//!    backoff and unpruned degradation included), then completed with
//!    `SennEngine::complete_residual`. Batch composition is fixed by plan
//!    order, so seeded fault schedules are reproducible and independent of
//!    worker-thread count.
//! 3. **measure** (parallel, `&self` only) — grading against ground truth
//!    and the PAR shadow searches, always against the concrete truth
//!    [`RTreeServer`](senn_core::RTreeServer) so metrics are invariant to
//!    the configured backend (shard count, fault wrapper).
//!
//! Anything mutable is returned in the [`QueryOutcome`] and folded in by
//! the merge phase ([`crate::cache_step`]) in query-index order, which is
//! what lets the batch fan out across threads while producing bit-identical
//! [`Metrics`](crate::metrics::Metrics).

use senn_cache::{CacheEntry, CachedNn};
use senn_core::service::ServerRequest;
use senn_core::shared_expansion::SharedStats;
use senn_core::transport::{submit_budgeted, RetryBudget};
use senn_core::{
    DistanceModel, EuclideanBound, LowerBoundOracle, QueryTrace, Resolution, SearchBounds,
    SennOutcome, SnnnExpansion,
};
use senn_geom::Point;
use senn_network::{
    AltBound, AltDistance, ChBound, ChDistance, NetworkDistance, SharedEdgeCost,
    SharedNetworkModel, TimeDependentCost,
};

use crate::comms::WorkerScratch;
use crate::simulator::{KChoice, NetworkModelKind, Simulator};

/// One planned query of a batch. Every random draw happens up front in
/// batch order, so executing a plan is a pure function of the frozen world
/// snapshot and can run on any thread.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QueryPlan {
    pub(crate) querier: u32,
    pub(crate) k: usize,
}

/// One query mid-batch: the kernel outcome so far (peers-only after the
/// execute pass; final after the submit pass) plus the P2P overhead counts
/// that were measured while the peer snapshot was still borrowed.
pub(crate) struct PendingQuery {
    pub(crate) outcome: SennOutcome,
    pub(crate) remote_entries: u64,
    pub(crate) remote_records: u64,
}

impl PendingQuery {
    /// True while the query still needs the service round-trip.
    pub(crate) fn needs_server(&self) -> bool {
        self.outcome.resolution() == Resolution::Unresolved
    }
}

/// The measurement-only observations of one finished query — everything
/// that needs world ground truth (grading, heap states, the EINN/INN
/// shadow) or the frozen snapshot time (the cache entry).
pub(crate) struct Measured {
    pub(crate) graded: bool,
    pub(crate) wrong: bool,
    pub(crate) uncertain_exact: bool,
    pub(crate) uncertain_inflation: f64,
    pub(crate) heap_state_idx: Option<usize>,
    pub(crate) einn_accesses: u64,
    pub(crate) inn_accesses: Option<u64>,
    pub(crate) cache_entry: Option<CacheEntry>,
}

/// The flat, thread-crossing result of one planned query — everything the
/// merge phase needs to update metrics and caches. The kernel's
/// [`QueryTrace`] travels whole: attribution, server accounting (retry and
/// degradation dispositions included), the expansion-cap flag and the
/// per-stage timings all come from it.
pub(crate) struct QueryOutcome {
    pub(crate) trace: QueryTrace,
    pub(crate) remote_entries: u64,
    pub(crate) remote_records: u64,
    pub(crate) graded: bool,
    pub(crate) wrong: bool,
    pub(crate) uncertain_exact: bool,
    pub(crate) uncertain_inflation: f64,
    pub(crate) heap_state_idx: Option<usize>,
    pub(crate) einn_accesses: u64,
    pub(crate) inn_accesses: Option<u64>,
    pub(crate) cache_entry: Option<CacheEntry>,
}

impl QueryOutcome {
    /// Joins the pipeline halves for the merge fold.
    pub(crate) fn assemble(pending: PendingQuery, measured: Measured) -> Self {
        QueryOutcome {
            trace: pending.outcome.trace,
            remote_entries: pending.remote_entries,
            remote_records: pending.remote_records,
            graded: measured.graded,
            wrong: measured.wrong,
            uncertain_exact: measured.uncertain_exact,
            uncertain_inflation: measured.uncertain_inflation,
            heap_state_idx: measured.heap_state_idx,
            einn_accesses: measured.einn_accesses,
            inn_accesses: measured.inn_accesses,
            cache_entry: measured.cache_entry,
        }
    }
}

/// The configured network metric, instantiated once per batch over the
/// world's road network (models own their search scratch, so reusing one
/// across the batch keeps the expand pass allocation-free after warm-up).
enum ActiveModel<'a> {
    AStar(NetworkDistance<'a>),
    Alt(AltDistance<'a>),
    Time(TimeDependentCost<'a>),
    Ch(ChDistance<'a>),
    /// Batch-shared frontiers (`SimConfig::shared_expansion`): the same
    /// distances as the per-kind models, answered from one resumable
    /// Dijkstra sweep per snap-node group.
    Shared(SharedNetworkModel<'a>),
}

impl ActiveModel<'_> {
    /// Re-anchors the model at a new query point; false when the locator
    /// finds no node (the anchor is left unchanged).
    fn rebase(&mut self, query: Point) -> bool {
        match self {
            ActiveModel::AStar(m) => m.rebase(query),
            ActiveModel::Alt(m) => m.rebase(query),
            ActiveModel::Time(m) => m.rebase(query),
            ActiveModel::Ch(m) => m.rebase(query),
            ActiveModel::Shared(m) => m.rebase(query),
        }
    }

    /// Settlements the shared frontiers have avoided so far (monotone);
    /// `0` for the per-query models. Sampled around `begin`/`offer` calls
    /// to attribute the saving to the query that triggered it.
    fn shared_saved(&self) -> u64 {
        match self {
            ActiveModel::Shared(m) => m.stats().saved(),
            _ => 0,
        }
    }

    /// The shared pool's cumulative accounting; `None` for the per-query
    /// models.
    fn shared_stats(&self) -> Option<SharedStats> {
        match self {
            ActiveModel::Shared(m) => Some(m.stats()),
            _ => None,
        }
    }
}

impl DistanceModel for ActiveModel<'_> {
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        match self {
            ActiveModel::AStar(m) => m.distance(query, p),
            ActiveModel::Alt(m) => m.distance(query, p),
            ActiveModel::Time(m) => m.distance(query, p),
            ActiveModel::Ch(m) => m.distance(query, p),
            ActiveModel::Shared(m) => m.distance(query, p),
        }
    }
}

/// The lower-bound oracle paired with the configured model: the exact
/// CH bound when the hierarchy exists, landmark bounds when the ALT
/// index exists, the free-flow Euclidean bound otherwise (admissible for
/// every model by the `ED <= ND` contract).
enum ActiveOracle<'a> {
    Euclid(EuclideanBound),
    Alt(AltBound<'a>),
    // Boxed: the CH bound owns its query scratch, which dwarfs the
    // other variants, and one oracle lives per batch anyway.
    Ch(Box<ChBound<'a>>),
}

impl ActiveOracle<'_> {
    /// Re-anchors the oracle at a new query point, mirroring the model's
    /// [`ActiveModel::rebase`] (the Euclidean bound needs no anchor).
    fn rebase(&mut self, query: Point) -> bool {
        match self {
            ActiveOracle::Euclid(_) => true,
            ActiveOracle::Alt(o) => o.rebase(query),
            ActiveOracle::Ch(o) => o.rebase(query),
        }
    }
}

impl LowerBoundOracle for ActiveOracle<'_> {
    fn lower_bound(&mut self, query: Point, p: Point) -> f64 {
        match self {
            ActiveOracle::Euclid(o) => o.lower_bound(query, p),
            ActiveOracle::Alt(o) => o.lower_bound(query, p),
            ActiveOracle::Ch(o) => o.lower_bound(query, p),
        }
    }
}

/// One query's in-flight expansion during the lockstep-batched expand
/// pass: its index into the batch plus the shared state machine.
struct ActiveExpansion {
    idx: usize,
    exp: SnnnExpansion,
}

/// What one expand pass cost: the round/submission counts the interval
/// batching divides, plus the shared-frontier settle accounting when
/// `SimConfig::shared_expansion` is on (all zero otherwise).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ExpandStats {
    pub(crate) rounds: u64,
    pub(crate) submissions: u64,
    /// Shared frontiers created (distinct snap-node groups).
    pub(crate) shared_groups: u64,
    /// Settlements the per-query searches would have performed.
    pub(crate) shared_solo_settles: u64,
    /// Settlements the shared frontiers actually performed.
    pub(crate) shared_settles: u64,
}

impl ExpandStats {
    /// Folds the shared pool's end-of-batch accounting in.
    fn absorb_shared(&mut self, model: &ActiveModel<'_>) {
        if let Some(s) = model.shared_stats() {
            self.shared_groups += s.groups;
            self.shared_solo_settles += s.solo_settles;
            self.shared_settles += s.settles;
        }
    }
}

impl Simulator {
    /// Phase 1 — plan: the only place the batch touches RNG streams.
    /// Draw order matches the sequential engine: querier from the
    /// simulator stream, then that host's own stream for `k`.
    pub(crate) fn plan_batch(&mut self, n: usize) -> Vec<QueryPlan> {
        use rand::Rng;
        let mut plans = Vec::with_capacity(n);
        for _ in 0..n {
            let querier = self.rng.gen_range(0..self.store.len());
            let k = match self.config.k_choice {
                KChoice::Fixed(k) => k,
                KChoice::Uniform(lo, hi) => self
                    .store
                    .rng_mut(querier as u32)
                    .gen_range(lo..=hi.max(lo)),
                KChoice::MeanLambda => {
                    let max_k = (2 * self.config.params.lambda_knn).saturating_sub(1).max(1);
                    self.store.rng_mut(querier as u32).gen_range(1..=max_k)
                }
            };
            plans.push(QueryPlan {
                querier: querier as u32,
                k,
            });
        }
        plans
    }

    /// Executes the peer stages of every planned query against the frozen
    /// snapshot, fanning out across worker threads. Each worker owns one
    /// [`WorkerScratch`] — and therefore one reused `QueryContext` — for
    /// its whole share of the batch.
    #[cfg(feature = "parallel")]
    pub(crate) fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<PendingQuery> {
        let threads = self.config.threads.unwrap_or_else(senn_par::worker_count);
        senn_par::par_map_with_threads(plans, threads, WorkerScratch::new, |scratch, _, plan| {
            self.execute_query(plan, scratch)
        })
    }

    /// Sequential fallback when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    pub(crate) fn execute_batch(&self, plans: &[QueryPlan]) -> Vec<PendingQuery> {
        let mut scratch = WorkerScratch::new();
        plans
            .iter()
            .map(|plan| self.execute_query(plan, &mut scratch))
            .collect()
    }

    /// Executes one planned SENN query up to the server seam: peer
    /// gathering ([`Simulator::gather_peers`]) and the peer stages of the
    /// staged kernel (`SennEngine::query_peers_only_with` over the
    /// worker's reused context).
    fn execute_query<'a>(
        &'a self,
        plan: &QueryPlan,
        scratch: &mut WorkerScratch<'a>,
    ) -> PendingQuery {
        let q = self.store.position(plan.querier);
        let own_count = self.gather_peers(plan, &mut scratch.comms);
        let peers = &scratch.comms.peers;

        let outcome = self
            .engine
            .query_peers_only_with(q, plan.k, peers, &mut scratch.ctx);

        // P2P communication overhead: every non-empty peer entry crosses
        // the ad-hoc channel once ("it may increase the communication
        // overheads among mobile hosts" — quantified here). The querier's
        // own cache entry is local and free.
        let remote_entries = (peers.len() - own_count) as u64;
        let remote_records = peers[own_count..]
            .iter()
            .map(|e| e.len() as u64)
            .sum::<u64>();

        PendingQuery {
            outcome,
            remote_entries,
            remote_records,
        }
    }

    /// Phase 3b — submit: collects the interval's unresolved queries into
    /// **one** [`ServerRequest`] batch (request `id` = query index),
    /// submits it through the configured service with the configured retry
    /// policy, attributes each request's disposition to its query's trace,
    /// and completes every answered query via
    /// `SennEngine::complete_residual`. Queries whose every attempt failed
    /// stay [`Resolution::Unresolved`] — the host keeps whatever the peers
    /// verified locally.
    pub(crate) fn submit_residual_batch(
        &self,
        plans: &[QueryPlan],
        pendings: Vec<PendingQuery>,
    ) -> Vec<PendingQuery> {
        let open: Vec<usize> = pendings
            .iter()
            .enumerate()
            .filter(|(_, p)| p.needs_server())
            .map(|(i, _)| i)
            .collect();
        if open.is_empty() {
            return pendings;
        }
        let requests: Vec<ServerRequest> = open
            .iter()
            .map(|&i| {
                let q = self.store.position(plans[i].querier);
                self.engine
                    .residual_request(i as u64, q, plans[i].k, &pendings[i].outcome)
            })
            .collect();
        let mut results: Vec<Option<_>> = (0..pendings.len()).map(|_| None).collect();
        for (&i, result) in open.iter().zip(submit_budgeted(
            self.service.residual_service(),
            &requests,
            &self.config.retry,
            &mut RetryBudget::unlimited(),
        )) {
            results[i] = Some(result);
        }
        pendings
            .into_iter()
            .zip(results)
            .enumerate()
            .map(|(i, (mut pending, result))| {
                if let Some(result) = result {
                    pending.outcome.trace.record_service_outcome(&result);
                    if !result.failed {
                        // `complete_residual` also merges degraded
                        // (unpruned) answers correctly: the certain prefix
                        // is deduplicated by POI id.
                        let peers_only = pending.outcome;
                        pending.outcome =
                            self.engine
                                .complete_residual(plans[i].k, peers_only, result.response);
                    }
                }
                pending
            })
            .collect()
    }

    /// Phase 3b½ — expand (network mode only): runs the SNNN incremental
    /// Euclidean expansion (Algorithm 2) for every query the batch already
    /// resolved, under the configured [`NetworkModelKind`]. Rounds run on
    /// the **main thread in query-index order**; every residual goes
    /// through the configured service, and the keyed `FaultyService`
    /// draws make each request's fate a pure function of its id and
    /// attempt ordinal — independent of worker-thread count, shard count,
    /// and how the rounds are coalesced into batches.
    ///
    /// Two submission layouts share the exact expansion logic:
    ///
    /// * **interval-batched** (default, `SimConfig::expansion_batching`):
    ///   all still-active queries advance in lockstep; each round's
    ///   unresolved residuals are coalesced into **one** `ServerRequest`
    ///   batch per interval-round (plan order preserved).
    /// * **per-query**: each query runs all its rounds to completion with
    ///   one submission per round — the PR-4 access pattern, kept as the
    ///   equivalence baseline (`tests/batched_expansion.rs` proves the
    ///   two layouts produce bit-identical Metrics).
    ///
    /// Candidate verification is bound-driven in both layouts: an
    /// [`ActiveOracle`] (ALT landmark bounds when the index exists, the
    /// free-flow Euclidean bound otherwise) is consulted before every
    /// exact model evaluation, and evaluations the bound already rules
    /// out are skipped — counted by [`QueryTrace::lb_evals`] /
    /// [`QueryTrace::model_evals_saved`].
    ///
    /// Expansion refines *which* POIs the host would rank first under the
    /// road metric; it never rewrites the initial round's `results`,
    /// `bounds` or `heap_state` (the paper's accounting unit — grading,
    /// the EINN/INN shadow and the cache store all read the initial
    /// Euclidean round). What it adds to the trace: the expansion rounds'
    /// resolutions/stage timings, their service dispositions, the pruning
    /// counters, and the [`QueryTrace::cap_hit`] flag when the round
    /// budget (or a failed round residual) ended the expansion
    /// unconfirmed.
    ///
    /// Returns `(pendings, stats)` where [`ExpandStats::submissions`]
    /// counts the expand pass's service submissions — the number the
    /// interval batching divides — and the `shared_*` fields carry the
    /// frontier pool's settle accounting under shared expansion.
    pub(crate) fn expand_network_batch(
        &self,
        plans: &[QueryPlan],
        pendings: Vec<PendingQuery>,
    ) -> (Vec<PendingQuery>, ExpandStats) {
        let none = ExpandStats::default();
        let Some(kind) = self.config.distance_model else {
            return (pendings, none);
        };
        let net = self
            .network
            .as_ref()
            .expect("validated at build time: network mode keeps the road network");
        let model = if self.config.shared_expansion {
            // One batch-scoped frontier pool answers every kind's metric:
            // plain lengths reproduce the A*/ALT/CH distances bit for bit
            // (all exact searches over the same metric), the weighted
            // cost reproduces the time-dependent model's. The paired
            // oracle below still follows `kind`, so the candidate stream
            // and the pruning counters stay identical to the per-query
            // path.
            let cost = match kind {
                NetworkModelKind::TimeDependent { start_hour } => {
                    SharedEdgeCost::TimeOfDay(start_hour + self.time / 3600.0)
                }
                _ => SharedEdgeCost::Length,
            };
            match SharedNetworkModel::new(net, &self.locator, cost, Point::ORIGIN) {
                Some(m) => ActiveModel::Shared(m),
                None => return (pendings, none), // empty graph: nothing to rank with
            }
        } else {
            match kind {
                NetworkModelKind::AStar => {
                    match NetworkDistance::new(net, &self.locator, Point::ORIGIN) {
                        Some(m) => ActiveModel::AStar(m),
                        None => return (pendings, none), // empty graph: nothing to rank with
                    }
                }
                NetworkModelKind::Alt { .. } => {
                    let index = self
                        .alt_index
                        .as_ref()
                        .expect("ALT index is built with the world");
                    match AltDistance::new(net, &self.locator, index, Point::ORIGIN) {
                        Some(m) => ActiveModel::Alt(m),
                        None => return (pendings, none),
                    }
                }
                NetworkModelKind::TimeDependent { start_hour } => {
                    let hour = start_hour + self.time / 3600.0;
                    match TimeDependentCost::new(net, &self.locator, Point::ORIGIN, hour) {
                        Some(m) => ActiveModel::Time(m),
                        None => return (pendings, none),
                    }
                }
                NetworkModelKind::Ch => {
                    let index = self
                        .ch_index
                        .as_ref()
                        .expect("CH index is built with the world");
                    match ChDistance::new(net, &self.locator, index, Point::ORIGIN) {
                        Some(m) => ActiveModel::Ch(m),
                        None => return (pendings, none),
                    }
                }
            }
        };
        let oracle = match (kind, self.alt_index.as_ref(), self.ch_index.as_ref()) {
            (NetworkModelKind::Alt { .. }, Some(index), _) => ActiveOracle::Alt(
                AltBound::new(net, &self.locator, index, Point::ORIGIN)
                    .expect("model construction proved the locator non-empty"),
            ),
            (NetworkModelKind::Ch, _, Some(index)) => ActiveOracle::Ch(Box::new(
                ChBound::new(net, &self.locator, index, Point::ORIGIN)
                    .expect("model construction proved the locator non-empty"),
            )),
            _ => ActiveOracle::Euclid(EuclideanBound),
        };
        if self.config.expansion_batching {
            self.expand_lockstep(plans, pendings, model, oracle)
        } else {
            self.expand_per_query(plans, pendings, model, oracle)
        }
    }

    /// True when the query's resolved Euclidean round qualifies for SNNN
    /// expansion: an attributed resolution with an all-certain result set.
    fn expansion_eligible(pending: &PendingQuery) -> bool {
        matches!(
            pending.outcome.resolution(),
            Resolution::SinglePeer | Resolution::MultiPeer | Resolution::Server
        ) && pending.outcome.results.iter().all(|e| e.certain)
    }

    /// Finalizes one finished expansion into its query's trace.
    fn finish_expansion(pending: &mut PendingQuery, exp: &SnnnExpansion) {
        pending.outcome.trace.cap_hit = exp.cap_hit();
        pending.outcome.trace.lb_evals = exp.lb_evals();
        pending.outcome.trace.model_evals_saved = exp.model_evals_saved();
    }

    /// The per-query submission layout: each eligible query runs all its
    /// expansion rounds before the next query starts, one service
    /// submission per round that needs the server.
    fn expand_per_query(
        &self,
        plans: &[QueryPlan],
        mut pendings: Vec<PendingQuery>,
        mut model: ActiveModel<'_>,
        mut oracle: ActiveOracle<'_>,
    ) -> (Vec<PendingQuery>, ExpandStats) {
        let mut scratch = WorkerScratch::new();
        let mut stats = ExpandStats::default();
        for (i, (plan, pending)) in plans.iter().zip(pendings.iter_mut()).enumerate() {
            if !Self::expansion_eligible(pending) {
                continue;
            }
            let q = self.store.position(plan.querier);
            if !model.rebase(q) || !oracle.rebase(q) {
                continue;
            }
            // Everything this query asks the model — the initial ranking
            // in `begin` and every candidate offer below — lands between
            // these two samples, so the delta is the query's share of the
            // pool's saved settlements.
            let saved_before = model.shared_saved();
            let mut exp = SnnnExpansion::begin(q, plan.k, &pending.outcome.results, &mut model);
            while exp.needs_round() && exp.rounds() < self.config.snnn_max_expansion {
                stats.rounds += 1;
                let kk = exp.next_k();
                self.gather_peers(plan, &mut scratch.comms);
                let round = self.engine.query_peers_only_with(
                    q,
                    kk,
                    &scratch.comms.peers,
                    &mut scratch.ctx,
                );
                let round = if round.resolution() == Resolution::Unresolved {
                    let req = self.engine.residual_request(i as u64, q, kk, &round);
                    stats.submissions += 1;
                    let result = submit_budgeted(
                        self.service.residual_service(),
                        std::slice::from_ref(&req),
                        &self.config.retry,
                        &mut RetryBudget::unlimited(),
                    )
                    .pop()
                    .expect("one request, one outcome");
                    pending.outcome.trace.record_service_outcome(&result);
                    if result.failed {
                        // The round could not be served: keep the best
                        // ranking seen, flagged unconfirmed below.
                        pending.outcome.trace.absorb(&round.trace);
                        exp.abort();
                        break;
                    }
                    self.engine.complete_residual(kk, round, result.response)
                } else {
                    round
                };
                pending.outcome.trace.absorb(&round.trace);
                if round.results.iter().any(|e| !e.certain) {
                    exp.abort();
                    break;
                }
                exp.offer_pruned(&round.results, &mut model, &mut oracle);
            }
            pending.outcome.trace.shared_settles_saved += model.shared_saved() - saved_before;
            Self::finish_expansion(pending, &exp);
        }
        stats.absorb_shared(&model);
        (pendings, stats)
    }

    /// The interval-batched layout: every eligible query advances one
    /// expansion round per iteration, and all of the iteration's
    /// unresolved residuals travel in **one** `ServerRequest` batch (plan
    /// order preserved; request `id` = query index, exactly as in the
    /// per-query layout, so the keyed fault schedule is identical).
    fn expand_lockstep(
        &self,
        plans: &[QueryPlan],
        mut pendings: Vec<PendingQuery>,
        mut model: ActiveModel<'_>,
        mut oracle: ActiveOracle<'_>,
    ) -> (Vec<PendingQuery>, ExpandStats) {
        let mut scratch = WorkerScratch::new();
        let mut stats = ExpandStats::default();

        // Start every eligible query's expansion (plan order). Queries
        // whose expansion is already settled at begin time — the world
        // holds fewer than `k` POIs, or a zero round budget — finalize
        // immediately, exactly like the per-query layout. The shared-
        // saved deltas sampled around each `begin`/`offer` attribute the
        // pool's savings to the query that triggered them; the *totals*
        // are layout-invariant (frontiers settle in global distance
        // order no matter which query advances them), so Metrics match
        // the per-query layout bit for bit.
        let mut active: Vec<ActiveExpansion> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            if !Self::expansion_eligible(&pendings[i]) {
                continue;
            }
            let q = self.store.position(plan.querier);
            if !model.rebase(q) || !oracle.rebase(q) {
                continue;
            }
            let saved_before = model.shared_saved();
            let exp = SnnnExpansion::begin(q, plan.k, &pendings[i].outcome.results, &mut model);
            pendings[i].outcome.trace.shared_settles_saved += model.shared_saved() - saved_before;
            if exp.needs_round() && self.config.snnn_max_expansion > 0 {
                active.push(ActiveExpansion { idx: i, exp });
            } else {
                Self::finish_expansion(&mut pendings[i], &exp);
            }
        }

        while !active.is_empty() {
            // Probe pass: run every still-active query's peer round and
            // stage the unresolved residuals for one coalesced batch.
            let mut round_outcomes: Vec<Option<SennOutcome>> = Vec::with_capacity(active.len());
            let mut requests: Vec<ServerRequest> = Vec::new();
            let mut request_slots: Vec<usize> = Vec::new();
            let mut failed: Vec<bool> = vec![false; active.len()];
            for a in active.iter() {
                let plan = &plans[a.idx];
                let q = self.store.position(plan.querier);
                stats.rounds += 1;
                let kk = a.exp.next_k();
                self.gather_peers(plan, &mut scratch.comms);
                let round = self.engine.query_peers_only_with(
                    q,
                    kk,
                    &scratch.comms.peers,
                    &mut scratch.ctx,
                );
                if round.resolution() == Resolution::Unresolved {
                    requests.push(self.engine.residual_request(a.idx as u64, q, kk, &round));
                    request_slots.push(round_outcomes.len());
                }
                round_outcomes.push(Some(round));
            }

            // Submit pass: one service batch for the whole round.
            if !requests.is_empty() {
                stats.submissions += 1;
                let results = submit_budgeted(
                    self.service.residual_service(),
                    &requests,
                    &self.config.retry,
                    &mut RetryBudget::unlimited(),
                );
                for (&slot, result) in request_slots.iter().zip(results) {
                    let a = &active[slot];
                    pendings[a.idx]
                        .outcome
                        .trace
                        .record_service_outcome(&result);
                    if result.failed {
                        failed[slot] = true;
                    } else {
                        let kk = a.exp.next_k();
                        let peers_only = round_outcomes[slot].take().expect("staged above");
                        round_outcomes[slot] = Some(self.engine.complete_residual(
                            kk,
                            peers_only,
                            result.response,
                        ));
                    }
                }
            }

            // Offer pass (plan order): fold each round into its query's
            // trace and expansion state, then retire finished expansions.
            let mut still_active = Vec::with_capacity(active.len());
            for (slot, mut a) in active.into_iter().enumerate() {
                let pending = &mut pendings[a.idx];
                let round = round_outcomes[slot].take().expect("staged above");
                pending.outcome.trace.absorb(&round.trace);
                if failed[slot] || round.results.iter().any(|e| !e.certain) {
                    // The round could not be served (or came back
                    // uncertain): keep the best ranking seen, unconfirmed.
                    a.exp.abort();
                    Self::finish_expansion(pending, &a.exp);
                    continue;
                }
                let q = self.store.position(plans[a.idx].querier);
                // Anchors moved while other queries ran their rounds;
                // re-anchor for this query (it succeeded at begin time).
                model.rebase(q);
                oracle.rebase(q);
                let saved_before = model.shared_saved();
                a.exp.offer_pruned(&round.results, &mut model, &mut oracle);
                pending.outcome.trace.shared_settles_saved += model.shared_saved() - saved_before;
                if a.exp.needs_round() && a.exp.rounds() < self.config.snnn_max_expansion {
                    still_active.push(a);
                } else {
                    Self::finish_expansion(pending, &a.exp);
                }
            }
            active = still_active;
        }
        stats.absorb_shared(&model);
        (pendings, stats)
    }

    /// Phase 3c — measure: grading and PAR shadow searches for every
    /// finalized query, fanned out across worker threads (the shadow
    /// R\*-tree searches dominate this pass). Pure reads of `&self`.
    #[cfg(feature = "parallel")]
    pub(crate) fn measure_batch(
        &self,
        plans: &[QueryPlan],
        pendings: &[PendingQuery],
    ) -> Vec<Measured> {
        let threads = self.config.threads.unwrap_or_else(senn_par::worker_count);
        senn_par::par_map_with_threads(
            pendings,
            threads,
            || (),
            |(), i, pending| self.measure_query(&plans[i], pending),
        )
    }

    /// Sequential fallback when the `parallel` feature is disabled.
    #[cfg(not(feature = "parallel"))]
    pub(crate) fn measure_batch(
        &self,
        plans: &[QueryPlan],
        pendings: &[PendingQuery],
    ) -> Vec<Measured> {
        pendings
            .iter()
            .enumerate()
            .map(|(i, pending)| self.measure_query(&plans[i], pending))
            .collect()
    }

    /// The measurement-only observations of one finished query. Every
    /// server call here runs against the concrete truth
    /// [`RTreeServer`](senn_core::RTreeServer) (never the configured
    /// service), so the recorded metrics are invariant to shard count and
    /// fault injection.
    fn measure_query(&self, plan: &QueryPlan, pending: &PendingQuery) -> Measured {
        let k = plan.k;
        let q = self.store.position(plan.querier);
        let outcome = &pending.outcome;

        let matches_truth = |truth: &senn_core::ServerResponse| {
            truth.pois.len() == outcome.results.len()
                && truth
                    .pois
                    .iter()
                    .zip(&outcome.results)
                    .all(|((t, _), r)| t.poi_id == r.poi.poi_id)
        };
        let mut graded = false;
        let mut wrong = false;
        if self.config.poi_churn_per_hour > 0.0
            && matches!(
                outcome.resolution(),
                Resolution::SinglePeer | Resolution::MultiPeer
            )
        {
            // Under churn, stale caches can certify objects that are no
            // longer the true NNs. Grade against current ground truth.
            let truth = self.server.knn_one(q, k, SearchBounds::NONE);
            graded = true;
            wrong = !matches_truth(&truth);
        }

        let mut uncertain_exact = false;
        let mut uncertain_inflation = 0.0;
        let mut heap_state_idx = None;
        let mut einn_accesses = 0;
        let mut inn_accesses = None;
        match outcome.resolution() {
            Resolution::SinglePeer | Resolution::MultiPeer => {}
            Resolution::AcceptedUncertain => {
                // Grade the accepted answer against ground truth (a
                // measurement-only server call, not counted in PAR).
                let truth = self.server.knn_one(q, k, SearchBounds::NONE);
                uncertain_exact = matches_truth(&truth);
                let true_sum: f64 = truth.pois.iter().map(|(_, d)| d).sum();
                let got_sum: f64 = outcome.results.iter().map(|r| r.dist).sum();
                if true_sum > 0.0 {
                    uncertain_inflation = (got_sum / true_sum - 1.0).max(0.0);
                }
            }
            Resolution::Server | Resolution::Unresolved => {
                heap_state_idx = outcome.heap_state.map(|state| {
                    use senn_core::HeapState;
                    match state {
                        HeapState::FullMixed => 0,
                        HeapState::FullUncertain => 1,
                        HeapState::PartialMixed => 2,
                        HeapState::PartialCertain => 3,
                        HeapState::PartialUncertain => 4,
                        HeapState::Empty => 5,
                    }
                });
                // PAR measurement (Section 4.4): "the server module executes
                // both the original INN algorithm and our extended INN
                // algorithm (EINN) to compare the performance". Both run on
                // the pure k-query; the client's C_Size over-fetch (cache
                // refill) is protocol, not part of the comparison.
                let strictly_below = match outcome.bounds.lower {
                    Some(lb) => outcome
                        .results
                        .iter()
                        .filter(|e| e.certain && e.dist < lb - senn_geom::EPS)
                        .count(),
                    None => 0,
                };
                let need = k.saturating_sub(strictly_below).max(1);
                einn_accesses = self.server.knn_one(q, need, outcome.bounds).node_accesses;
                if self.config.compare_inn {
                    inn_accesses =
                        Some(self.server.knn_one(q, k, SearchBounds::NONE).node_accesses);
                }
            }
        }

        // Cache policy 1: store the certain NNs of the most recent query.
        let cacheable: Vec<CachedNn> = outcome.cacheable().iter().map(|e| e.poi).collect();
        let cache_entry =
            (!cacheable.is_empty()).then(|| CacheEntry::new(q, cacheable).at_time(self.time));

        Measured {
            graded,
            wrong,
            uncertain_exact,
            uncertain_inflation,
            heap_state_idx,
            einn_accesses,
            inn_accesses,
            cache_entry,
        }
    }
}
