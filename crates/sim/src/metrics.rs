//! Simulation metrics: SQRR (spatial query request rate) and PAR (page
//! access rate).
//!
//! * **SQRR** — "how many percent of the total client spatial queries are
//!   required to be processed by the spatial database server".
//! * **PAR** — "server side memory (primary and secondary) access rate for
//!   a sequence of spatial queries", measured as R\*-tree node accesses.
//!   For every server-bound query the simulator runs both the original INN
//!   algorithm and the bounds-extended EINN (exactly like the paper's
//!   server module) and records both counts.

use std::collections::BTreeMap;

use senn_core::{QueryTrace, Resolution};

/// Latency cost model for the paper's "improving access latency" claim.
///
/// Per query: one ad-hoc round-trip per peer cache entry received (peer
/// messages overlap poorly on a shared channel, so they are summed), plus
/// — for server-bound queries — a cellular round-trip and a per-page
/// service cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Ad-hoc (802.11) round-trip per peer cache entry, ms.
    pub peer_rtt_ms: f64,
    /// Cellular round-trip to the database server, ms.
    pub server_rtt_ms: f64,
    /// Server-side cost per R*-tree page access, ms.
    pub per_page_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 2005-era numbers: ~5 ms 802.11 exchange, ~250 ms cellular RTT
        // (GPRS/1xRTT class), ~8 ms per page (disk-bound server).
        LatencyModel {
            peer_rtt_ms: 5.0,
            server_rtt_ms: 250.0,
            per_page_ms: 8.0,
        }
    }
}

/// Per-`k` page-access statistics (Figure 17).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KStats {
    /// Server-bound queries with this `k`.
    pub queries: u64,
    /// Node accesses of the extended search (EINN).
    pub einn_accesses: u64,
    /// Node accesses of the baseline search (INN).
    pub inn_accesses: u64,
}

/// Aggregated metrics of one simulation run (collected after warm-up).
///
/// `PartialEq` compares every counter including the `f64` sums exactly —
/// the parallel batch engine is required to reproduce the sequential
/// metrics bit-for-bit, and the determinism tests lean on this.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Total spatial queries issued.
    pub queries: u64,
    /// Queries fully answered by single-peer verification.
    pub single_peer: u64,
    /// Queries answered only via the multi-peer certain region.
    pub multi_peer: u64,
    /// Queries accepted with uncertain answers (when enabled).
    pub accepted_uncertain: u64,
    /// Queries forwarded to the server.
    pub server: u64,
    /// Node accesses of all EINN server searches.
    pub einn_accesses: u64,
    /// Node accesses of the shadow INN searches (same queries, no bounds).
    pub inn_accesses: u64,
    /// Per-k breakdown of the two access counts.
    pub per_k: BTreeMap<usize, KStats>,
    /// Peer cache entries received over the ad-hoc channel (one response
    /// message per entry).
    pub peer_entries_received: u64,
    /// Cached NN records carried by those entries (payload volume proxy).
    pub peer_records_received: u64,
    /// Frequency of the six heap states (Section 3.3) among server-bound
    /// queries, indexed 0..=5 for States 1..=6.
    pub heap_states: [u64; 6],
    /// Peer-resolved answers graded against ground truth (POI-churn runs).
    pub peer_answers_graded: u64,
    /// Graded peer-resolved answers that did not match the true kNN set
    /// (stale caches certified outdated objects).
    pub peer_answers_wrong: u64,
    /// Accepted-uncertain answers that exactly matched the true kNN set.
    pub uncertain_exact: u64,
    /// Sum over accepted-uncertain answers of the relative distance
    /// inflation `(sum of returned distances / sum of true distances) - 1`.
    pub uncertain_inflation_sum: f64,
    /// Queries whose SNNN expansion hit `max_expansion` before the network
    /// bound was confirmed (always 0 for pure-Euclidean runs; the flag
    /// rides in on [`QueryTrace::cap_hit`]).
    pub expansion_cap_hits: u64,
    /// Residual-request re-submissions performed by the service retry
    /// layer, degraded attempts included (always 0 for a fault-free
    /// service).
    pub server_retries: u64,
    /// Residual-request attempts that ended in a service timeout.
    pub server_timeouts: u64,
    /// Residual-request attempts the service (or network) dropped.
    pub server_drops: u64,
    /// Residual requests refused by transport admission control
    /// (`ReplyStatus::Shed`) — terminal for the retry ladder, so at most
    /// one per query. Always 0 without an overlapped transport.
    pub server_shed: u64,
    /// Residual retries refused by the adaptive transport's token-bucket
    /// budget — terminal per request, always 0 when adaptive control is
    /// off (the budget is unlimited).
    pub server_retries_denied: u64,
    /// Queries whose residual answer came from the degraded (unpruned)
    /// fallback after every pruned attempt failed.
    pub server_degraded: u64,
    /// Queries whose residual request exhausted every attempt — the host
    /// kept whatever the peers verified locally.
    pub server_failed: u64,
    /// Lower-bound oracle consultations performed by SNNN's pruned
    /// expansion (0 for Euclidean runs, which never expand). Identical
    /// across oracles: the candidate stream never depends on the bound.
    pub lb_evals: u64,
    /// Exact model distance evaluations the oracle's bounds skipped —
    /// the pruning payoff (0 under the vacuous `NeverPrune` oracle).
    pub model_evals_saved: u64,
    /// Exact-distance settlements the batch-shared expansion frontiers
    /// skipped versus fresh per-probe searches — the *only* counter
    /// allowed to differ between [`crate::SimConfig::shared_expansion`]
    /// on and off (0 with sharing off; rides in on
    /// [`QueryTrace::shared_settles_saved`]).
    pub shared_settles_saved: u64,
    /// Reverse-kNN queries answered by [`crate::Simulator::run_rknn`]
    /// (0 unless the driver is called).
    pub rknn_queries: u64,
    /// Reverse-kNN (query, host) candidate pairs examined.
    pub rknn_pairs: u64,
    /// Reverse-kNN pairs pruned by the hosts' cached-kNN radii without a
    /// server request.
    pub rknn_cache_pruned: u64,
    /// Hosts verified through the service seam by reverse-kNN batches
    /// (at most one request per host per batch).
    pub rknn_verified_hosts: u64,
    /// Reverse-kNN verification requests that exhausted every attempt.
    pub rknn_failed_hosts: u64,
    /// Reverse-kNN memberships found across all queries.
    pub rknn_members: u64,
}

impl Metrics {
    /// Starts from zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Resets every counter (used at the end of warm-up).
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Folds one query's [`QueryTrace`] into the counters: attribution of
    /// the initial kNN round (the paper's accounting unit), plus the
    /// expansion-cap flag. Sim-side measurements that need world state
    /// (grading, heap states, EINN/INN accesses) are added by the caller.
    pub fn record_trace(&mut self, trace: &QueryTrace) {
        self.queries += 1;
        match trace.resolution() {
            Resolution::SinglePeer => self.single_peer += 1,
            Resolution::MultiPeer => self.multi_peer += 1,
            Resolution::AcceptedUncertain => self.accepted_uncertain += 1,
            Resolution::Server | Resolution::Unresolved => self.server += 1,
        }
        if trace.cap_hit {
            self.expansion_cap_hits += 1;
        }
        self.server_retries += trace.server_retries as u64;
        self.server_timeouts += trace.server_timeouts as u64;
        self.server_drops += trace.server_drops as u64;
        self.server_shed += trace.server_shed as u64;
        self.server_retries_denied += trace.server_retries_denied as u64;
        if trace.server_degraded {
            self.server_degraded += 1;
        }
        if trace.server_failed {
            self.server_failed += 1;
        }
        self.lb_evals += trace.lb_evals;
        self.model_evals_saved += trace.model_evals_saved;
        self.shared_settles_saved += trace.shared_settles_saved;
    }

    /// Folds one reverse-kNN batch's accounting into the counters (the
    /// service dispositions of its verification requests are folded
    /// separately via [`Metrics::record_trace`] by the driver).
    pub fn record_rknn(&mut self, stats: &senn_core::RknnStats) {
        self.rknn_queries += stats.queries;
        self.rknn_pairs += stats.pairs;
        self.rknn_cache_pruned += stats.cache_pruned;
        self.rknn_verified_hosts += stats.verified_hosts;
        self.rknn_failed_hosts += stats.failed_hosts;
        self.rknn_members += stats.members;
    }

    /// SQRR: fraction of queries hitting the server, in `[0, 1]`.
    pub fn sqrr(&self) -> f64 {
        ratio(self.server, self.queries)
    }

    /// Fraction answered by single-peer verification.
    pub fn single_peer_rate(&self) -> f64 {
        ratio(self.single_peer, self.queries)
    }

    /// Fraction answered by multi-peer verification.
    pub fn multi_peer_rate(&self) -> f64 {
        ratio(self.multi_peer, self.queries)
    }

    /// Mean EINN node accesses per server-bound query.
    pub fn einn_pages_per_query(&self) -> f64 {
        ratio_f(self.einn_accesses, self.server)
    }

    /// Mean INN node accesses per server-bound query.
    pub fn inn_pages_per_query(&self) -> f64 {
        ratio_f(self.inn_accesses, self.server)
    }

    /// Mean peer cache entries received per query (P2P message overhead).
    pub fn peer_entries_per_query(&self) -> f64 {
        ratio_f(self.peer_entries_received, self.queries)
    }

    /// Mean cached NN records received per query (P2P payload overhead).
    pub fn peer_records_per_query(&self) -> f64 {
        ratio_f(self.peer_records_received, self.queries)
    }

    /// Mean query latency (ms) under a cost model: every query pays the
    /// P2P exchanges; server-bound queries add the cellular RTT plus the
    /// EINN page costs.
    pub fn mean_latency_ms(&self, model: &LatencyModel) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        let p2p = self.peer_entries_received as f64 * model.peer_rtt_ms;
        let server = self.server as f64 * model.server_rtt_ms
            + self.einn_accesses as f64 * model.per_page_ms;
        (p2p + server) / self.queries as f64
    }

    /// Fraction of graded peer answers that were wrong (staleness rate).
    pub fn stale_answer_rate(&self) -> f64 {
        ratio(self.peer_answers_wrong, self.peer_answers_graded)
    }

    /// Fraction of server-bound queries whose residual answer came from
    /// the degraded (unpruned) fallback.
    pub fn degraded_rate(&self) -> f64 {
        ratio(self.server_degraded, self.server)
    }

    /// Fraction of server-bound queries whose residual request failed
    /// outright (every attempt exhausted).
    pub fn failed_request_rate(&self) -> f64 {
        ratio(self.server_failed, self.server)
    }

    /// Fraction of accepted-uncertain answers that were exactly right.
    pub fn uncertain_exact_rate(&self) -> f64 {
        ratio(self.uncertain_exact, self.accepted_uncertain)
    }

    /// Mean relative distance inflation of accepted-uncertain answers.
    pub fn uncertain_mean_inflation(&self) -> f64 {
        if self.accepted_uncertain == 0 {
            0.0
        } else {
            self.uncertain_inflation_sum / self.accepted_uncertain as f64
        }
    }

    /// Merges another metrics block into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.queries += other.queries;
        self.single_peer += other.single_peer;
        self.multi_peer += other.multi_peer;
        self.accepted_uncertain += other.accepted_uncertain;
        self.server += other.server;
        self.einn_accesses += other.einn_accesses;
        self.inn_accesses += other.inn_accesses;
        for i in 0..6 {
            self.heap_states[i] += other.heap_states[i];
        }
        self.peer_answers_graded += other.peer_answers_graded;
        self.peer_answers_wrong += other.peer_answers_wrong;
        self.peer_entries_received += other.peer_entries_received;
        self.peer_records_received += other.peer_records_received;
        self.uncertain_exact += other.uncertain_exact;
        self.uncertain_inflation_sum += other.uncertain_inflation_sum;
        self.expansion_cap_hits += other.expansion_cap_hits;
        self.server_retries += other.server_retries;
        self.server_timeouts += other.server_timeouts;
        self.server_drops += other.server_drops;
        self.server_shed += other.server_shed;
        self.server_retries_denied += other.server_retries_denied;
        self.server_degraded += other.server_degraded;
        self.server_failed += other.server_failed;
        self.lb_evals += other.lb_evals;
        self.model_evals_saved += other.model_evals_saved;
        self.shared_settles_saved += other.shared_settles_saved;
        self.rknn_queries += other.rknn_queries;
        self.rknn_pairs += other.rknn_pairs;
        self.rknn_cache_pruned += other.rknn_cache_pruned;
        self.rknn_verified_hosts += other.rknn_verified_hosts;
        self.rknn_failed_hosts += other.rknn_failed_hosts;
        self.rknn_members += other.rknn_members;
        for (k, s) in &other.per_k {
            let e = self.per_k.entry(*k).or_default();
            e.queries += s.queries;
            e.einn_accesses += s.einn_accesses;
            e.inn_accesses += s.inn_accesses;
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn ratio_f(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.sqrr(), 0.0);
        assert_eq!(m.single_peer_rate(), 0.0);
        assert_eq!(m.einn_pages_per_query(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let m = Metrics {
            queries: 10,
            single_peer: 5,
            multi_peer: 2,
            server: 3,
            ..Metrics::default()
        };
        assert!((m.sqrr() - 0.3).abs() < 1e-12);
        assert!((m.single_peer_rate() + m.multi_peer_rate() + m.sqrr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_model() {
        let m = Metrics {
            queries: 10,
            server: 2,
            peer_entries_received: 30,
            einn_accesses: 20,
            ..Metrics::default()
        };
        let model = LatencyModel {
            peer_rtt_ms: 5.0,
            server_rtt_ms: 250.0,
            per_page_ms: 8.0,
        };
        // (30*5 + 2*250 + 20*8) / 10 = (150 + 500 + 160) / 10 = 81.
        assert!((m.mean_latency_ms(&model) - 81.0).abs() < 1e-9);
        assert_eq!(Metrics::default().mean_latency_ms(&model), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            queries: 3,
            server: 1,
            einn_accesses: 10,
            ..Metrics::default()
        };
        a.per_k.insert(
            3,
            KStats {
                queries: 1,
                einn_accesses: 10,
                inn_accesses: 12,
            },
        );
        let mut b = Metrics {
            queries: 7,
            server: 2,
            einn_accesses: 30,
            ..Metrics::default()
        };
        b.per_k.insert(
            3,
            KStats {
                queries: 2,
                einn_accesses: 30,
                inn_accesses: 40,
            },
        );
        b.per_k.insert(
            5,
            KStats {
                queries: 1,
                einn_accesses: 9,
                inn_accesses: 9,
            },
        );
        a.merge(&b);
        assert_eq!(a.queries, 10);
        assert_eq!(a.per_k[&3].inn_accesses, 52);
        assert_eq!(a.per_k[&5].queries, 1);
        a.reset();
        assert_eq!(a.queries, 0);
        assert!(a.per_k.is_empty());
    }

    /// A metrics block with every counter distinct and nonzero, so a
    /// merge that drops or crosses any field changes the result.
    fn dense(off: u64) -> Metrics {
        let mut m = Metrics {
            queries: 100 + off,
            single_peer: 1 + off,
            multi_peer: 2 + off,
            accepted_uncertain: 3 + off,
            server: 4 + off,
            einn_accesses: 5 + off,
            inn_accesses: 6 + off,
            peer_entries_received: 7 + off,
            peer_records_received: 8 + off,
            heap_states: [9 + off, 10 + off, 11 + off, 12 + off, 13 + off, 14 + off],
            peer_answers_graded: 15 + off,
            peer_answers_wrong: 16 + off,
            uncertain_exact: 17 + off,
            uncertain_inflation_sum: 0.25 * (off + 1) as f64,
            expansion_cap_hits: 18 + off,
            server_retries: 19 + off,
            server_timeouts: 20 + off,
            server_drops: 21 + off,
            server_shed: 26 + off,
            server_retries_denied: 27 + off,
            server_degraded: 22 + off,
            server_failed: 23 + off,
            lb_evals: 24 + off,
            model_evals_saved: 25 + off,
            shared_settles_saved: 28 + off,
            rknn_queries: 29 + off,
            rknn_pairs: 36 + off,
            rknn_cache_pruned: 37 + off,
            rknn_verified_hosts: 38 + off,
            rknn_failed_hosts: 39 + off,
            rknn_members: 40 + off,
            ..Metrics::default()
        };
        m.per_k.insert(
            1 + off as usize,
            KStats {
                queries: 30 + off,
                einn_accesses: 31 + off,
                inn_accesses: 32 + off,
            },
        );
        m.per_k.insert(
            50,
            KStats {
                queries: 33 + off,
                einn_accesses: 34 + off,
                inn_accesses: 35 + off,
            },
        );
        m
    }

    #[test]
    fn merge_covers_fault_counters_and_cap_hits() {
        // The PR-3 fault counters and the SNNN cap counter must all
        // survive a merge — a regression here silently under-reports
        // degraded service periods.
        let mut a = dense(0);
        let b = dense(1000);
        a.merge(&b);
        assert_eq!(a.expansion_cap_hits, 18 + 1018);
        assert_eq!(a.server_retries, 19 + 1019);
        assert_eq!(a.server_timeouts, 20 + 1020);
        assert_eq!(a.server_drops, 21 + 1021);
        assert_eq!(a.server_shed, 26 + 1026);
        assert_eq!(a.server_retries_denied, 27 + 1027);
        assert_eq!(a.server_degraded, 22 + 1022);
        assert_eq!(a.server_failed, 23 + 1023);
        assert_eq!(a.lb_evals, 24 + 1024);
        assert_eq!(a.model_evals_saved, 25 + 1025);
        assert_eq!(a.shared_settles_saved, 28 + 1028);
        assert_eq!(a.rknn_queries, 29 + 1029);
        assert_eq!(a.rknn_pairs, 36 + 1036);
        assert_eq!(a.rknn_cache_pruned, 37 + 1037);
        assert_eq!(a.rknn_verified_hosts, 38 + 1038);
        assert_eq!(a.rknn_failed_hosts, 39 + 1039);
        assert_eq!(a.rknn_members, 40 + 1040);
        assert_eq!(a.peer_answers_graded, 15 + 1015);
        assert_eq!(a.peer_answers_wrong, 16 + 1016);
        assert_eq!(a.uncertain_exact, 17 + 1017);
        assert!((a.uncertain_inflation_sum - (0.25 + 0.25 * 1001.0)).abs() < 1e-12);
        for (i, s) in a.heap_states.iter().enumerate() {
            assert_eq!(*s, (9 + i as u64) + (1009 + i as u64));
        }
        // Disjoint per_k keys are kept, shared keys summed.
        assert_eq!(a.per_k[&1].queries, 30);
        assert_eq!(a.per_k[&1001].queries, 1030);
        assert_eq!(a.per_k[&50].einn_accesses, 34 + 1034);
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let (x, y, z) = (dense(0), dense(7), dense(400));
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        assert_eq!(left, right, "merge must be associative");

        let mut with_id = x.clone();
        with_id.merge(&Metrics::default());
        assert_eq!(with_id, x, "the empty block is a right identity");
        let mut id_with = Metrics::default();
        id_with.merge(&x);
        assert_eq!(id_with, x, "the empty block is a left identity");
    }

    #[test]
    fn merge_of_record_trace_halves_matches_recording_in_one_block() {
        // Splitting a trace stream across two blocks and merging must
        // equal recording everything into one block — the property the
        // parallel fold relies on.
        use senn_core::QueryTrace;
        let mut traces = Vec::new();
        for i in 0..12u32 {
            let mut t = QueryTrace::new();
            t.resolutions.push(match i % 4 {
                0 => Resolution::SinglePeer,
                1 => Resolution::MultiPeer,
                2 => Resolution::Server,
                _ => Resolution::Unresolved,
            });
            t.cap_hit = i % 3 == 0;
            t.server_retries = i;
            t.server_timeouts = i / 2;
            t.server_drops = i / 3;
            t.server_shed = i % 2;
            t.server_retries_denied = i % 3;
            t.server_degraded = i % 5 == 0;
            t.server_failed = i % 7 == 0;
            t.lb_evals = (2 * i) as u64;
            t.model_evals_saved = (i / 2) as u64;
            t.shared_settles_saved = (3 * i + 1) as u64;
            traces.push(t);
        }
        let mut whole = Metrics::new();
        for t in &traces {
            whole.record_trace(t);
        }
        let mut first = Metrics::new();
        let mut second = Metrics::new();
        for (i, t) in traces.iter().enumerate() {
            if i < 5 {
                first.record_trace(t);
            } else {
                second.record_trace(t);
            }
        }
        first.merge(&second);
        assert_eq!(first, whole);
        assert!(whole.expansion_cap_hits > 0);
        assert!(whole.server_retries > 0);
        assert!(whole.lb_evals > 0 && whole.model_evals_saved > 0);
        assert!(whole.shared_settles_saved > 0);
    }

    #[test]
    fn record_rknn_folds_every_field_and_merge_matches() {
        use senn_core::RknnStats;
        let s1 = RknnStats {
            queries: 3,
            pairs: 12,
            cache_pruned: 5,
            verified_hosts: 4,
            failed_hosts: 1,
            members: 6,
        };
        let s2 = RknnStats {
            queries: 2,
            pairs: 8,
            cache_pruned: 3,
            verified_hosts: 2,
            failed_hosts: 0,
            members: 4,
        };
        let mut whole = Metrics::new();
        whole.record_rknn(&s1);
        whole.record_rknn(&s2);
        assert_eq!(whole.rknn_queries, 5);
        assert_eq!(whole.rknn_pairs, 20);
        assert_eq!(whole.rknn_cache_pruned, 8);
        assert_eq!(whole.rknn_verified_hosts, 6);
        assert_eq!(whole.rknn_failed_hosts, 1);
        assert_eq!(whole.rknn_members, 10);
        // Split-and-merge equals recording into one block.
        let mut a = Metrics::new();
        a.record_rknn(&s1);
        let mut b = Metrics::new();
        b.record_rknn(&s2);
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
