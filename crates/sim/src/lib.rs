#![warn(missing_docs)]
//! # senn-sim
//!
//! The full mobile peer-to-peer spatial-query simulator of Section 4:
//! mobile-host module (movement + query launching + caching) and server
//! module (R\*-tree with INN/EINN and page-access accounting), driven by
//! the paper's parameter sets (Tables 3 and 4), reporting the SQRR and PAR
//! metrics, with one experiment driver per figure.
//!
//! ```
//! use senn_sim::{ParamSet, SimConfig, SimParams, Simulator};
//!
//! let mut params = SimParams::two_by_two(ParamSet::Riverside);
//! params.t_execution_hours = 0.02; // 72 simulated seconds
//! let mut sim = Simulator::new(SimConfig::new(params, 42));
//! let metrics = sim.run();
//! assert_eq!(
//!     metrics.queries,
//!     metrics.single_peer + metrics.multi_peer + metrics.server + metrics.accepted_uncertain
//! );
//! ```

pub mod alloc_probe;
mod cache_step;
mod comms;
pub mod experiments;
pub mod grid;
pub mod metrics;
mod movement;
pub mod params;
mod query_step;
pub mod report;
pub mod simulator;
mod store;
mod transport_step;

pub use experiments::{ExpOptions, MixPoint, MixSeries, ModeComparison, PageAccessPoint};
pub use grid::HostGrid;
pub use metrics::{KStats, LatencyModel, Metrics};
pub use params::{ParamSet, SimParams};
pub use simulator::{
    BatchStats, CachePolicy, GridMaintenance, KChoice, MovementMode, NetworkModelKind, SimConfig,
    SimConfigBuilder, SimConfigError, Simulator,
};

// Service-seam knobs a simulation config can carry, re-exported so callers
// configuring faults, retries or the overlapped transport need only this
// crate.
pub use senn_core::rknn::{
    rknn_bruteforce, RknnBatch, RknnHost, RknnOutcome, RknnQuery, RknnStats,
};
pub use senn_core::transport::{AdaptivePolicy, RetryPolicy, TransportPolicy, TransportStats};
pub use senn_server::{FaultConfig, ServiceMetrics, ShardMetrics};
