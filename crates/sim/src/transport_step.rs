//! The overlapped-transport step of the interval loop: residual requests
//! are *enqueued* into the event-driven `senn_core::transport` layer at
//! the interval that issued them, and their completions are *polled* (out
//! of order, matched by ticket) at later interval boundaries — so the
//! service round-trip overlaps subsequent intervals instead of blocking
//! the batch the way `submit_with_retry` does.
//!
//! Determinism contract: request ids are a global sequence assigned in
//! plan order (unique across the whole run), the transport's lane count is
//! a fixed constant (never the shard count), and every stochastic draw on
//! the path — the keyed `FaultyService` fates and the transport's
//! service-time draws — is a pure function of `(seed, request id, attempt
//! ordinal)`. The completion cohort of an interval is re-sorted by that
//! sequence before the merge fold. Recorded
//! [`Metrics`](crate::metrics::Metrics) are therefore bit-identical
//! across worker-thread counts and shard layouts (proven in
//! `tests/transport_mode.rs`).
//!
//! Deferred-completion semantics: a residual answered in a later interval
//! is measured *at that interval* — its cache entry carries the
//! completion-time stamp and churn grading runs against the then-current
//! ground truth (the answer arrives when it arrives). Queries still in
//! flight at the simulation horizon are force-drained by
//! [`Simulator::drain_transport`] so every issued query is attributed
//! exactly once.

use std::collections::HashMap;

use senn_core::service::RequestOutcome;
use senn_core::transport::{AsyncClient, Ticket, TransportPolicy};
use senn_core::SennEngine;
use senn_server::FaultyService;

use crate::query_step::{PendingQuery, QueryOutcome, QueryPlan};
use crate::simulator::{GridMaintenance, ServiceBackend, ServiceHandle, Simulator};

/// Uplink lanes of the sim's transport. A fixed constant, deliberately
/// decoupled from `server_shards`: lane assignment hashes the request id,
/// so changing the shard layout must not re-shuffle the event schedule.
const TRANSPORT_LANES: usize = 4;

/// Salt separating the transport's service-time stream from every other
/// consumer of the master seed.
const TRANSPORT_SEED_SALT: u64 = 0x5ea1_edca_b1e5_70ff;

/// One residual query awaiting its transport completion: the issuing
/// plan, the peers-only pending state, and its global sequence number
/// (also its request id) that fixes the merge-fold position.
pub(crate) struct DeferredQuery {
    seq: u64,
    plan: QueryPlan,
    pending: PendingQuery,
}

/// The overlapped-mode state behind [`ServiceHandle::Overlapped`]: the
/// async client wrapping the fault-wrapped backend, the in-flight ledger,
/// and the global request-id sequence.
pub(crate) struct OverlapState {
    /// Retry-ladder client over the virtual-clock transport.
    pub(crate) client: AsyncClient<FaultyService<ServiceBackend>>,
    /// Residuals awaiting completion, keyed by their first-attempt ticket
    /// (the ticket [`AsyncClient::poll`] resolves them under). Only ever
    /// accessed by ticket lookup — iteration order never matters.
    deferred: HashMap<Ticket, DeferredQuery>,
    /// Next global residual sequence number / request id.
    next_seq: u64,
}

impl OverlapState {
    pub(crate) fn new(
        service: FaultyService<ServiceBackend>,
        seed: u64,
        policy: TransportPolicy,
    ) -> Self {
        OverlapState {
            client: AsyncClient::new(service, TRANSPORT_LANES, seed ^ TRANSPORT_SEED_SALT, policy),
            deferred: HashMap::new(),
            next_seq: 0,
        }
    }
}

/// Attributes one transport completion to its deferred query: the ladder
/// disposition lands in the trace, and an answered residual is merged via
/// `complete_residual` exactly as on the blocking path.
fn finish_residual(
    engine: &SennEngine,
    d: DeferredQuery,
    outcome: RequestOutcome,
) -> (u64, QueryPlan, PendingQuery) {
    let DeferredQuery {
        seq,
        plan,
        mut pending,
    } = d;
    pending.outcome.trace.record_service_outcome(&outcome);
    if !outcome.failed {
        let peers_only = pending.outcome;
        pending.outcome = engine.complete_residual(plan.k, peers_only, outcome.response);
    }
    (seq, plan, pending)
}

impl Simulator {
    /// The overlapped counterpart of `run_query_batch`: plan and execute
    /// the interval's arrivals exactly like the blocking path, but enqueue
    /// the unresolved residuals (request id = global sequence) instead of
    /// awaiting them, and fold in whatever completions the elapsed
    /// interval matured. Runs even for `n == 0` — time passing is what
    /// matures completions.
    pub(crate) fn run_query_batch_overlapped(&mut self, n: usize) {
        let now_ms = self.time * 1000.0;
        let plans = self.plan_batch(n);
        if n > 0 && self.config.grid_maintenance == GridMaintenance::Rebuild {
            self.grid.rebuild(
                self.area,
                self.config.params.tx_range_m.max(1.0),
                self.store.positions(),
            );
        }
        let started = std::time::Instant::now();
        let pendings = if n == 0 {
            Vec::new()
        } else {
            self.execute_batch(&plans)
        };

        let ServiceHandle::Overlapped(state) = &mut self.service else {
            unreachable!("overlapped batch runs only with a transport configured");
        };
        // Harvest completions that matured during the elapsed interval
        // (this advances the transport's virtual clock to `now_ms`), then
        // enqueue this interval's residuals at the new clock.
        let mut cohort: Vec<(u64, QueryPlan, PendingQuery)> = Vec::new();
        for (ticket, outcome) in state.client.poll(now_ms) {
            let d = state
                .deferred
                .remove(&ticket)
                .expect("every completion matches a deferred query");
            cohort.push(finish_residual(&self.engine, d, outcome));
        }
        for (plan, pending) in plans.iter().zip(pendings) {
            let seq = state.next_seq;
            state.next_seq += 1;
            if pending.needs_server() {
                let q = self.store.position(plan.querier);
                let request = self
                    .engine
                    .residual_request(seq, q, plan.k, &pending.outcome);
                let ticket = state.client.submit(request);
                state.deferred.insert(
                    ticket,
                    DeferredQuery {
                        seq,
                        plan: *plan,
                        pending,
                    },
                );
            } else {
                cohort.push((seq, *plan, pending));
            }
        }
        // A second poll at the same instant delivers the admission-edge
        // shed replies of the requests just enqueued: shedding is
        // immediate, so a shed ladder's outcome belongs to the interval
        // that issued the query.
        for (ticket, outcome) in state.client.poll(now_ms) {
            let d = state
                .deferred
                .remove(&ticket)
                .expect("every completion matches a deferred query");
            cohort.push(finish_residual(&self.engine, d, outcome));
        }
        self.finish_overlapped_cohort(cohort, started, n as u64);
    }

    /// Force-completes every residual still in flight (end of run): the
    /// transport's event loop runs to exhaustion and the late cohort is
    /// measured and folded like any other. No-op in blocking mode.
    pub(crate) fn drain_transport(&mut self) {
        let ServiceHandle::Overlapped(state) = &mut self.service else {
            return;
        };
        let mut cohort: Vec<(u64, QueryPlan, PendingQuery)> = Vec::new();
        for (ticket, outcome) in state.client.drain() {
            let d = state
                .deferred
                .remove(&ticket)
                .expect("every completion matches a deferred query");
            cohort.push(finish_residual(&self.engine, d, outcome));
        }
        debug_assert!(
            state.deferred.is_empty(),
            "drained transport left deferred queries behind"
        );
        let started = std::time::Instant::now();
        self.finish_overlapped_cohort(cohort, started, 0);
    }

    /// Measures and merges one interval's completion cohort — current
    /// locally-resolved queries plus matured residuals — in global
    /// sequence order, which is plan order across the whole run; the fold
    /// is therefore a pure function of the plan, never of completion
    /// timing granularity.
    fn finish_overlapped_cohort(
        &mut self,
        mut cohort: Vec<(u64, QueryPlan, PendingQuery)>,
        started: std::time::Instant,
        planned: u64,
    ) {
        cohort.sort_by_key(|&(seq, _, _)| seq);
        let plans: Vec<QueryPlan> = cohort.iter().map(|&(_, plan, _)| plan).collect();
        let pendings: Vec<PendingQuery> = cohort.into_iter().map(|(_, _, p)| p).collect();
        let measures = self.measure_batch(&plans, &pendings);
        if planned > 0 {
            self.batch_stats
                .record(started.elapsed().as_secs_f64(), planned);
        }
        self.absorb_transport_stats();
        for ((plan, pending), measured) in plans.iter().zip(pendings).zip(measures) {
            self.apply_outcome(plan, QueryOutcome::assemble(pending, measured));
        }
    }

    /// Snapshots the transport's cumulative observability counters into
    /// [`BatchStats`](crate::simulator::BatchStats) (peaks and totals, so
    /// overwriting with the latest snapshot is exact). No-op in blocking
    /// mode.
    pub(crate) fn absorb_transport_stats(&mut self) {
        let ServiceHandle::Overlapped(state) = &self.service else {
            return;
        };
        let stats = state.client.stats();
        self.batch_stats.queue_depth_peak = stats.queue_depth_peak;
        self.batch_stats.in_flight_peak = stats.in_flight_peak;
        self.batch_stats.shed_count = stats.shed;
        self.batch_stats.latency_p50_ms = stats.p50_latency_ms();
        self.batch_stats.latency_p99_ms = stats.p99_latency_ms();
        self.batch_stats.window_min = stats.window_min;
        self.batch_stats.window_max = stats.window_max;
        self.batch_stats.window_final = stats.window_final;
        self.batch_stats.retries_denied = state.client.retries_denied();
    }
}
