//! Plain-text rendering of experiment results — the "same rows/series the
//! paper reports", printable by the `experiments` binary and pasteable
//! into EXPERIMENTS.md.

use crate::experiments::{
    AblationRow, MixPoint, MixSeries, ModeComparison, OverheadPoint, PageAccessPoint, StalenessRow,
    UncertainQualityRow,
};
use crate::params::ParamSet;

/// Renders a query-mix figure (Figures 9–16) as a table per parameter set.
pub fn mix_table(title: &str, x_label: &str, series: &[MixSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    for s in series {
        out.push_str(&format!("\n### {}\n", s.set.name()));
        out.push_str(&format!(
            "{:>10} | {:>9} | {:>9} | {:>9} | {:>8}\n",
            x_label, "single %", "multi %", "server %", "queries"
        ));
        out.push_str(&format!("{}\n", "-".repeat(58)));
        for p in &s.points {
            out.push_str(&format!(
                "{:>10} | {:>9.1} | {:>9.1} | {:>9.1} | {:>8}\n",
                trim_float(p.x),
                p.single_pct,
                p.multi_pct,
                p.server_pct,
                p.queries
            ));
        }
    }
    out
}

/// Renders the Figure 17 page-access comparison.
pub fn page_access_table(title: &str, data: &[(ParamSet, Vec<PageAccessPoint>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(&format!(
        "{:>4} | {:>12} | {:>12} | {:>9} | {:>8}\n",
        "k", "EINN pages", "INN pages", "saving %", "queries"
    ));
    for (set, points) in data {
        out.push_str(&format!("--- {} ---\n", set.name()));
        for p in points {
            let saving = if p.inn > 0.0 {
                (1.0 - p.einn / p.inn) * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>4} | {:>12.2} | {:>12.2} | {:>9.1} | {:>8}\n",
                p.k, p.einn, p.inn, saving, p.queries
            ));
        }
    }
    out
}

/// Renders the Section 4.3 movement-mode comparison.
pub fn mode_table(rows: &[ModeComparison]) -> String {
    let mut out = String::new();
    out.push_str("## Road-network vs free movement (SQRR)\n\n");
    out.push_str(&format!(
        "{:>22} | {:>8} | {:>9} | {:>9} | {:>8}\n",
        "set", "area mi", "road %", "free %", "delta"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>22} | {:>8.2} | {:>9.1} | {:>9.1} | {:>+8.1}\n",
            r.set.name(),
            r.area_miles,
            r.road_sqrr * 100.0,
            r.free_sqrr * 100.0,
            (r.free_sqrr - r.road_sqrr) * 100.0
        ));
    }
    out
}

/// Renders the design-choice ablation table.
pub fn ablation_table(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("## Design-choice ablation (LA 2x2 mi)\n\n");
    out.push_str(&format!(
        "{:>34} | {:>9} | {:>9} | {:>9}\n",
        "variant", "single %", "multi %", "server %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>34} | {:>9.1} | {:>9.1} | {:>9.1}\n",
            r.variant, r.single_pct, r.multi_pct, r.server_pct
        ));
    }
    out
}

/// Renders the accept-uncertain quality study.
pub fn uncertain_quality_table(rows: &[UncertainQualityRow]) -> String {
    let mut out = String::new();
    out.push_str("## Accepting uncertain answers: coverage vs quality (2x2 mi)\n\n");
    out.push_str(&format!(
        "{:>22} | {:>10} | {:>9} | {:>8} | {:>11}\n",
        "set", "accepted %", "server %", "exact %", "inflation %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>22} | {:>10.1} | {:>9.1} | {:>8.1} | {:>11.2}\n",
            r.set.name(),
            r.accepted_pct,
            r.server_pct,
            r.exact_rate * 100.0,
            r.mean_inflation * 100.0
        ));
    }
    out
}

/// CSV rendering of a query-mix figure: one row per (set, x).
pub fn mix_csv(series: &[MixSeries]) -> String {
    let mut out = String::from("set,x,single_pct,multi_pct,server_pct,queries\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{}\n",
                s.set.label(),
                p.x,
                p.single_pct,
                p.multi_pct,
                p.server_pct,
                p.queries
            ));
        }
    }
    out
}

/// CSV rendering of the Figure 17 page-access comparison.
pub fn page_access_csv(data: &[(ParamSet, Vec<PageAccessPoint>)]) -> String {
    let mut out = String::from("set,k,einn_pages,inn_pages,queries\n");
    for (set, points) in data {
        for p in points {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{}\n",
                set.label(),
                p.k,
                p.einn,
                p.inn,
                p.queries
            ));
        }
    }
    out
}

/// Renders the P2P overhead study.
pub fn overhead_table(points: &[OverheadPoint]) -> String {
    let mut out = String::new();
    out.push_str("## P2P communication overhead vs server offload (LA 2x2 mi)\n\n");
    out.push_str(&format!(
        "{:>8} | {:>15} | {:>15} | {:>9}\n",
        "tx (m)", "entries/query", "records/query", "server %"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8} | {:>15.2} | {:>15.2} | {:>9.1}\n",
            p.tx_range_m, p.entries_per_query, p.records_per_query, p.server_pct
        ));
    }
    out
}

/// Renders the POI-churn / staleness study.
pub fn staleness_table(rows: &[StalenessRow]) -> String {
    let mut out = String::new();
    out.push_str("## POI churn vs cache staleness (LA 2x2 mi)\n\n");
    out.push_str(&format!(
        "{:>12} | {:>9} | {:>9} | {:>14}\n",
        "churn (1/h)", "TTL (s)", "server %", "stale answers %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12} | {:>9} | {:>9.1} | {:>14.2}\n",
            r.churn_per_hour,
            r.ttl_secs.map_or("off".to_string(), |t| format!("{t:.0}")),
            r.server_pct,
            r.stale_pct
        ));
    }
    out
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.1}")
    }
}

/// Convenience constructor for tests and docs.
pub fn mix_series(set: ParamSet, points: Vec<MixPoint>) -> MixSeries {
    MixSeries { set, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64) -> MixPoint {
        MixPoint {
            x,
            single_pct: 50.0,
            multi_pct: 10.0,
            server_pct: 40.0,
            queries: 123,
        }
    }

    #[test]
    fn mix_table_renders_all_series() {
        let series = vec![
            mix_series(ParamSet::LosAngeles, vec![point(20.0), point(200.0)]),
            mix_series(ParamSet::Riverside, vec![point(20.0)]),
        ];
        let t = mix_table("Figure 9", "tx (m)", &series);
        assert!(t.contains("Figure 9"));
        assert!(t.contains("Los Angeles County"));
        assert!(t.contains("Riverside County"));
        assert!(t.contains("200"));
        assert!(t.contains("40.0"));
        assert_eq!(t.matches("single %").count(), 2);
    }

    #[test]
    fn page_access_table_computes_saving() {
        let data = vec![(
            ParamSet::Synthetic,
            vec![PageAccessPoint {
                k: 6,
                einn: 8.0,
                inn: 10.0,
                queries: 42,
            }],
        )];
        let t = page_access_table("Figure 17", &data);
        assert!(t.contains("20.0"), "saving of 20% rendered: {t}");
        assert!(t.contains("Synthetic"));
    }

    #[test]
    fn mode_table_shows_delta() {
        let rows = vec![ModeComparison {
            set: ParamSet::LosAngeles,
            area_miles: 2.0,
            road_sqrr: 0.50,
            free_sqrr: 0.44,
        }];
        let t = mode_table(&rows);
        assert!(t.contains("-6.0"), "delta rendered: {t}");
    }
}
