//! Uniform-grid peer discovery with incremental maintenance.
//!
//! "Query moving object peers within the communication range" (Algorithm
//! 1, line 2): for every query we need the hosts within `Tx_Range` of the
//! querier. A uniform grid with cell size equal to the transmission range
//! reduces that to a 3×3 cell scan.
//!
//! The grid is an *index only*: it stores which hosts sit in which cell,
//! while positions live in the simulator's host store and are passed to
//! every lookup. That split is what makes move-only maintenance cheap —
//! [`HostGrid::apply_move`] edits at most two cell lists when a host
//! crosses a cell boundary and touches nothing at all otherwise, so a
//! movement pass costs O(boundary crossings) instead of the O(hosts)
//! rebuild the per-batch path pays. [`HostGrid::rebuild`] is kept as the
//! fallback (and the property-tested equivalence baseline: an
//! incrementally maintained grid is element-for-element identical to a
//! fresh build, because every cell list is kept sorted ascending by host
//! id — exactly the order a fresh index-order insertion produces).
//!
//! The grid is read-only while a query batch executes, which is what lets
//! the simulator fan queries out across threads. [`HostGrid::within_into`]
//! writes hits into a caller-owned vector, so steady-state peer discovery
//! performs no allocation at all.

use senn_geom::{Point, Rect};

/// An incrementally maintained uniform grid over host indices.
#[derive(Clone, Debug)]
pub struct HostGrid {
    bounds: Rect,
    cell: f64,
    /// `1.0 / cell`, precomputed: cell assignment multiplies instead of
    /// dividing, and every path (build, rebuild, `apply_move`, lookups)
    /// uses the same [`HostGrid::cell_of`], so assignments stay mutually
    /// consistent.
    inv_cell: f64,
    cols: usize,
    rows: usize,
    /// Host ids per cell, each list sorted ascending — the invariant that
    /// makes incremental maintenance bit-identical to a fresh build.
    cells: Vec<Vec<u32>>,
    /// Indices of cells that ever held a host since the last rebuild
    /// (cleared on rebuild); `occupied_flag` mirrors membership so
    /// incremental inserts never push duplicates.
    occupied: Vec<u32>,
    occupied_flag: Vec<bool>,
    /// Current flat cell index of every tracked host.
    host_cells: Vec<u32>,
}

impl HostGrid {
    /// Builds the grid for the given host positions. `cell` should be the
    /// transmission range.
    pub fn build(bounds: Rect, cell: f64, positions: &[Point]) -> Self {
        let mut grid = HostGrid {
            bounds,
            cell: 1.0,
            inv_cell: 1.0,
            cols: 0,
            rows: 0,
            cells: Vec::new(),
            occupied: Vec::new(),
            occupied_flag: Vec::new(),
            host_cells: Vec::new(),
        };
        grid.rebuild(bounds, cell, positions);
        grid
    }

    /// Rebuilds the grid in place for a new host-position snapshot,
    /// reusing the existing cell vectors (and their capacity) whenever the
    /// geometry allows — the fallback path of
    /// [`GridMaintenance::Rebuild`](crate::GridMaintenance).
    pub fn rebuild(&mut self, bounds: Rect, cell: f64, positions: &[Point]) {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(!bounds.is_empty(), "area must be non-empty");
        let cols = (bounds.width() / cell).floor() as usize + 1;
        let rows = (bounds.height() / cell).floor() as usize + 1;
        if cols * rows == self.cols * self.rows {
            // Same cell count (the common steady-state case): clear only
            // the cells previous batches touched.
            for &c in &self.occupied {
                self.cells[c as usize].clear();
                self.occupied_flag[c as usize] = false;
            }
        } else {
            self.cells.clear();
            self.cells.resize(cols * rows, Vec::new());
            self.occupied_flag.clear();
            self.occupied_flag.resize(cols * rows, false);
        }
        self.bounds = bounds;
        self.cell = cell;
        self.inv_cell = 1.0 / cell;
        self.cols = cols;
        self.rows = rows;
        self.occupied.clear();
        self.host_cells.clear();
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = Self::cell_of(bounds, self.inv_cell, cols, rows, *p);
            let idx = cy * cols + cx;
            if self.cells[idx].is_empty() && !self.occupied_flag[idx] {
                self.occupied.push(idx as u32);
                self.occupied_flag[idx] = true;
            }
            self.cells[idx].push(i as u32);
            self.host_cells.push(idx as u32);
        }
    }

    /// Number of hosts the grid currently tracks.
    pub fn len(&self) -> usize {
        self.host_cells.len()
    }

    /// True when no hosts are tracked.
    pub fn is_empty(&self) -> bool {
        self.host_cells.is_empty()
    }

    fn cell_of(bounds: Rect, inv_cell: f64, cols: usize, rows: usize, p: Point) -> (usize, usize) {
        let cx = (((p.x - bounds.min.x) * inv_cell).floor() as isize).clamp(0, cols as isize - 1)
            as usize;
        let cy = (((p.y - bounds.min.y) * inv_cell).floor() as isize).clamp(0, rows as isize - 1)
            as usize;
        (cx, cy)
    }

    fn flat_cell(&self, p: Point) -> u32 {
        let (cx, cy) = Self::cell_of(self.bounds, self.inv_cell, self.cols, self.rows, p);
        (cy * self.cols + cx) as u32
    }

    /// Removes `host` from cell list `idx` (it must be there).
    fn remove_from_cell(&mut self, host: u32, idx: u32) {
        let list = &mut self.cells[idx as usize];
        let at = list
            .binary_search(&host)
            .expect("grid invariant: host listed in its recorded cell");
        list.remove(at);
    }

    /// Inserts `host` into cell list `idx`, keeping the list ascending.
    fn insert_into_cell(&mut self, host: u32, idx: u32) {
        // A non-empty cell is already on the occupied list (set when its
        // first host arrived and never unset until rebuild), so the flag
        // column is only consulted when a cell transitions from empty.
        if self.cells[idx as usize].is_empty() && !self.occupied_flag[idx as usize] {
            self.occupied.push(idx);
            self.occupied_flag[idx as usize] = true;
        }
        let list = &mut self.cells[idx as usize];
        let at = list
            .binary_search(&host)
            .expect_err("grid invariant: host tracked at most once");
        list.insert(at, host);
    }

    /// Incremental maintenance: records that `host` now sits at `new_pos`.
    /// Returns `true` when the host crossed a cell boundary (two sorted
    /// cell-list edits), `false` when it stayed in its cell (no work).
    ///
    /// After any sequence of `apply_move` calls the grid is
    /// element-for-element identical to a fresh [`HostGrid::build`] over
    /// the current positions (property-tested below), so `within_into`
    /// returns hits in exactly the same order either way.
    pub fn apply_move(&mut self, host: u32, new_pos: Point) -> bool {
        let old = self.host_cells[host as usize];
        let new = self.flat_cell(new_pos);
        if old == new {
            return false;
        }
        self.remove_from_cell(host, old);
        self.insert_into_cell(host, new);
        self.host_cells[host as usize] = new;
        true
    }

    /// Incremental maintenance: starts tracking a new host at `pos`,
    /// assigning it the next id (`self.len()` before the call).
    pub fn insert(&mut self, pos: Point) -> u32 {
        let host = self.host_cells.len() as u32;
        let idx = self.flat_cell(pos);
        self.insert_into_cell(host, idx);
        self.host_cells.push(idx);
        host
    }

    /// Incremental maintenance: stops tracking `host`, re-identifying the
    /// last tracked host as `host` — exactly the id semantics of
    /// `Vec::swap_remove` on the caller's parallel position column.
    pub fn remove_swap(&mut self, host: u32) {
        let last = (self.host_cells.len() - 1) as u32;
        let idx = self.host_cells[host as usize];
        self.remove_from_cell(host, idx);
        if host != last {
            let last_idx = self.host_cells[last as usize];
            self.remove_from_cell(last, last_idx);
            self.insert_into_cell(host, last_idx);
            self.host_cells[host as usize] = last_idx;
        }
        self.host_cells.pop();
    }

    /// Hosts (by index) within `radius` of `p`, excluding `exclude`.
    /// `positions` is the position column the grid is maintained against.
    pub fn within(&self, positions: &[Point], p: Point, radius: f64, exclude: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_into(positions, p, radius, exclude, &mut out);
        out
    }

    /// [`HostGrid::within`] writing hits into `out` (cleared first), so a
    /// per-worker buffer absorbs the allocation across queries.
    ///
    /// Hits are pushed in ascending cell order then ascending host id
    /// within a cell, which is a pure function of the inputs — parallel
    /// callers see the same peer ordering the sequential path sees, and
    /// the incremental and rebuild maintenance modes agree exactly.
    pub fn within_into(
        &self,
        positions: &[Point],
        p: Point,
        radius: f64,
        exclude: u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let r2 = radius * radius;
        // Hosts clamped into edge cells sit arbitrarily far outside the
        // bounds, but clamping only ever moves a cell index *toward* the
        // query's clamped index, so a ring in clamped coordinates still
        // covers every candidate within `radius`.
        let reach = (radius / self.cell).ceil() as isize;
        let (cx, cy) = Self::cell_of(self.bounds, self.inv_cell, self.cols, self.rows, p);
        for dy in -reach..=reach {
            let y = cy as isize + dy;
            if y < 0 || y >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let x = cx as isize + dx;
                if x < 0 || x >= self.cols as isize {
                    continue;
                }
                for &id in &self.cells[y as usize * self.cols + x as usize] {
                    if id != exclude && p.dist_sq(positions[id as usize]) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_matches_linear_scan() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..500)
            .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
            .collect();
        let grid = HostGrid::build(bounds, 200.0, &positions);
        for probe in 0..50 {
            let q = positions[probe * 7 % positions.len()];
            let mut fast = grid.within(&positions, q, 200.0, probe as u32);
            let mut slow: Vec<u32> = positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| i as u32 != probe as u32 && q.dist(*p) <= 200.0)
                .map(|(i, _)| i as u32)
                .collect();
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn radius_larger_than_cell() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let grid = HostGrid::build(bounds, 10.0, &positions);
        let hits = grid.within(&positions, Point::new(50.0, 50.0), 80.0, u32::MAX);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn excludes_querier_and_out_of_range() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(12.0, 10.0),
            Point::new(99.0, 99.0),
        ];
        let grid = HostGrid::build(bounds, 20.0, &positions);
        let hits = grid.within(&positions, positions[0], 5.0, 0);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn positions_outside_bounds_are_clamped_not_lost() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(-5.0, 50.0)];
        let grid = HostGrid::build(bounds, 25.0, &positions);
        let hits = grid.within(&positions, Point::new(0.0, 50.0), 10.0, u32::MAX);
        assert_eq!(hits, vec![0]);
    }

    /// Hosts exactly on a cell boundary and exactly at distance `radius`
    /// must be found (the `<= r²` comparison and the ring reach both sit
    /// on the boundary here).
    #[test]
    fn boundary_hosts_at_exact_radius_are_found() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let cell = 10.0;
        // Querier at a cell corner; peers exactly `radius` away along the
        // axes and diagonals, each landing exactly on a cell boundary.
        let q = Point::new(50.0, 50.0);
        let radius = 20.0;
        let positions = vec![
            q,
            Point::new(50.0 + radius, 50.0),
            Point::new(50.0 - radius, 50.0),
            Point::new(50.0, 50.0 + radius),
            Point::new(50.0, 50.0 - radius),
            // Exactly on the circle via a 3-4-5 triangle (12² + 16² = 20²,
            // all exactly representable).
            Point::new(50.0 + 12.0, 50.0 + 16.0),
            Point::new(50.0 - 16.0, 50.0 - 12.0),
            // Just beyond the radius: must be excluded.
            Point::new(50.0 + radius + 1e-9, 50.0),
        ];
        let grid = HostGrid::build(bounds, cell, &positions);
        let mut hits = grid.within(&positions, q, radius, 0);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3, 4, 5, 6]);
    }

    /// Multi-ring scan: radius an exact multiple of the cell size, with
    /// the querier on the far edge of its cell — the worst case for an
    /// off-by-one in the `reach` ring.
    #[test]
    fn multi_ring_reach_covers_exact_multiples() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(200.0, 200.0));
        let cell = 10.0;
        for qx in [100.0, 109.0, 109.999999, 110.0] {
            let q = Point::new(qx, 100.0);
            for radius in [10.0, 30.0, 50.0] {
                // A peer exactly `radius` to the left/right of the query.
                let positions = vec![
                    q,
                    Point::new(qx - radius, 100.0),
                    Point::new(qx + radius, 100.0),
                ];
                let grid = HostGrid::build(bounds, cell, &positions);
                let mut hits = grid.within(&positions, q, radius, 0);
                hits.sort_unstable();
                assert_eq!(hits, vec![1, 2], "qx={qx} radius={radius}");
            }
        }
    }

    /// A randomized sweep of radius/cell ratios (including radius far
    /// larger than a cell) against the linear scan.
    #[test]
    fn multi_ring_matches_linear_scan() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(300.0, 300.0));
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..300)
            .map(|_| Point::new(next() * 300.0, next() * 300.0))
            .collect();
        for cell in [7.0, 20.0, 150.0] {
            let grid = HostGrid::build(bounds, cell, &positions);
            for (i, radius) in [3.0, 25.0, 90.0, 299.0].into_iter().enumerate() {
                let q = positions[i * 13];
                let mut fast = grid.within(&positions, q, radius, u32::MAX);
                let mut slow: Vec<u32> = positions
                    .iter()
                    .enumerate()
                    .filter(|&(_, p)| q.dist(*p) <= radius)
                    .map(|(j, _)| j as u32)
                    .collect();
                fast.sort_unstable();
                slow.sort_unstable();
                assert_eq!(fast, slow, "cell={cell} radius={radius}");
            }
        }
    }

    /// Rebuilding in place must be indistinguishable from building fresh,
    /// across geometry changes and shrinking host sets.
    #[test]
    fn rebuild_in_place_matches_fresh_build() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(500.0, 500.0));
        let mut s = 17u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut grid = HostGrid::build(bounds, 50.0, &[]);
        for round in 0..10 {
            let n = 50 + round * 37;
            let positions: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 500.0, next() * 500.0))
                .collect();
            // Alternate the cell size so both the fast path (same cell
            // count) and the resize path are exercised.
            let cell = if round % 2 == 0 { 50.0 } else { 80.0 };
            grid.rebuild(bounds, cell, &positions);
            let fresh = HostGrid::build(bounds, cell, &positions);
            for probe in 0..5 {
                let q = positions[probe * (n / 7).max(1) % n];
                let mut a = grid.within(&positions, q, 120.0, probe as u32);
                let mut b = fresh.within(&positions, q, 120.0, probe as u32);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "round {round}");
            }
        }
        // Shrink to empty and back: no stale hosts may survive.
        grid.rebuild(bounds, 50.0, &[]);
        assert!(grid
            .within(&[], Point::new(250.0, 250.0), 1000.0, u32::MAX)
            .is_empty());
        assert!(grid.is_empty());
    }

    /// `within_into` reuses the buffer and clears stale contents.
    #[test]
    fn within_into_reuses_buffer() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(10.0, 10.0), Point::new(15.0, 10.0)];
        let grid = HostGrid::build(bounds, 20.0, &positions);
        let mut buf = vec![42u32; 8];
        grid.within_into(&positions, positions[0], 10.0, 0, &mut buf);
        assert_eq!(buf, vec![1]);
        grid.within_into(&positions, Point::new(90.0, 90.0), 5.0, u32::MAX, &mut buf);
        assert!(buf.is_empty());
    }

    /// Moves that stay inside a cell touch nothing; boundary crossings
    /// edit exactly the two affected cell lists.
    #[test]
    fn apply_move_reports_boundary_crossings() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let mut positions = vec![Point::new(5.0, 5.0), Point::new(55.0, 55.0)];
        let mut grid = HostGrid::build(bounds, 10.0, &positions);
        // In-cell jitter: no boundary crossing.
        positions[0] = Point::new(9.0, 9.0);
        assert!(!grid.apply_move(0, positions[0]));
        // Crossing into the next cell over.
        positions[0] = Point::new(11.0, 9.0);
        assert!(grid.apply_move(0, positions[0]));
        let hits = grid.within(&positions, Point::new(11.0, 9.0), 1.0, u32::MAX);
        assert_eq!(hits, vec![0]);
        // The old cell no longer reports the host.
        assert!(grid
            .within(&positions, Point::new(5.0, 5.0), 3.0, u32::MAX)
            .is_empty());
    }

    /// Exact equality of the full query surface between an incrementally
    /// maintained grid and a fresh build: same hits in the same order.
    fn assert_equivalent(maintained: &HostGrid, positions: &[Point], bounds: Rect, cell: f64) {
        let fresh = HostGrid::build(bounds, cell, positions);
        assert_eq!(maintained.len(), positions.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        // Probe from every host plus a few fixed off-host points, at radii
        // below, at, and above the cell size (unsorted: order must match).
        let mut probes: Vec<Point> = positions.to_vec();
        probes.push(Point::new(0.0, 0.0));
        probes.push(Point::new(bounds.max.x / 2.0, bounds.max.y / 2.0));
        for (i, q) in probes.iter().enumerate() {
            for radius in [cell * 0.4, cell, cell * 2.5] {
                let exclude = if i < positions.len() {
                    i as u32
                } else {
                    u32::MAX
                };
                maintained.within_into(positions, *q, radius, exclude, &mut a);
                fresh.within_into(positions, *q, radius, exclude, &mut b);
                assert_eq!(a, b, "probe {i} radius {radius}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any interleaving of moves, inserts and removals leaves the
        /// maintained grid's `within_into` results identical — hits *and*
        /// order — to a fresh `HostGrid::build` over the same positions.
        /// Generated positions cluster near cell boundaries (multiples of
        /// the cell size ± small jitter) so boundary crossings dominate.
        #[test]
        fn incremental_maintenance_equals_fresh_build(
            seedlets in prop::collection::vec((0usize..3, 0.0..1.0f64, 0.0..1.0f64), 1..60),
            start in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..20),
        ) {
            let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
            let cell = 10.0;
            // Snap a coordinate toward the nearest cell boundary half the
            // time, so moves routinely land exactly on / just across one.
            let snap = |v: f64| {
                let b = (v / cell).round() * cell;
                if (v - b).abs() < 2.5 { b + (v - b) * 0.1 } else { v }
            };
            let mut positions: Vec<Point> =
                start.iter().map(|&(x, y)| Point::new(snap(x), snap(y))).collect();
            let mut grid = HostGrid::build(bounds, cell, &positions);
            for (op, u, v) in seedlets {
                match op {
                    // Move a host (boundary-biased target).
                    0 => {
                        let i = (u * positions.len() as f64) as usize % positions.len();
                        let new = Point::new(snap(v * 100.0), snap(u * 100.0));
                        positions[i] = new;
                        grid.apply_move(i as u32, new);
                    }
                    // Insert a new host.
                    1 => {
                        let new = Point::new(snap(u * 100.0), snap(v * 100.0));
                        let id = grid.insert(new);
                        prop_assert_eq!(id as usize, positions.len());
                        positions.push(new);
                    }
                    // Remove a host (swap-remove id semantics).
                    _ => {
                        if positions.len() > 1 {
                            let i = (u * positions.len() as f64) as usize % positions.len();
                            grid.remove_swap(i as u32);
                            positions.swap_remove(i);
                        }
                    }
                }
                assert_equivalent(&grid, &positions, bounds, cell);
            }
        }
    }
}
