//! Uniform-grid peer discovery.
//!
//! "Query moving object peers within the communication range" (Algorithm
//! 1, line 2): for every query we need the hosts within `Tx_Range` of the
//! querier. A uniform grid with cell size equal to the transmission range
//! reduces that to a 3×3 cell scan.
//!
//! The grid is rebuilt once per query batch and is read-only while the
//! batch executes, which is what lets the simulator fan queries out
//! across threads. [`HostGrid::rebuild`] reuses the cell vectors from the
//! previous batch (only occupied cells are cleared, tracked by a dirty
//! list) and [`HostGrid::within_into`] writes hits into a caller-owned
//! vector, so steady-state peer discovery performs no allocation at all.

use senn_geom::{Point, Rect};

/// A rebuild-per-batch uniform grid over host positions.
#[derive(Clone, Debug)]
pub struct HostGrid {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<u32>>,
    /// Indices of cells holding at least one host (cleared on rebuild).
    occupied: Vec<u32>,
    positions: Vec<Point>,
}

impl HostGrid {
    /// Builds the grid for the given host positions. `cell` should be the
    /// transmission range.
    pub fn build(bounds: Rect, cell: f64, positions: &[Point]) -> Self {
        let mut grid = HostGrid {
            bounds,
            cell: 1.0,
            cols: 0,
            rows: 0,
            cells: Vec::new(),
            occupied: Vec::new(),
            positions: Vec::new(),
        };
        grid.rebuild(bounds, cell, positions);
        grid
    }

    /// Rebuilds the grid in place for a new batch, reusing the existing
    /// cell vectors (and their capacity) whenever the geometry allows.
    pub fn rebuild(&mut self, bounds: Rect, cell: f64, positions: &[Point]) {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(!bounds.is_empty(), "area must be non-empty");
        let cols = (bounds.width() / cell).floor() as usize + 1;
        let rows = (bounds.height() / cell).floor() as usize + 1;
        if cols * rows == self.cols * self.rows {
            // Same cell count (the common steady-state case): clear only
            // the cells the previous batch touched.
            for &c in &self.occupied {
                self.cells[c as usize].clear();
            }
        } else {
            self.cells.clear();
            self.cells.resize(cols * rows, Vec::new());
        }
        self.bounds = bounds;
        self.cell = cell;
        self.cols = cols;
        self.rows = rows;
        self.occupied.clear();
        self.positions.clear();
        self.positions.extend_from_slice(positions);
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = Self::cell_of(bounds, cell, cols, rows, *p);
            let idx = cy * cols + cx;
            if self.cells[idx].is_empty() {
                self.occupied.push(idx as u32);
            }
            self.cells[idx].push(i as u32);
        }
    }

    /// The host-position snapshot the grid was built from, indexed by host
    /// id — the frozen view every query in a batch reads.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    fn cell_of(bounds: Rect, cell: f64, cols: usize, rows: usize, p: Point) -> (usize, usize) {
        let cx =
            (((p.x - bounds.min.x) / cell).floor() as isize).clamp(0, cols as isize - 1) as usize;
        let cy =
            (((p.y - bounds.min.y) / cell).floor() as isize).clamp(0, rows as isize - 1) as usize;
        (cx, cy)
    }

    /// Hosts (by index) within `radius` of `p`, excluding `exclude`.
    pub fn within(&self, p: Point, radius: f64, exclude: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_into(p, radius, exclude, &mut out);
        out
    }

    /// [`HostGrid::within`] writing hits into `out` (cleared first), so a
    /// per-worker buffer absorbs the allocation across queries.
    ///
    /// Hits are pushed in ascending cell order then insertion order, which
    /// is a pure function of the inputs — parallel callers see the same
    /// peer ordering the sequential path sees.
    pub fn within_into(&self, p: Point, radius: f64, exclude: u32, out: &mut Vec<u32>) {
        out.clear();
        let r2 = radius * radius;
        // Hosts clamped into edge cells sit arbitrarily far outside the
        // bounds, but clamping only ever moves a cell index *toward* the
        // query's clamped index, so a ring in clamped coordinates still
        // covers every candidate within `radius`.
        let reach = (radius / self.cell).ceil() as isize;
        let (cx, cy) = Self::cell_of(self.bounds, self.cell, self.cols, self.rows, p);
        for dy in -reach..=reach {
            let y = cy as isize + dy;
            if y < 0 || y >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let x = cx as isize + dx;
                if x < 0 || x >= self.cols as isize {
                    continue;
                }
                for &id in &self.cells[y as usize * self.cols + x as usize] {
                    if id != exclude && p.dist_sq(self.positions[id as usize]) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_linear_scan() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..500)
            .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
            .collect();
        let grid = HostGrid::build(bounds, 200.0, &positions);
        for probe in 0..50 {
            let q = positions[probe * 7 % positions.len()];
            let mut fast = grid.within(q, 200.0, probe as u32);
            let mut slow: Vec<u32> = positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| i as u32 != probe as u32 && q.dist(*p) <= 200.0)
                .map(|(i, _)| i as u32)
                .collect();
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn radius_larger_than_cell() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let grid = HostGrid::build(bounds, 10.0, &positions);
        let hits = grid.within(Point::new(50.0, 50.0), 80.0, u32::MAX);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn excludes_querier_and_out_of_range() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(12.0, 10.0),
            Point::new(99.0, 99.0),
        ];
        let grid = HostGrid::build(bounds, 20.0, &positions);
        let hits = grid.within(positions[0], 5.0, 0);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn positions_outside_bounds_are_clamped_not_lost() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(-5.0, 50.0)];
        let grid = HostGrid::build(bounds, 25.0, &positions);
        let hits = grid.within(Point::new(0.0, 50.0), 10.0, u32::MAX);
        assert_eq!(hits, vec![0]);
    }

    /// Hosts exactly on a cell boundary and exactly at distance `radius`
    /// must be found (the `<= r²` comparison and the ring reach both sit
    /// on the boundary here).
    #[test]
    fn boundary_hosts_at_exact_radius_are_found() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let cell = 10.0;
        // Querier at a cell corner; peers exactly `radius` away along the
        // axes and diagonals, each landing exactly on a cell boundary.
        let q = Point::new(50.0, 50.0);
        let radius = 20.0;
        let positions = vec![
            q,
            Point::new(50.0 + radius, 50.0),
            Point::new(50.0 - radius, 50.0),
            Point::new(50.0, 50.0 + radius),
            Point::new(50.0, 50.0 - radius),
            // Exactly on the circle via a 3-4-5 triangle (12² + 16² = 20²,
            // all exactly representable).
            Point::new(50.0 + 12.0, 50.0 + 16.0),
            Point::new(50.0 - 16.0, 50.0 - 12.0),
            // Just beyond the radius: must be excluded.
            Point::new(50.0 + radius + 1e-9, 50.0),
        ];
        let grid = HostGrid::build(bounds, cell, &positions);
        let mut hits = grid.within(q, radius, 0);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3, 4, 5, 6]);
    }

    /// Multi-ring scan: radius an exact multiple of the cell size, with
    /// the querier on the far edge of its cell — the worst case for an
    /// off-by-one in the `reach` ring.
    #[test]
    fn multi_ring_reach_covers_exact_multiples() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(200.0, 200.0));
        let cell = 10.0;
        for qx in [100.0, 109.0, 109.999999, 110.0] {
            let q = Point::new(qx, 100.0);
            for radius in [10.0, 30.0, 50.0] {
                // A peer exactly `radius` to the left/right of the query.
                let positions = vec![
                    q,
                    Point::new(qx - radius, 100.0),
                    Point::new(qx + radius, 100.0),
                ];
                let grid = HostGrid::build(bounds, cell, &positions);
                let mut hits = grid.within(q, radius, 0);
                hits.sort_unstable();
                assert_eq!(hits, vec![1, 2], "qx={qx} radius={radius}");
            }
        }
    }

    /// A randomized sweep of radius/cell ratios (including radius far
    /// larger than a cell) against the linear scan.
    #[test]
    fn multi_ring_matches_linear_scan() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(300.0, 300.0));
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..300)
            .map(|_| Point::new(next() * 300.0, next() * 300.0))
            .collect();
        for cell in [7.0, 20.0, 150.0] {
            let grid = HostGrid::build(bounds, cell, &positions);
            for (i, radius) in [3.0, 25.0, 90.0, 299.0].into_iter().enumerate() {
                let q = positions[i * 13];
                let mut fast = grid.within(q, radius, u32::MAX);
                let mut slow: Vec<u32> = positions
                    .iter()
                    .enumerate()
                    .filter(|&(_, p)| q.dist(*p) <= radius)
                    .map(|(j, _)| j as u32)
                    .collect();
                fast.sort_unstable();
                slow.sort_unstable();
                assert_eq!(fast, slow, "cell={cell} radius={radius}");
            }
        }
    }

    /// Rebuilding in place must be indistinguishable from building fresh,
    /// across geometry changes and shrinking host sets.
    #[test]
    fn rebuild_in_place_matches_fresh_build() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(500.0, 500.0));
        let mut s = 17u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut grid = HostGrid::build(bounds, 50.0, &[]);
        for round in 0..10 {
            let n = 50 + round * 37;
            let positions: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 500.0, next() * 500.0))
                .collect();
            // Alternate the cell size so both the fast path (same cell
            // count) and the resize path are exercised.
            let cell = if round % 2 == 0 { 50.0 } else { 80.0 };
            grid.rebuild(bounds, cell, &positions);
            let fresh = HostGrid::build(bounds, cell, &positions);
            for probe in 0..5 {
                let q = positions[probe * (n / 7).max(1) % n];
                let mut a = grid.within(q, 120.0, probe as u32);
                let mut b = fresh.within(q, 120.0, probe as u32);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "round {round}");
            }
        }
        // Shrink to empty and back: no stale hosts may survive.
        grid.rebuild(bounds, 50.0, &[]);
        assert!(grid
            .within(Point::new(250.0, 250.0), 1000.0, u32::MAX)
            .is_empty());
    }

    /// `within_into` reuses the buffer and clears stale contents.
    #[test]
    fn within_into_reuses_buffer() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(10.0, 10.0), Point::new(15.0, 10.0)];
        let grid = HostGrid::build(bounds, 20.0, &positions);
        let mut buf = vec![42u32; 8];
        grid.within_into(positions[0], 10.0, 0, &mut buf);
        assert_eq!(buf, vec![1]);
        grid.within_into(Point::new(90.0, 90.0), 5.0, u32::MAX, &mut buf);
        assert!(buf.is_empty());
    }
}
