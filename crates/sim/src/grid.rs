//! Uniform-grid peer discovery.
//!
//! "Query moving object peers within the communication range" (Algorithm
//! 1, line 2): for every query we need the hosts within `Tx_Range` of the
//! querier. A uniform grid with cell size equal to the transmission range
//! reduces that to a 3×3 cell scan.

use senn_geom::{Point, Rect};

/// A rebuild-per-batch uniform grid over host positions.
#[derive(Clone, Debug)]
pub struct HostGrid {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<u32>>,
    positions: Vec<Point>,
}

impl HostGrid {
    /// Builds the grid for the given host positions. `cell` should be the
    /// transmission range.
    pub fn build(bounds: Rect, cell: f64, positions: &[Point]) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(!bounds.is_empty(), "area must be non-empty");
        let cols = (bounds.width() / cell).floor() as usize + 1;
        let rows = (bounds.height() / cell).floor() as usize + 1;
        let mut cells = vec![Vec::new(); cols * rows];
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = Self::cell_of(bounds, cell, cols, rows, *p);
            cells[cy * cols + cx].push(i as u32);
        }
        HostGrid {
            bounds,
            cell,
            cols,
            rows,
            cells,
            positions: positions.to_vec(),
        }
    }

    fn cell_of(bounds: Rect, cell: f64, cols: usize, rows: usize, p: Point) -> (usize, usize) {
        let cx =
            (((p.x - bounds.min.x) / cell).floor() as isize).clamp(0, cols as isize - 1) as usize;
        let cy =
            (((p.y - bounds.min.y) / cell).floor() as isize).clamp(0, rows as isize - 1) as usize;
        (cx, cy)
    }

    /// Hosts (by index) within `radius` of `p`, excluding `exclude`.
    pub fn within(&self, p: Point, radius: f64, exclude: u32) -> Vec<u32> {
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as isize;
        let (cx, cy) = Self::cell_of(self.bounds, self.cell, self.cols, self.rows, p);
        let mut out = Vec::new();
        for dy in -reach..=reach {
            let y = cy as isize + dy;
            if y < 0 || y >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let x = cx as isize + dx;
                if x < 0 || x >= self.cols as isize {
                    continue;
                }
                for &id in &self.cells[y as usize * self.cols + x as usize] {
                    if id != exclude && p.dist_sq(self.positions[id as usize]) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_linear_scan() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(1000.0, 1000.0));
        let mut s = 5u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..500)
            .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
            .collect();
        let grid = HostGrid::build(bounds, 200.0, &positions);
        for probe in 0..50 {
            let q = positions[probe * 7 % positions.len()];
            let mut fast = grid.within(q, 200.0, probe as u32);
            let mut slow: Vec<u32> = positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| i as u32 != probe as u32 && q.dist(*p) <= 200.0)
                .map(|(i, _)| i as u32)
                .collect();
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn radius_larger_than_cell() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let grid = HostGrid::build(bounds, 10.0, &positions);
        let hits = grid.within(Point::new(50.0, 50.0), 80.0, u32::MAX);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn excludes_querier_and_out_of_range() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(12.0, 10.0),
            Point::new(99.0, 99.0),
        ];
        let grid = HostGrid::build(bounds, 20.0, &positions);
        let hits = grid.within(positions[0], 5.0, 0);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn positions_outside_bounds_are_clamped_not_lost() {
        let bounds = Rect::new(Point::ORIGIN, Point::new(100.0, 100.0));
        let positions = vec![Point::new(-5.0, 50.0)];
        let grid = HostGrid::build(bounds, 25.0, &positions);
        let hits = grid.within(Point::new(0.0, 50.0), 10.0, u32::MAX);
        assert_eq!(hits, vec![0]);
    }
}
