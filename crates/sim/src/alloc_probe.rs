//! Opt-in allocation-count probe for the simulator's per-interval
//! allocation budget.
//!
//! The simulator itself stays allocator-agnostic: a binary that owns a
//! counting `#[global_allocator]` (the perf gate does) can [`install`] a
//! sampler function once, and the run loop then records the allocation
//! delta of every interval into
//! [`BatchStats::allocations`](crate::BatchStats::allocations). Without a
//! probe, sampling returns 0 and the gauge stays 0 — instrumentation is
//! observation-only either way and can never perturb the simulation.

use std::sync::OnceLock;

static PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the process-wide allocation sampler (typically a closure over
/// a counting global allocator's event counter). The first call wins;
/// later calls are ignored and return `false`.
pub fn install(probe: fn() -> u64) -> bool {
    PROBE.set(probe).is_ok()
}

/// The current allocation count, or 0 when no probe is installed.
pub(crate) fn sample() -> u64 {
    PROBE.get().map_or(0, |probe| probe())
}

#[cfg(test)]
mod tests {
    // `install` is process-global, so the full install→sample→re-install
    // sequence lives in one test.
    #[test]
    fn uninstalled_probe_samples_zero_then_install_wins_once() {
        assert_eq!(super::sample(), 0);
        assert!(super::install(|| 7));
        assert_eq!(super::sample(), 7);
        assert!(!super::install(|| 9), "second install is ignored");
        assert_eq!(super::sample(), 7);
    }
}
