//! One function per table/figure of the paper's evaluation (Section 4).
//!
//! Every figure reports, for the three parameter sets, the percentage of
//! queries resolved by single-peer verification, multi-peer verification,
//! and the server, as one simulation parameter sweeps:
//!
//! | Figure | Sweep | Area |
//! |---|---|---|
//! | 9 / 10 | `Tx_Range` 20–200 m | 2×2 / 30×30 mi |
//! | 11 / 12 | `C_Size` 1–9 / 4–20 | 2×2 / 30×30 mi |
//! | 13 / 14 | `M_Velocity` 10–50 mph | 2×2 / 30×30 mi |
//! | 15 / 16 | `k` 1–9 / 3–15 | 2×2 / 30×30 mi |
//! | 17 | `k` 4–14: EINN vs INN page accesses | all parameter sets |
//! | §4.3 | road-network vs free-movement SQRR | both areas |
//!
//! County-scale (30×30-mile) scenarios are scaled down by a configurable
//! density-preserving divisor (see [`SimParams::scaled_down`]) so a full
//! sweep finishes in minutes; `ExpOptions { scale_30mi: 1.0, .. }`
//! reproduces the unscaled Table 4 worlds.

use crate::metrics::Metrics;
use crate::params::{ParamSet, SimParams};
use crate::simulator::{CachePolicy, MovementMode, SimConfig, Simulator};
use senn_core::multiple::RegionMethod;

/// Options shared by all experiment drivers.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Master seed.
    pub seed: u64,
    /// Density-preserving scale-down divisor for the 30×30-mile sets.
    pub scale_30mi: f64,
    /// Simulated hours for 2×2-mile runs (paper: 1).
    pub hours_2mi: f64,
    /// Simulated hours for 30×30-mile runs (paper: 5; default 1 to match
    /// the scaled world's faster warm-up).
    pub hours_30mi: f64,
    /// Independent replications per point (different seeds); counters are
    /// pooled, so reported rates are query-weighted means.
    pub reps: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 20060403,
            scale_30mi: 100.0,
            hours_2mi: 1.0,
            hours_30mi: 1.0,
            reps: 1,
        }
    }
}

impl ExpOptions {
    /// Tiny durations for smoke tests.
    pub fn quick() -> Self {
        ExpOptions {
            seed: 7,
            scale_30mi: 400.0,
            hours_2mi: 0.05,
            hours_30mi: 0.05,
            reps: 1,
        }
    }
}

/// One x-position of a query-mix figure.
#[derive(Clone, Copy, Debug)]
pub struct MixPoint {
    /// The swept parameter value (meters, items, mph or k).
    pub x: f64,
    /// Percent of queries solved by single-peer verification.
    pub single_pct: f64,
    /// Percent solved by multi-peer verification.
    pub multi_pct: f64,
    /// Percent solved by the server (the SQRR).
    pub server_pct: f64,
    /// Total queries behind this point.
    pub queries: u64,
}

/// One parameter set's series in a figure.
#[derive(Clone, Debug)]
pub struct MixSeries {
    /// Which county-derived parameter set the series belongs to.
    pub set: ParamSet,
    /// One point per swept x value.
    pub points: Vec<MixPoint>,
}

/// One x-position of the Figure 17 page-access comparison.
#[derive(Clone, Copy, Debug)]
pub struct PageAccessPoint {
    /// The fixed query k behind this point.
    pub k: usize,
    /// Mean R\*-tree node accesses per server query, EINN.
    pub einn: f64,
    /// Mean R\*-tree node accesses per server query, baseline INN.
    pub inn: f64,
    /// Server-bound queries behind this point.
    pub queries: u64,
}

/// Section 4.3's road-vs-free movement comparison entry.
#[derive(Clone, Copy, Debug)]
pub struct ModeComparison {
    /// Parameter set.
    pub set: ParamSet,
    /// Side of the simulated area in miles (after scaling).
    pub area_miles: f64,
    /// SQRR under road-network movement.
    pub road_sqrr: f64,
    /// SQRR under free movement.
    pub free_sqrr: f64,
}

fn base_params(opts: &ExpOptions, set: ParamSet, large: bool) -> SimParams {
    if large {
        let mut p = SimParams::thirty_by_thirty(set).scaled_down(opts.scale_30mi);
        p.t_execution_hours = opts.hours_30mi;
        p
    } else {
        let mut p = SimParams::two_by_two(set);
        p.t_execution_hours = opts.hours_2mi;
        p
    }
}

fn mix_point(x: f64, metrics: &Metrics) -> MixPoint {
    MixPoint {
        x,
        single_pct: metrics.single_peer_rate() * 100.0,
        multi_pct: metrics.multi_peer_rate() * 100.0,
        server_pct: metrics.sqrr() * 100.0,
        queries: metrics.queries,
    }
}

fn run_config_reps(mut cfg: SimConfig, reps: usize) -> Metrics {
    let mut total = Metrics::new();
    let base = cfg.seed;
    for r in 0..reps.max(1) {
        cfg.seed = base.wrapping_add(r as u64 * 7919);
        total.merge(&Simulator::new(cfg).run());
    }
    total
}

/// Shared sweep driver: mutate the config per x value, run, collect.
fn sweep<F>(opts: &ExpOptions, large: bool, xs: &[f64], mut tweak: F) -> Vec<MixSeries>
where
    F: FnMut(&mut SimConfig, f64),
{
    ParamSet::ALL
        .iter()
        .map(|&set| {
            let points = xs
                .iter()
                .map(|&x| {
                    let mut cfg = SimConfig::new(base_params(opts, set, large), opts.seed);
                    cfg.compare_inn = false; // mix figures don't need the shadow INN
                    tweak(&mut cfg, x);
                    mix_point(x, &run_config_reps(cfg, opts.reps))
                })
                .collect();
            MixSeries { set, points }
        })
        .collect()
}

/// The transmission-range x values of Figures 9/10 (meters).
pub const TX_RANGE_SWEEP: [f64; 10] = [
    20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0,
];

/// Figure 9: query mix vs transmission range, 2×2-mile area.
pub fn fig9(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, false, &TX_RANGE_SWEEP, |cfg, x| {
        cfg.params.tx_range_m = x
    })
}

/// Figure 10: query mix vs transmission range, 30×30-mile area.
pub fn fig10(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, true, &TX_RANGE_SWEEP, |cfg, x| {
        cfg.params.tx_range_m = x
    })
}

/// Figure 11: query mix vs cache capacity (1–9 items), 2×2-mile area.
pub fn fig11(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, false, &[1.0, 3.0, 5.0, 7.0, 9.0], |cfg, x| {
        cfg.params.c_size = x as usize
    })
}

/// Figure 12: query mix vs cache capacity (4–20 items), 30×30-mile area.
pub fn fig12(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, true, &[4.0, 8.0, 12.0, 16.0, 20.0], |cfg, x| {
        cfg.params.c_size = x as usize
    })
}

/// The velocity x values of Figures 13/14 (mph).
pub const VELOCITY_SWEEP: [f64; 9] = [10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

/// Figure 13: query mix vs movement velocity, 2×2-mile area.
pub fn fig13(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, false, &VELOCITY_SWEEP, |cfg, x| {
        cfg.params.m_velocity_mph = x
    })
}

/// Figure 14: query mix vs movement velocity, 30×30-mile area.
pub fn fig14(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, true, &VELOCITY_SWEEP, |cfg, x| {
        cfg.params.m_velocity_mph = x
    })
}

/// Figure 15: query mix vs k, 2×2-mile area. The paper "chose k randomly
/// for each host and each query in the range from 1 to 9", so each x is
/// the upper end of a uniform k range.
pub fn fig15(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, false, &[1.0, 3.0, 5.0, 7.0, 9.0], |cfg, x| {
        cfg.k_choice = crate::simulator::KChoice::Uniform(1, x as usize)
    })
}

/// Figure 16: query mix vs k (range 3..x), 30×30-mile area.
pub fn fig16(opts: &ExpOptions) -> Vec<MixSeries> {
    sweep(opts, true, &[3.0, 6.0, 9.0, 12.0, 15.0], |cfg, x| {
        cfg.k_choice = crate::simulator::KChoice::Uniform(3, x as usize)
    })
}

/// Figure 17: EINN vs INN page accesses per query as a function of k, for
/// all three parameter sets (30×30-mile worlds).
pub fn fig17(opts: &ExpOptions) -> Vec<(ParamSet, Vec<PageAccessPoint>)> {
    ParamSet::ALL
        .iter()
        .map(|&set| {
            let points = [4usize, 6, 8, 10, 12, 14]
                .iter()
                .map(|&k| {
                    let mut cfg = SimConfig::new(base_params(opts, set, true), opts.seed);
                    cfg.k_choice = crate::simulator::KChoice::Fixed(k);
                    cfg.compare_inn = true;
                    let m = run_config_reps(cfg, opts.reps);
                    PageAccessPoint {
                        k,
                        einn: m.einn_pages_per_query(),
                        inn: m.inn_pages_per_query(),
                        queries: m.server,
                    }
                })
                .collect();
            (set, points)
        })
        .collect()
}

/// One row of the design-choice ablation study.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Human-readable variant name.
    pub variant: String,
    /// Percent solved by single-peer verification.
    pub single_pct: f64,
    /// Percent solved by multi-peer verification.
    pub multi_pct: f64,
    /// Percent solved by the server.
    pub server_pct: f64,
}

/// Ablation of the design choices DESIGN.md calls out, on the 2×2-mile
/// Los Angeles world: certain-region representation (polygon vertex count
/// vs exact arcs) and host cache policy (most-recent vs LRU).
pub fn ablation(opts: &ExpOptions) -> Vec<AblationRow> {
    type Tweak = Box<dyn Fn(&mut SimConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        (
            "baseline (24-gon, most-recent)",
            Box::new(|_: &mut SimConfig| {}),
        ),
        (
            "region: 8-gon polygonization",
            Box::new(|cfg| cfg.region_method = RegionMethod::Polygonized { vertices: 8 }),
        ),
        (
            "region: exact arc arrangement",
            Box::new(|cfg| cfg.region_method = RegionMethod::Exact),
        ),
        (
            "cache: LRU multi-entry",
            Box::new(|cfg| cfg.cache_policy = CachePolicy::Lru),
        ),
    ];
    variants
        .into_iter()
        .map(|(name, tweak)| {
            let mut cfg = SimConfig::new(base_params(opts, ParamSet::LosAngeles, false), opts.seed);
            cfg.compare_inn = false;
            tweak(&mut cfg);
            let m = run_config_reps(cfg, opts.reps);
            AblationRow {
                variant: name.to_string(),
                single_pct: m.single_peer_rate() * 100.0,
                multi_pct: m.multi_peer_rate() * 100.0,
                server_pct: m.sqrr() * 100.0,
            }
        })
        .collect()
}

/// One row of the accept-uncertain quality study.
#[derive(Clone, Debug)]
pub struct UncertainQualityRow {
    /// Parameter set.
    pub set: ParamSet,
    /// Percent of queries answered with an accepted-uncertain set.
    pub accepted_pct: f64,
    /// Percent of queries still going to the server.
    pub server_pct: f64,
    /// Of the accepted answers, the fraction that exactly equaled the
    /// true kNN set.
    pub exact_rate: f64,
    /// Mean relative distance inflation of the accepted answers.
    pub mean_inflation: f64,
}

/// Extension study: what does accepting uncertain answers (Algorithm 1,
/// line 15) buy, and what does it cost in answer quality? Runs the 2×2
/// worlds with `accept_uncertain` on and grades every accepted answer
/// against ground truth.
pub fn uncertain_quality(opts: &ExpOptions) -> Vec<UncertainQualityRow> {
    ParamSet::ALL
        .iter()
        .map(|&set| {
            let mut cfg = SimConfig::new(base_params(opts, set, false), opts.seed);
            cfg.accept_uncertain = true;
            cfg.compare_inn = false;
            let m = run_config_reps(cfg, opts.reps);
            UncertainQualityRow {
                set,
                accepted_pct: 100.0 * m.accepted_uncertain as f64 / m.queries.max(1) as f64,
                server_pct: m.sqrr() * 100.0,
                exact_rate: m.uncertain_exact_rate(),
                mean_inflation: m.uncertain_mean_inflation(),
            }
        })
        .collect()
}

/// One x-position of the P2P overhead study.
#[derive(Clone, Copy, Debug)]
pub struct OverheadPoint {
    /// Transmission range in meters.
    pub tx_range_m: f64,
    /// Mean peer cache entries received per query (messages).
    pub entries_per_query: f64,
    /// Mean cached NN records received per query (payload volume).
    pub records_per_query: f64,
    /// Server share of queries (what the overhead buys down).
    pub server_pct: f64,
}

/// Extension study: the P2P communication overhead the paper names as the
/// technique's disadvantage, as a function of transmission range (LA 2×2).
/// Shows the trade: more range → more cache entries over the air → fewer
/// server round-trips.
pub fn overhead(opts: &ExpOptions) -> Vec<OverheadPoint> {
    TX_RANGE_SWEEP
        .iter()
        .map(|&tx| {
            let mut cfg = SimConfig::new(base_params(opts, ParamSet::LosAngeles, false), opts.seed);
            cfg.params.tx_range_m = tx;
            cfg.compare_inn = false;
            let m = run_config_reps(cfg, opts.reps);
            OverheadPoint {
                tx_range_m: tx,
                entries_per_query: m.peer_entries_per_query(),
                records_per_query: m.peer_records_per_query(),
                server_pct: m.sqrr() * 100.0,
            }
        })
        .collect()
}

/// One row of the POI-churn / cache-staleness study.
#[derive(Clone, Debug)]
pub struct StalenessRow {
    /// Expected POI relocations per simulated hour.
    pub churn_per_hour: f64,
    /// Cache TTL in seconds (`None` = no invalidation).
    pub ttl_secs: Option<f64>,
    /// Server share of queries.
    pub server_pct: f64,
    /// Fraction of peer-resolved answers that no longer match ground
    /// truth (stale caches certifying outdated objects).
    pub stale_pct: f64,
}

/// Extension study: the paper assumes static POIs and honest caches; this
/// measures what POI churn does to answer correctness, with and without
/// TTL invalidation (LA 2×2 world).
pub fn staleness(opts: &ExpOptions) -> Vec<StalenessRow> {
    let mut out = Vec::new();
    // Churn rates chosen relative to the 16-POI world: 2/h relocates each
    // POI every ~8 hours, 32/h every ~30 minutes.
    for churn in [0.0f64, 2.0, 8.0, 32.0] {
        for ttl in [None, Some(300.0)] {
            if churn == 0.0 && ttl.is_some() {
                continue; // TTL is irrelevant without churn
            }
            let mut cfg = SimConfig::new(base_params(opts, ParamSet::LosAngeles, false), opts.seed);
            cfg.poi_churn_per_hour = churn;
            cfg.cache_ttl_secs = ttl;
            cfg.compare_inn = false;
            let m = run_config_reps(cfg, opts.reps);
            out.push(StalenessRow {
                churn_per_hour: churn,
                ttl_secs: ttl,
                server_pct: m.sqrr() * 100.0,
                stale_pct: m.stale_answer_rate() * 100.0,
            });
        }
    }
    out
}

/// Section 4.3: SQRR under road-network vs free movement, both areas.
pub fn free_movement_comparison(opts: &ExpOptions) -> Vec<ModeComparison> {
    let mut out = Vec::new();
    for large in [false, true] {
        for &set in &ParamSet::ALL {
            let run_mode = |mode| {
                let mut cfg = SimConfig::new(base_params(opts, set, large), opts.seed);
                cfg.mode = mode;
                cfg.compare_inn = false;
                run_config_reps(cfg, opts.reps).sqrr()
            };
            out.push(ModeComparison {
                set,
                area_miles: base_params(opts, set, large).area_miles,
                road_sqrr: run_mode(MovementMode::RoadNetwork),
                free_sqrr: run_mode(MovementMode::FreeMovement),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig9_has_all_series_and_points() {
        let mut opts = ExpOptions::quick();
        opts.hours_2mi = 0.03;
        let series = sweep(&opts, false, &[50.0, 200.0], |cfg, x| {
            cfg.params.tx_range_m = x
        });
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            for p in &s.points {
                let total = p.single_pct + p.multi_pct + p.server_pct;
                assert!(
                    p.queries == 0 || (total - 100.0).abs() < 1e-6,
                    "mix percentages sum to 100 (got {total})"
                );
            }
        }
    }

    #[test]
    fn transmission_range_helps_in_dense_set() {
        // The headline effect (Fig. 9a): more range → lower SQRR in LA.
        let mut opts = ExpOptions::quick();
        opts.hours_2mi = 0.2;
        let series = sweep(&opts, false, &[20.0, 200.0], |cfg, x| {
            cfg.params.tx_range_m = x
        });
        let la = &series[0];
        assert_eq!(la.set, ParamSet::LosAngeles);
        assert!(
            la.points[1].server_pct <= la.points[0].server_pct,
            "SQRR at 200m ({:.1}) must not exceed SQRR at 20m ({:.1})",
            la.points[1].server_pct,
            la.points[0].server_pct
        );
    }

    #[test]
    fn fig17_quick_einn_beats_inn() {
        let opts = ExpOptions::quick();
        let data = fig17(&opts);
        assert_eq!(data.len(), 3);
        for (_, points) in &data {
            for p in points {
                if p.queries > 0 {
                    assert!(p.einn <= p.inn + 1e-9, "EINN {} vs INN {}", p.einn, p.inn);
                }
            }
        }
    }
}
