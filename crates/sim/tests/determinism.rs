//! The parallel batch engine must be a pure optimization: for any seed,
//! movement mode and cache policy, fanning a batch across worker threads
//! must produce **bit-identical** metrics to the sequential path.
//!
//! This is the contract that makes the `parallel` feature safe to leave on
//! by default — experiments stay reproducible from the seed alone, no
//! matter the core count of the machine that ran them.
#![cfg(feature = "parallel")]

use senn_sim::{CachePolicy, Metrics, MovementMode, ParamSet, SimConfig, SimParams, Simulator};

fn run_with_threads(mut cfg: SimConfig, threads: usize) -> Metrics {
    cfg.threads = Some(threads);
    Simulator::new(cfg).run()
}

fn assert_identical(seq: &Metrics, par: &Metrics, label: &str) {
    assert_eq!(seq, par, "{label}: parallel metrics diverged");
    // `Metrics: PartialEq` already compares the f64 sum by value; pin the
    // stronger bit-level claim explicitly.
    assert_eq!(
        seq.uncertain_inflation_sum.to_bits(),
        par.uncertain_inflation_sum.to_bits(),
        "{label}: f64 accumulation order leaked into the inflation sum"
    );
}

#[test]
fn parallel_metrics_match_sequential_across_seeds_modes_and_policies() {
    for seed in [1u64, 7, 42] {
        for mode in [MovementMode::RoadNetwork, MovementMode::FreeMovement] {
            for policy in [CachePolicy::MostRecent, CachePolicy::Lru] {
                let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
                params.t_execution_hours = 0.05;
                let mut cfg = SimConfig::new(params, seed);
                cfg.mode = mode;
                cfg.cache_policy = policy;
                let label = format!("seed={seed} mode={mode:?} policy={policy:?}");
                let seq = run_with_threads(cfg, 1);
                assert!(seq.queries > 0, "{label}: empty run proves nothing");
                for threads in [2, 4, 7] {
                    let par = run_with_threads(cfg, threads);
                    assert_identical(&seq, &par, &format!("{label} threads={threads}"));
                }
            }
        }
    }
}

/// The uncertain-answer grading path accumulates an `f64` sum per query —
/// the most order-sensitive metric. Exercise it explicitly together with
/// POI churn and TTL invalidation.
#[test]
fn parallel_metrics_match_with_uncertainty_churn_and_ttl() {
    let mut params = SimParams::two_by_two(ParamSet::Riverside);
    params.t_execution_hours = 0.1;
    let mut cfg = SimConfig::new(params, 1234);
    cfg.accept_uncertain = true;
    cfg.poi_churn_per_hour = 16.0;
    cfg.cache_ttl_secs = Some(240.0);
    let seq = run_with_threads(cfg, 1);
    assert!(seq.queries > 0);
    for threads in [3, 8] {
        let par = run_with_threads(cfg, threads);
        assert_identical(&seq, &par, &format!("uncertain/churn threads={threads}"));
    }
}
