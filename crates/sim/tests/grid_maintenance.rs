//! Incremental grid maintenance must be a pure optimization: for any
//! seed, movement mode and cache policy, running the peer-discovery grid
//! with move-only edits (`GridMaintenance::Incremental`, the default)
//! must produce **bit-identical** metrics to rebuilding the grid from
//! scratch every batch (`GridMaintenance::Rebuild`, the pre-refactor
//! behavior) — and the combination with the parallel batch engine must
//! not change that.
//!
//! The underlying invariant lives in `grid.rs` (every cell list stays
//! sorted ascending by host id, so the incremental grid is
//! element-for-element identical to a fresh build); these tests pin the
//! end-to-end consequence on the whole simulator.

use senn_sim::{
    CachePolicy, GridMaintenance, Metrics, MovementMode, ParamSet, SimConfig, SimParams, Simulator,
};

fn run_with(mut cfg: SimConfig, maintenance: GridMaintenance) -> Metrics {
    cfg.grid_maintenance = maintenance;
    Simulator::new(cfg).run()
}

fn assert_identical(a: &Metrics, b: &Metrics, label: &str) {
    assert_eq!(a, b, "{label}: grid maintenance mode leaked into metrics");
    assert_eq!(
        a.uncertain_inflation_sum.to_bits(),
        b.uncertain_inflation_sum.to_bits(),
        "{label}: f64 accumulation diverged"
    );
}

#[test]
fn incremental_matches_rebuild_across_seeds_modes_and_policies() {
    for seed in [1u64, 7, 42] {
        for mode in [MovementMode::RoadNetwork, MovementMode::FreeMovement] {
            for policy in [CachePolicy::MostRecent, CachePolicy::Lru] {
                let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
                params.t_execution_hours = 0.05;
                let mut cfg = SimConfig::new(params, seed);
                cfg.mode = mode;
                cfg.cache_policy = policy;
                let label = format!("seed={seed} mode={mode:?} policy={policy:?}");
                let incr = run_with(cfg, GridMaintenance::Incremental);
                assert!(incr.queries > 0, "{label}: empty run proves nothing");
                let rebuild = run_with(cfg, GridMaintenance::Rebuild);
                assert_identical(&incr, &rebuild, &label);
            }
        }
    }
}

/// Churn + TTL stress the cache side table (stores, expiry filtering) —
/// the sparse column the refactor introduced — while both maintenance
/// modes run.
#[test]
fn incremental_matches_rebuild_under_churn_and_ttl() {
    let mut params = SimParams::two_by_two(ParamSet::Riverside);
    params.t_execution_hours = 0.1;
    let mut cfg = SimConfig::new(params, 1234);
    cfg.poi_churn_per_hour = 16.0;
    cfg.cache_ttl_secs = Some(240.0);
    let incr = run_with(cfg, GridMaintenance::Incremental);
    let rebuild = run_with(cfg, GridMaintenance::Rebuild);
    assert!(incr.queries > 0);
    assert_identical(&incr, &rebuild, "churn+ttl");
}

/// Maintenance mode × thread count: all four combinations agree, so the
/// incremental path composes with the parallel engine's determinism
/// contract.
#[cfg(feature = "parallel")]
#[test]
fn maintenance_mode_is_orthogonal_to_thread_count() {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05;
    let base = SimConfig::new(params, 99);
    let mut reference: Option<Metrics> = None;
    for maintenance in [GridMaintenance::Incremental, GridMaintenance::Rebuild] {
        for threads in [1usize, 2] {
            let mut cfg = base;
            cfg.threads = Some(threads);
            let m = run_with(cfg, maintenance);
            match &reference {
                None => {
                    assert!(m.queries > 0);
                    reference = Some(m);
                }
                Some(r) => {
                    assert_identical(r, &m, &format!("{maintenance:?} threads={threads}"));
                }
            }
        }
    }
}

/// The movement pass only visits movers, so the incremental stats must
/// show cell moves under the default mode and none under rebuild.
#[test]
fn batch_stats_expose_grid_cell_moves() {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05;
    let cfg = SimConfig::new(params, 5);

    let mut incr = Simulator::new(cfg);
    incr.run();
    assert!(
        incr.batch_stats().grid_cell_moves > 0,
        "a 3-minute LA run must cross cell boundaries"
    );

    let mut cfg_rebuild = cfg;
    cfg_rebuild.grid_maintenance = GridMaintenance::Rebuild;
    let mut rebuild = Simulator::new(cfg_rebuild);
    rebuild.run();
    assert_eq!(
        rebuild.batch_stats().grid_cell_moves,
        0,
        "rebuild mode performs no incremental edits"
    );
}
