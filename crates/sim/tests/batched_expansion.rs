//! Interval-batched SNNN expansion is a pure submission-layout change.
//!
//! PR 5's tentpole coalesces all eligible queries' same-round residuals
//! into one `ServerRequest` batch per interval instead of one service
//! submission per query-round. Because the fault service draws each
//! request's fate from `(seed, request id, per-id attempt ordinal)` —
//! never from batch composition — the two layouts must be
//! observationally identical. This suite pins that claim:
//!
//! * batched and per-query runs produce **bit-identical whole
//!   [`Metrics`]**, fault-free and under a seeded lossy service;
//! * the equality holds across 1/2 worker threads × 1/3 server shards;
//! * batching collapses service submissions by at least 2× on the
//!   golden workload while executing the same number of rounds;
//! * the golden attribution pinned since PR 4 survives both layouts.

use senn_sim::{FaultConfig, Metrics, NetworkModelKind, ParamSet, SimConfig, SimParams, Simulator};

fn base(seed: u64) -> SimConfig {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    SimConfig::new(params, seed)
}

/// Runs and returns `(metrics, snnn_rounds, snnn_submissions)`.
fn run(cfg: SimConfig) -> (Metrics, u64, u64) {
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    let stats = sim.batch_stats();
    (m, stats.snnn_rounds, stats.snnn_submissions)
}

#[test]
fn batched_and_per_query_metrics_are_bit_identical_fault_free() {
    for kind in [
        NetworkModelKind::AStar,
        NetworkModelKind::Alt { landmarks: 4 },
        NetworkModelKind::TimeDependent { start_hour: 8.0 },
    ] {
        let mk = |batched: bool| {
            base(42)
                .to_builder()
                .distance_model(kind)
                .expansion_batching(batched)
                .build()
        };
        let (batched, rounds_b, subs_b) = run(mk(true));
        let (per_query, rounds_q, subs_q) = run(mk(false));
        assert_eq!(batched, per_query, "{kind:?}: layouts diverged");
        assert_eq!(rounds_b, rounds_q, "{kind:?}: round counts diverged");
        assert!(
            subs_b <= subs_q,
            "{kind:?}: batching submitted more ({subs_b}) than per-query ({subs_q})"
        );
    }
}

#[test]
fn batched_and_per_query_metrics_are_bit_identical_under_faults() {
    // The keyed fault schedule is a pure function of (seed, request id,
    // per-id attempt ordinal); both layouts submit the same per-id
    // request history, so even a lossy service cannot tell them apart.
    let mk = |batched: bool| {
        base(7)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .fault(FaultConfig::lossy(99))
            .expansion_batching(batched)
            .build()
    };
    let (batched, rounds_b, _) = run(mk(true));
    let (per_query, rounds_q, _) = run(mk(false));
    assert!(
        batched.server_retries > 0,
        "lossy config exercised no retries — the test proves nothing"
    );
    assert_eq!(
        batched, per_query,
        "fault schedules diverged across layouts"
    );
    assert_eq!(rounds_b, rounds_q);
}

#[test]
fn layout_equality_holds_across_threads_and_shards() {
    let mk = |batched: bool, threads: usize, shards: usize| {
        base(11)
            .to_builder()
            .distance_model(NetworkModelKind::Alt { landmarks: 4 })
            .fault(FaultConfig::lossy(5))
            .threads(threads)
            .server_shards(shards)
            .expansion_batching(batched)
            .build()
    };
    let reference = run(mk(true, 1, 1));
    for threads in [1usize, 2] {
        for shards in [1usize, 2, 3] {
            let batched = run(mk(true, threads, shards));
            let per_query = run(mk(false, threads, shards));
            assert_eq!(
                (batched.0.clone(), batched.1),
                (per_query.0.clone(), per_query.1),
                "layouts diverged at {threads} threads x {shards} shards"
            );
            assert_eq!(
                (batched.0, batched.1),
                (reference.0.clone(), reference.1),
                "{threads} threads x {shards} shards drifted from 1x1"
            );
        }
    }
}

#[test]
fn batching_collapses_submissions_at_least_two_fold() {
    // Per-query: one submission per query-round that needs the server.
    // Batched: one submission per interval-round with any residual. On
    // the golden workload (many concurrent queries per interval) that
    // is well over the 2x the acceptance gate demands.
    let mk = |batched: bool| {
        base(42)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .expansion_batching(batched)
            .build()
    };
    let (_, rounds_b, subs_batched) = run(mk(true));
    let (_, rounds_q, subs_per_query) = run(mk(false));
    assert_eq!(rounds_b, rounds_q, "layouts must execute the same rounds");
    assert!(subs_batched > 0, "the golden workload reaches the server");
    assert!(
        subs_per_query >= 2 * subs_batched,
        "expected >=2x collapse, got {subs_per_query} -> {subs_batched}"
    );
}

#[test]
fn golden_attribution_is_pinned_in_both_layouts() {
    // Same pin as network_mode.rs's golden test: seed 42, LA 2x2, A*.
    // Batching must not move a single query between resolution classes.
    for batched in [true, false] {
        let (m, rounds, _) = run(base(42)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .expansion_batching(batched)
            .build());
        let golden = [
            ("queries", m.queries),
            ("single_peer", m.single_peer),
            ("multi_peer", m.multi_peer),
            ("server", m.server),
            ("einn_accesses", m.einn_accesses),
            ("inn_accesses", m.inn_accesses),
            ("snnn_rounds", rounds),
        ];
        assert_eq!(
            golden,
            [
                ("queries", 65),
                ("single_peer", 17),
                ("multi_peer", 0),
                ("server", 48),
                ("einn_accesses", 193),
                ("inn_accesses", 194),
                ("snnn_rounds", 200),
            ],
            "golden drifted with expansion_batching({batched})"
        );
    }
}
