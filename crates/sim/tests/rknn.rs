//! Reverse-kNN workload equivalence: the batched [`Simulator::run_rknn`]
//! driver versus the brute-force oracle, id for id.
//!
//! The driver answers "which hosts rank POI `p` in their top-k?" with at
//! most one service request per host, pruning (query, host) pairs the
//! hosts' cached-kNN radii prove non-members. This suite pins:
//!
//! * membership lists **identical to [`rknn_bruteforce`]** — a linear
//!   scan over the ground-truth POI mirror — on a freshly warmed world,
//!   with the cache prune demonstrably engaged;
//! * invariance across 1/2 worker threads × 1/3 server shards (the
//!   verification requests ride the same keyed service seam as every
//!   residual);
//! * three-seed golden pins of the whole accounting, in the style of
//!   `transport_mode.rs`.

use senn_sim::{
    rknn_bruteforce, NetworkModelKind, ParamSet, RknnQuery, SimConfig, SimParams, Simulator,
};

fn tiny_params() -> SimParams {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    params
}

/// A warmed simulator: the run populates host caches, which is what makes
/// the cache-radius prune bite.
fn warmed(seed: u64, threads: usize, shards: usize) -> Simulator {
    let cfg = SimConfig::new(tiny_params(), seed)
        .to_builder()
        .threads(threads)
        .server_shards(shards)
        .build();
    let mut sim = Simulator::new(cfg);
    sim.run();
    sim
}

/// Every POI asks for its reverse k-NN members, k cycling over 1..=3.
fn queries_for(sim: &Simulator) -> Vec<RknnQuery> {
    sim.poi_positions()
        .iter()
        .enumerate()
        .map(|(id, &p)| RknnQuery {
            id: id as u64,
            poi_id: id as u64,
            position: p,
            k: 1 + id % 3,
        })
        .collect()
}

fn poi_world(sim: &Simulator) -> Vec<(u64, senn_geom::Point)> {
    sim.poi_positions()
        .iter()
        .enumerate()
        .map(|(id, &p)| (id as u64, p))
        .collect()
}

#[test]
fn batched_driver_matches_bruteforce_oracle() {
    let mut sim = warmed(42, 1, 1);
    let queries = queries_for(&sim);
    let hosts = sim.rknn_hosts();
    let batch = sim.run_rknn(&queries);
    let oracle = rknn_bruteforce(&queries, &hosts, &poi_world(&sim));
    assert_eq!(batch.outcomes, oracle, "driver diverged from brute force");
    assert!(batch.stats.members > 0, "nobody ranked anybody — vacuous");
    assert!(
        batch.stats.cache_pruned > 0,
        "warmed caches must prune some pairs, or the prune is untested"
    );
    assert!(
        batch.stats.verified_hosts < hosts.len() as u64 * queries.len() as u64,
        "one request per host, never per pair"
    );
    assert_eq!(batch.stats.failed_hosts, 0, "fault-free service");
}

#[test]
fn memberships_are_invariant_to_threads_and_shards() {
    let reference = {
        let mut sim = warmed(7, 1, 1);
        let queries = queries_for(&sim);
        sim.run_rknn(&queries)
    };
    for threads in [1usize, 2] {
        for shards in [1usize, 3] {
            let mut sim = warmed(7, threads, shards);
            let queries = queries_for(&sim);
            let batch = sim.run_rknn(&queries);
            assert_eq!(
                batch.outcomes, reference.outcomes,
                "members diverged at threads={threads} shards={shards}"
            );
            assert_eq!(
                batch.stats, reference.stats,
                "accounting diverged at threads={threads} shards={shards}"
            );
        }
    }
}

#[test]
fn rknn_works_in_network_mode_too() {
    // The driver is mode-agnostic: a road-network SNNN world answers the
    // same bichromatic question over the same service seam.
    let cfg = SimConfig::new(tiny_params(), 42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .build();
    let mut sim = Simulator::new(cfg);
    sim.run();
    let queries = queries_for(&sim);
    let hosts = sim.rknn_hosts();
    let batch = sim.run_rknn(&queries);
    let oracle = rknn_bruteforce(&queries, &hosts, &poi_world(&sim));
    assert_eq!(batch.outcomes, oracle);
}

#[test]
fn rknn_metrics_counters_fold_the_batch() {
    let mut sim = warmed(42, 1, 1);
    let queries = queries_for(&sim);
    let batch = sim.run_rknn(&queries);
    let m = sim.metrics();
    assert_eq!(m.rknn_queries, batch.stats.queries);
    assert_eq!(m.rknn_pairs, batch.stats.pairs);
    assert_eq!(m.rknn_cache_pruned, batch.stats.cache_pruned);
    assert_eq!(m.rknn_verified_hosts, batch.stats.verified_hosts);
    assert_eq!(m.rknn_failed_hosts, batch.stats.failed_hosts);
    assert_eq!(m.rknn_members, batch.stats.members);
}

#[test]
fn rknn_goldens_are_pinned_for_three_seeds() {
    // (seed, [queries, pairs, cache_pruned, verified_hosts, members]).
    let goldens: [(u64, [u64; 5]); 3] = [
        (1, [16, 7408, 899, 463, 1065]),
        (2, [16, 7408, 762, 463, 877]),
        (3, [16, 7408, 751, 463, 863]),
    ];
    for (seed, want) in goldens {
        let mut sim = warmed(seed, 1, 1);
        let queries = queries_for(&sim);
        let batch = sim.run_rknn(&queries);
        let got = [
            batch.stats.queries,
            batch.stats.pairs,
            batch.stats.cache_pruned,
            batch.stats.verified_hosts,
            batch.stats.members,
        ];
        assert_eq!(got, want, "reverse-kNN golden moved at seed {seed}");
    }
}
