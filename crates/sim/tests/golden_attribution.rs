//! Golden attribution tests: fixed-seed scenarios asserting the staged
//! query pipeline reproduces the exact pre-refactor `Resolution`
//! attribution counts and bit-identical `Metrics`.
//!
//! The expected numbers were captured from the pre-pipeline simulator
//! (ad-hoc `SennEngine::query` internals, monolithic `simulator.rs`) and
//! pin every counter the refactor was required to preserve — including the
//! `f64` inflation sum compared by bit pattern. If any of these move, the
//! pipeline is no longer a pure refactor of Algorithm 1's control flow.

use senn_sim::{CachePolicy, Metrics, MovementMode, ParamSet, SimConfig, SimParams, Simulator};

struct Golden {
    queries: u64,
    single_peer: u64,
    multi_peer: u64,
    accepted_uncertain: u64,
    server: u64,
    einn_accesses: u64,
    inn_accesses: u64,
    peer_entries_received: u64,
    peer_records_received: u64,
    heap_states: [u64; 6],
    peer_answers_graded: u64,
    peer_answers_wrong: u64,
    uncertain_exact: u64,
    uncertain_inflation_bits: u64,
    /// `(k, queries, einn_accesses, inn_accesses)` rows of `per_k`.
    per_k: &'static [(usize, u64, u64, u64)],
}

fn check(label: &str, m: &Metrics, want: &Golden) {
    assert_eq!(m.queries, want.queries, "{label}: queries");
    assert_eq!(m.single_peer, want.single_peer, "{label}: single_peer");
    assert_eq!(m.multi_peer, want.multi_peer, "{label}: multi_peer");
    assert_eq!(
        m.accepted_uncertain, want.accepted_uncertain,
        "{label}: accepted_uncertain"
    );
    assert_eq!(m.server, want.server, "{label}: server");
    assert_eq!(m.einn_accesses, want.einn_accesses, "{label}: einn");
    assert_eq!(m.inn_accesses, want.inn_accesses, "{label}: inn");
    assert_eq!(
        m.peer_entries_received, want.peer_entries_received,
        "{label}: peer entries"
    );
    assert_eq!(
        m.peer_records_received, want.peer_records_received,
        "{label}: peer records"
    );
    assert_eq!(m.heap_states, want.heap_states, "{label}: heap states");
    assert_eq!(
        m.peer_answers_graded, want.peer_answers_graded,
        "{label}: graded"
    );
    assert_eq!(
        m.peer_answers_wrong, want.peer_answers_wrong,
        "{label}: wrong"
    );
    assert_eq!(
        m.uncertain_exact, want.uncertain_exact,
        "{label}: uncertain exact"
    );
    assert_eq!(
        m.uncertain_inflation_sum.to_bits(),
        want.uncertain_inflation_bits,
        "{label}: inflation sum must be bit-identical"
    );
    let per_k: Vec<(usize, u64, u64, u64)> = m
        .per_k
        .iter()
        .map(|(k, s)| (*k, s.queries, s.einn_accesses, s.inn_accesses))
        .collect();
    assert_eq!(per_k, want.per_k, "{label}: per-k breakdown");
    // The pipeline is Euclidean here: the SNNN expansion cap can never
    // fire, and attribution must cover every query exactly once.
    assert_eq!(m.expansion_cap_hits, 0, "{label}: cap hits");
    assert_eq!(
        m.queries,
        m.single_peer + m.multi_peer + m.accepted_uncertain + m.server,
        "{label}: attribution partition"
    );
}

#[test]
fn la_two_by_two_defaults_seed_42() {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.2;
    let m = Simulator::new(SimConfig::new(params, 42)).run();
    check(
        "A",
        &m,
        &Golden {
            queries: 232,
            single_peer: 166,
            multi_peer: 1,
            accepted_uncertain: 0,
            server: 65,
            einn_accesses: 255,
            inn_accesses: 272,
            peer_entries_received: 373,
            peer_records_received: 3294,
            heap_states: [10, 10, 0, 0, 0, 45],
            peer_answers_graded: 0,
            peer_answers_wrong: 0,
            uncertain_exact: 0,
            uncertain_inflation_bits: 0x0,
            per_k: &[
                (1, 18, 36, 36),
                (2, 7, 21, 21),
                (3, 8, 32, 32),
                (4, 9, 45, 45),
                (5, 23, 121, 138),
            ],
        },
    );
}

#[test]
fn la_uncertain_churn_ttl_seed_1234() {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.2;
    let mut cfg = SimConfig::new(params, 1234);
    cfg.accept_uncertain = true;
    cfg.poi_churn_per_hour = 16.0;
    cfg.cache_ttl_secs = Some(240.0);
    let m = Simulator::new(cfg).run();
    check(
        "B",
        &m,
        &Golden {
            queries: 237,
            single_peer: 124,
            multi_peer: 0,
            accepted_uncertain: 25,
            server: 88,
            einn_accesses: 344,
            inn_accesses: 345,
            peer_entries_received: 227,
            peer_records_received: 1871,
            heap_states: [0, 0, 2, 1, 5, 80],
            peer_answers_graded: 124,
            peer_answers_wrong: 24,
            uncertain_exact: 14,
            uncertain_inflation_bits: 0x40159278844b13df,
            per_k: &[
                (1, 19, 38, 38),
                (2, 19, 57, 57),
                (3, 16, 64, 64),
                (4, 18, 90, 90),
                (5, 16, 95, 96),
            ],
        },
    );
}

#[test]
fn la_free_movement_lru_seed_7() {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05;
    let mut cfg = SimConfig::new(params, 7);
    cfg.mode = MovementMode::FreeMovement;
    cfg.cache_policy = CachePolicy::Lru;
    let m = Simulator::new(cfg).run();
    check(
        "C",
        &m,
        &Golden {
            queries: 58,
            single_peer: 19,
            multi_peer: 0,
            accepted_uncertain: 0,
            server: 39,
            einn_accesses: 152,
            inn_accesses: 153,
            peer_entries_received: 21,
            peer_records_received: 195,
            heap_states: [2, 0, 0, 0, 0, 37],
            peer_answers_graded: 0,
            peer_answers_wrong: 0,
            uncertain_exact: 0,
            uncertain_inflation_bits: 0x0,
            per_k: &[
                (1, 10, 20, 20),
                (2, 7, 21, 21),
                (3, 9, 36, 36),
                (4, 2, 10, 10),
                (5, 11, 65, 66),
            ],
        },
    );
}
