//! The simulator's residual batches through the configurable service
//! seam: shard-count invariance of every recorded metric, bit-identical
//! passthrough of a disabled fault wrapper, seeded fault determinism
//! across thread counts, and graceful degradation accounting under a
//! hostile service.

use senn_sim::{FaultConfig, Metrics, ParamSet, SimConfig, SimParams, Simulator};

fn base(seed: u64) -> SimConfig {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    SimConfig::new(params, seed)
}

fn run(cfg: SimConfig) -> Metrics {
    Simulator::new(cfg).run()
}

#[test]
fn sharded_backend_reproduces_single_tree_metrics() {
    // The sharded service must return answers identical to the 1-shard
    // RTreeServer backend, so the whole metrics block — attribution,
    // PAR shadows, cache-driven peer rates — is invariant to shard count.
    let single = run(base(42));
    for shards in [2, 3, 5] {
        let sharded = run(base(42).to_builder().server_shards(shards).build());
        assert_eq!(single, sharded, "metrics diverged at {shards} shards");
    }
}

#[test]
fn sharded_backend_tracks_relocations_under_churn() {
    // POI churn relocates in both the truth server and the service
    // backend; a sharded backend routes relocations across strips and must
    // keep answering exactly like the single tree.
    let mk = |shards: usize| {
        let mut cfg = base(31);
        cfg.params.t_execution_hours = 0.15;
        cfg.compare_inn = false;
        cfg.poi_churn_per_hour = 16.0;
        cfg.server_shards = shards;
        run(cfg)
    };
    let single = mk(1);
    assert!(single.peer_answers_graded > 0, "churn runs grade answers");
    assert_eq!(single, mk(3));
}

#[test]
fn per_shard_counters_account_every_residual_request() {
    let cfg = base(11).to_builder().server_shards(2).build();
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    let sm = sim
        .service_metrics()
        .expect("sharded backend exposes metrics");
    assert_eq!(sm.shards.len(), 2);
    // Warm-up queries also hit the service, so the request counter is at
    // least the steady-state server-bound count; retry rounds can only
    // add to it.
    assert!(
        sm.requests >= m.server,
        "service saw {} requests for {} server-bound queries",
        sm.requests,
        m.server
    );
    assert!(sm.node_accesses() > 0);
    let per_shard: u64 = sm.shards.iter().map(|s| s.requests).sum();
    assert!(per_shard >= sm.requests, "every request lands on ≥ 1 shard");
}

#[test]
fn disabled_fault_wrapper_is_bit_identical() {
    // `fault: None` and an explicitly disabled fault config must both be
    // pure passthroughs: exact same Metrics, f64 sums included.
    let plain = run(base(42));
    let wrapped = run(base(42).to_builder().fault(FaultConfig::disabled()).build());
    assert_eq!(plain, wrapped);
    assert_eq!(plain.server_retries, 0);
    assert_eq!(plain.server_drops + plain.server_timeouts, 0);
    assert_eq!(plain.server_degraded + plain.server_failed, 0);
}

#[test]
fn seeded_faults_are_deterministic_and_thread_invariant() {
    // Fault schedules are drawn per request in batch-submission order, and
    // batch composition is fixed by the plan — so a fixed seed reproduces
    // identical retry counts no matter how many worker threads execute.
    let mk = |threads: usize| {
        base(7)
            .to_builder()
            .server_shards(2)
            .fault(FaultConfig::lossy(99))
            .threads(threads)
            .build()
    };
    let a = run(mk(1));
    let b = run(mk(4));
    let c = run(mk(4));
    assert_eq!(b, c, "same seed, same threads ⇒ identical metrics");
    assert_eq!(a, b, "fault schedule must not depend on thread count");
}

#[test]
fn hostile_service_degrades_gracefully_without_panics() {
    // Heavy drops + a timeout tighter than the mean latency: the run must
    // complete, attribute every query exactly once, and account the
    // retries/degradations in Metrics.
    let mut cfg = base(3);
    cfg.params.t_execution_hours = 0.1;
    cfg.compare_inn = false;
    let cfg = cfg
        .to_builder()
        .server_shards(2)
        .fault(FaultConfig {
            seed: 5,
            drop_prob: 0.45,
            mean_latency_ms: 30.0,
            timeout_ms: 35.0,
        })
        .build();
    let m = run(cfg);
    assert!(m.queries > 0);
    assert_eq!(
        m.queries,
        m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
        "every query attributed exactly once even under faults"
    );
    assert!(m.server_retries > 0, "heavy faults must trigger retries");
    assert!(m.server_drops + m.server_timeouts > 0);
    assert!(
        m.server_degraded + m.server_failed > 0,
        "some requests must exhaust the pruned attempts"
    );
    // Failed residuals still record a heap state (they stay server-bound).
    let states: u64 = m.heap_states.iter().sum();
    assert_eq!(states, m.server);
    assert!(m.degraded_rate() <= 1.0 && m.failed_request_rate() <= 1.0);
}
