//! Network-mode (SNNN) simulator runs on pluggable distance models.
//!
//! The headline claims this suite proves:
//!
//! * the simulator runs Algorithm 2 end-to-end under all four road
//!   metrics (A\*, ALT, the CH oracle, time-dependent) — peer probe,
//!   verification, and batched residual rounds through the configured
//!   service;
//! * A\*, ALT and the contraction-hierarchy oracle are interchangeable:
//!   they produce **bit-identical whole [`Metrics`]** (they compute the
//!   same distances, so every expansion makes the same decisions);
//! * a fault-free SNNN run records the same Metrics as the Euclidean run
//!   apart from `expansion_cap_hits` — expansion refines the ranking but
//!   never rewrites the paper's accounting unit (the initial round);
//! * Metrics are invariant to worker-thread count and service shard
//!   count, seeded fault injection included (expansion residuals are
//!   submitted on the main thread in plan order);
//! * a starved expansion budget is reported, not silently truncated.

use senn_sim::{FaultConfig, Metrics, NetworkModelKind, ParamSet, SimConfig, SimParams, Simulator};

fn base(seed: u64) -> SimConfig {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    SimConfig::new(params, seed)
}

fn run(cfg: SimConfig) -> Metrics {
    Simulator::new(cfg).run()
}

/// Runs and also returns the executed SNNN round count.
fn run_counting_rounds(cfg: SimConfig) -> (Metrics, u64) {
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    (m, sim.batch_stats().snnn_rounds)
}

const MODELS: [NetworkModelKind; 4] = [
    NetworkModelKind::AStar,
    NetworkModelKind::Alt { landmarks: 4 },
    NetworkModelKind::TimeDependent { start_hour: 8.0 },
    NetworkModelKind::Ch,
];

#[test]
fn snnn_runs_end_to_end_under_every_model() {
    for kind in MODELS {
        let cfg = base(42).to_builder().distance_model(kind).build();
        let (m, rounds) = run_counting_rounds(cfg);
        assert!(m.queries > 0, "{kind:?}: no queries issued");
        assert_eq!(
            m.queries,
            m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
            "{kind:?}: every query attributed exactly once"
        );
        assert!(rounds > 0, "{kind:?}: no expansion rounds executed");
        assert_eq!(
            m.expansion_cap_hits, 0,
            "{kind:?}: the default budget must confirm every expansion \
             (the world has only 16 POIs)"
        );
    }
}

#[test]
fn astar_and_alt_metrics_are_bit_identical() {
    // A* and ALT compute the exact same shortest-path distances (proven
    // in senn-network's metric_equivalence suite), so every expansion
    // decision — and therefore the whole Metrics block, f64 sums
    // included — must coincide. The one legitimate difference is the
    // pruning payoff: ALT runs with landmark lower bounds while A* runs
    // with the looser free-flow bound, so `model_evals_saved` may
    // differ. `lb_evals` may NOT — the candidate stream the oracle sees
    // never depends on which oracle is consulted.
    let astar = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .build());
    let alt = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::Alt { landmarks: 4 })
        .build());
    assert_eq!(astar.lb_evals, alt.lb_evals, "candidate streams diverged");
    assert!(
        alt.model_evals_saved >= astar.model_evals_saved,
        "landmark bounds must prune at least as much as free-flow bounds"
    );
    let mut alt_norm = alt.clone();
    alt_norm.model_evals_saved = astar.model_evals_saved;
    assert_eq!(astar, alt_norm);
    // The landmark count tunes search effort, never answers.
    let alt8 = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::Alt { landmarks: 8 })
        .build());
    let mut alt8_norm = alt8.clone();
    alt8_norm.model_evals_saved = astar.model_evals_saved;
    assert_eq!(astar, alt8_norm);
}

#[test]
fn ch_metrics_are_bit_identical_to_astar_and_alt() {
    // The hub-label oracle unpacks and folds the same original edge
    // sequence Dijkstra walks, so every exact evaluation — and therefore
    // every expansion decision and the whole Metrics block — coincides
    // with the A*/ALT runs. As with ALT, `model_evals_saved` is the one
    // legitimately different counter (ChBound is an *exact* bound, so it
    // prunes at least as hard as ALT's landmark bound); `lb_evals` may
    // not differ — the candidate stream never depends on the oracle.
    let astar = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .build());
    let alt = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::Alt { landmarks: 4 })
        .build());
    let ch = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::Ch)
        .build());
    assert_eq!(astar.lb_evals, ch.lb_evals, "candidate streams diverged");
    assert!(
        ch.model_evals_saved >= alt.model_evals_saved,
        "the exact CH bound must prune at least as much as landmark bounds \
         ({} vs {})",
        ch.model_evals_saved,
        alt.model_evals_saved
    );
    let mut ch_norm = ch.clone();
    ch_norm.model_evals_saved = astar.model_evals_saved;
    assert_eq!(astar, ch_norm, "CH-mode Metrics diverged from A*");
}

#[test]
fn snnn_metrics_match_euclidean_run_modulo_cap_hits() {
    // Expansion only refines which POIs the host would rank first under
    // the road metric; attribution, PAR shadows, cache behavior and peer
    // rates all come from the initial Euclidean round, so a fault-free
    // SNNN run records the same Metrics as the plain run except for the
    // cap-hit counter.
    let euclid = run(base(42));
    for kind in MODELS {
        let mut snnn = run(base(42).to_builder().distance_model(kind).build());
        snnn.expansion_cap_hits = euclid.expansion_cap_hits;
        // The Euclidean run never enters the expansion stage, so its
        // bound-oracle counters are structurally zero; a network run's
        // are not. Normalize them like the cap-hit counter.
        snnn.lb_evals = euclid.lb_evals;
        snnn.model_evals_saved = euclid.model_evals_saved;
        assert_eq!(euclid, snnn, "{kind:?} diverged from the Euclidean run");
    }
}

#[test]
fn network_mode_metrics_are_thread_invariant() {
    let mk = |threads: usize| {
        base(7)
            .to_builder()
            .distance_model(NetworkModelKind::TimeDependent { start_hour: 17.0 })
            .threads(threads)
            .build()
    };
    let one = run_counting_rounds(mk(1));
    let two = run_counting_rounds(mk(2));
    let four = run_counting_rounds(mk(4));
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(one, four, "1 vs 4 threads");
}

#[test]
fn network_mode_metrics_are_shard_invariant() {
    let mk = |shards: usize| {
        base(11)
            .to_builder()
            .distance_model(NetworkModelKind::Alt { landmarks: 4 })
            .server_shards(shards)
            .build()
    };
    let single = run_counting_rounds(mk(1));
    assert_eq!(single, run_counting_rounds(mk(2)), "1 vs 2 shards");
    assert_eq!(single, run_counting_rounds(mk(3)), "1 vs 3 shards");
}

#[test]
fn starved_expansion_budget_is_reported_not_silent() {
    // A zero round budget cannot confirm any expansion: every eligible
    // query must surface in expansion_cap_hits (the satellite bugfix at
    // the library layer, proven through the full simulator here).
    let starved = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .snnn_max_expansion(0)
        .build());
    assert!(
        starved.expansion_cap_hits > 0,
        "a starved budget must be reported"
    );
    // The generous default confirms everything (only 16 POIs to pull).
    let default = run(base(42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .build());
    assert_eq!(default.expansion_cap_hits, 0);
    // Everything else is untouched by the budget — modulo the bound
    // oracle counters, which only tick inside the rounds the starved
    // run never executes.
    let mut starved_rest = starved.clone();
    starved_rest.expansion_cap_hits = 0;
    starved_rest.lb_evals = default.lb_evals;
    starved_rest.model_evals_saved = default.model_evals_saved;
    assert_eq!(starved_rest, default);
}

#[test]
fn lossy_service_snnn_run_completes_and_stays_thread_invariant() {
    // Expansion rounds submit their residuals through the same faulty
    // service seam, on the main thread in plan order — so even a lossy
    // schedule reproduces bit-identically across thread counts.
    let mk = |threads: usize| {
        base(7)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .server_shards(2)
            .fault(FaultConfig::lossy(99))
            .threads(threads)
            .build()
    };
    let (a, rounds_a) = run_counting_rounds(mk(1));
    let (b, rounds_b) = run_counting_rounds(mk(4));
    assert_eq!(a, b, "fault schedule must not depend on thread count");
    assert_eq!(rounds_a, rounds_b);
    assert!(a.queries > 0);
    assert!(
        a.server_retries > 0,
        "a lossy service must force some retries"
    );
    assert_eq!(
        a.queries,
        a.single_peer + a.multi_peer + a.server + a.accepted_uncertain,
        "every query attributed exactly once under faults"
    );
}

#[test]
fn ch_mode_is_thread_shard_and_fault_invariant() {
    // The CH oracle is built once with the world from the master seed and
    // only ever read afterwards, so CH-mode runs must reproduce
    // bit-identically across worker-thread and shard counts even under a
    // seeded lossy service.
    let mk = |threads: usize, shards: usize| {
        base(7)
            .to_builder()
            .distance_model(NetworkModelKind::Ch)
            .server_shards(shards)
            .fault(FaultConfig::lossy(99))
            .threads(threads)
            .build()
    };
    let (a, rounds_a) = run_counting_rounds(mk(1, 1));
    let (b, rounds_b) = run_counting_rounds(mk(4, 1));
    let (c, rounds_c) = run_counting_rounds(mk(2, 3));
    assert_eq!(a, b, "1 vs 4 threads");
    assert_eq!(a, c, "1 shard vs 3 shards");
    assert_eq!(rounds_a, rounds_b);
    assert_eq!(rounds_a, rounds_c);
    assert!(a.queries > 0);
    assert!(
        a.server_retries > 0,
        "a lossy service must force some retries"
    );
}

#[test]
fn golden_snnn_attribution_is_pinned() {
    // Golden run: seed 42, LA 2×2, A* model. Pins the exact attribution
    // so any change to planning order, expansion logic or the service
    // seam shows up as a diff here rather than as silent drift. (A* vs
    // ALT equality above extends the pin to the ALT model.)
    let (m, rounds) = run_counting_rounds(
        base(42)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .build(),
    );
    let golden = [
        ("queries", m.queries),
        ("single_peer", m.single_peer),
        ("multi_peer", m.multi_peer),
        ("server", m.server),
        ("einn_accesses", m.einn_accesses),
        ("inn_accesses", m.inn_accesses),
        ("snnn_rounds", rounds),
    ];
    assert_eq!(
        golden,
        [
            ("queries", 65),
            ("single_peer", 17),
            ("multi_peer", 0),
            ("server", 48),
            ("einn_accesses", 193),
            ("inn_accesses", 194),
            ("snnn_rounds", 200),
        ]
    );
}
