//! Overlapped-transport determinism: with `SimConfig::transport`
//! configured, residual completions arrive out of order across interval
//! boundaries — yet recorded [`Metrics`] must stay a pure function of the
//! seed and the plan order. Request ids are a global sequence, lane
//! assignment hashes the id (never the shard), and the keyed fault/service
//! draws depend only on `(seed, id, attempt)` — so worker-thread count and
//! shard layout must not move a single bit.

use senn_sim::metrics::Metrics;
use senn_sim::{
    AdaptivePolicy, FaultConfig, ParamSet, SimConfig, SimParams, Simulator, TransportPolicy,
};

fn tiny_params() -> SimParams {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    params
}

fn run(cfg: SimConfig) -> Metrics {
    let mut sim = Simulator::new(cfg);
    sim.run()
}

/// Bit-identical metrics across 1/2 worker threads × 1/3 shards, with the
/// default transport policy — fault-free and under the lossy fault
/// config. The transport's event schedule (and therefore every deferred
/// completion's interval) must be invariant to both knobs.
#[test]
fn overlapped_metrics_are_bit_identical_across_threads_and_shards() {
    for fault in [None, Some(FaultConfig::lossy(5))] {
        let mut reference: Option<Metrics> = None;
        for threads in [1usize, 2] {
            for shards in [1usize, 3] {
                let mut b = SimConfig::new(tiny_params(), 99)
                    .to_builder()
                    .threads(threads)
                    .server_shards(shards)
                    .transport(TransportPolicy::default());
                if let Some(f) = fault {
                    b = b.fault(f);
                }
                let m = run(b.build());
                assert!(m.queries > 0);
                match &reference {
                    None => reference = Some(m),
                    Some(r) => assert_eq!(
                        &m,
                        r,
                        "metrics diverged at threads={threads} shards={shards} \
                         fault={:?}",
                        fault.is_some()
                    ),
                }
            }
        }
    }
}

/// A starved transport (one-deep window and queue per lane) sheds part of
/// every residual burst. Shed ladders are terminal: the query stays
/// attributed (as server-bound/unresolved), the shed count flows into
/// `Metrics::server_shed`, and the run still balances its books.
#[test]
fn tiny_queues_shed_under_burst_arrivals_and_stay_attributed() {
    // A hotspot arrival spike: ~100 queries per interval burst into
    // one-deep lanes.
    let mut params = tiny_params();
    params.lambda_query_per_min = 600.0;
    let cfg = SimConfig::new(params, 7)
        .to_builder()
        .transport(TransportPolicy {
            window: 1,
            queue_cap: 1,
            ..TransportPolicy::default()
        })
        .build();
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    assert!(m.queries > 0);
    assert!(
        m.server_shed > 0,
        "one-deep lanes must shed under burst arrivals"
    );
    assert_eq!(
        m.queries,
        m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
        "shed queries are still attributed exactly once"
    );
    // A shed ladder never retried and never produced an answer.
    assert!(m.server_failed >= m.server_shed);
    // Transport counters span the whole run; `Metrics` reset at warm-up.
    assert!(sim.batch_stats().shed_count >= m.server_shed);
    let stats = sim.transport_stats().expect("overlapped mode");
    assert!(stats.shed >= m.server_shed);
    assert!(stats.queue_depth_peak <= 4, "queues are one-deep per lane");
}

/// Adaptive golden pins: three seeds under the lossy fault config, with
/// the default AIMD band, pinned down to the attribution split, the
/// ladder counters and the whole window trajectory summary. Any change
/// to the controller's arithmetic, the lane dequeue order or the keyed
/// draw discipline moves at least one of these numbers.
#[test]
fn adaptive_goldens_are_pinned_for_three_seeds() {
    // (seed, queries, single, multi, server, uncertain, shed, retries,
    //  denied, window_min, window_max, window_final, grows, shrinks)
    let goldens: [(u64, [u64; 13]); 3] = [
        (3, [55, 15, 0, 40, 0, 0, 2, 0, 4, 18, 59, 43, 0]),
        (41, [65, 14, 0, 51, 0, 0, 1, 0, 4, 21, 70, 54, 0]),
        (2006, [68, 23, 0, 45, 0, 0, 3, 0, 4, 24, 79, 63, 0]),
    ];
    for (seed, want) in goldens {
        let cfg = SimConfig::new(tiny_params(), seed)
            .to_builder()
            .fault(FaultConfig::lossy(5))
            .transport_adaptive(AdaptivePolicy::default())
            .build();
        let mut sim = Simulator::new(cfg);
        let m = sim.run();
        let s = sim.transport_stats().expect("overlapped mode");
        let got = [
            m.queries,
            m.single_peer,
            m.multi_peer,
            m.server,
            m.accepted_uncertain,
            m.server_shed,
            m.server_retries,
            m.server_retries_denied,
            s.window_min,
            s.window_max,
            s.window_final,
            s.window_grows,
            s.window_shrinks,
        ];
        assert_eq!(got, want, "adaptive golden moved at seed {seed}");
        assert_eq!(s.priority_inversions, 0, "seed {seed}");
    }
}

/// `AdaptivePolicy::clamped(w)` pins the window band to a point and
/// grants an unlimited retry budget — the controller becomes inert, and
/// the whole run must be bit-identical to the plain static policy:
/// every `Metrics` field and the transport/batch observability alike.
#[test]
fn clamped_adaptive_reproduces_the_static_run_bit_for_bit() {
    let static_policy = TransportPolicy::default();
    let runs: Vec<(Metrics, senn_core::transport::TransportStats, u64)> =
        [None, Some(AdaptivePolicy::clamped(static_policy.window))]
            .into_iter()
            .map(|adaptive| {
                let cfg = SimConfig::new(tiny_params(), 99)
                    .to_builder()
                    .fault(FaultConfig::lossy(5))
                    .transport(TransportPolicy {
                        adaptive,
                        ..static_policy
                    })
                    .build();
                let mut sim = Simulator::new(cfg);
                let m = sim.run();
                let s = sim.transport_stats().expect("overlapped mode").clone();
                let denied = sim.batch_stats().retries_denied;
                (m, s, denied)
            })
            .collect();
    assert!(runs[0].0.queries > 0);
    assert_eq!(runs[0].0, runs[1].0, "Metrics diverged");
    assert_eq!(runs[0].1, runs[1].1, "TransportStats diverged");
    assert_eq!(runs[0].2, 0, "static mode never denies a retry");
    assert_eq!(runs[1].2, 0, "clamped adaptive never denies a retry");
}

/// The adaptive controller keeps the layout-invariance contract under
/// burst arrivals: metrics, the AIMD window trajectory summary and the
/// shed/denial counters are bit-identical across 1/2 worker threads ×
/// 1/3 shards. Every controller decision keys off the virtual clock and
/// the request id — never off thread or shard structure.
#[test]
fn adaptive_windows_are_bit_identical_across_threads_and_shards() {
    let mut params = tiny_params();
    params.lambda_query_per_min = 600.0;
    let mut reference: Option<(Metrics, senn_core::transport::TransportStats)> = None;
    for threads in [1usize, 2] {
        for shards in [1usize, 3] {
            let cfg = SimConfig::new(params, 7)
                .to_builder()
                .threads(threads)
                .server_shards(shards)
                .transport(TransportPolicy {
                    queue_cap: 2,
                    ..TransportPolicy::default()
                })
                .transport_adaptive(AdaptivePolicy::default())
                .build();
            let mut sim = Simulator::new(cfg);
            let m = sim.run();
            let s = sim.transport_stats().expect("overlapped mode").clone();
            // The run must actually exercise the controller: sheds shrink
            // the window, healthy completions grow it back to the cap.
            assert!(m.server_shed > 0, "burst must shed through 2-deep queues");
            assert!(s.window_shrinks > 0 && s.window_grows > 0);
            assert_eq!(s.priority_inversions, 0);
            match &reference {
                None => reference = Some((m, s)),
                Some((rm, rs)) => {
                    assert_eq!(
                        &m, rm,
                        "metrics diverged at threads={threads} shards={shards}"
                    );
                    assert_eq!(
                        &s, rs,
                        "windows diverged at threads={threads} shards={shards}"
                    );
                }
            }
        }
    }
}

/// The blocking path is untouched by the transport work: a `None`
/// transport reproduces the exact metrics of the pre-transport engine
/// (which the seed-determinism and golden tests elsewhere pin down), and
/// its transport observability stays empty.
#[test]
fn blocking_mode_reports_no_transport_activity() {
    let cfg = SimConfig::new(tiny_params(), 11).to_builder().build();
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    assert!(m.queries > 0);
    assert_eq!(m.server_shed, 0);
    assert!(sim.transport_stats().is_none());
    assert_eq!(sim.batch_stats().shed_count, 0);
    assert_eq!(sim.batch_stats().in_flight_peak, 0);
}
