//! Overlapped-transport determinism: with `SimConfig::transport`
//! configured, residual completions arrive out of order across interval
//! boundaries — yet recorded [`Metrics`] must stay a pure function of the
//! seed and the plan order. Request ids are a global sequence, lane
//! assignment hashes the id (never the shard), and the keyed fault/service
//! draws depend only on `(seed, id, attempt)` — so worker-thread count and
//! shard layout must not move a single bit.

use senn_sim::metrics::Metrics;
use senn_sim::{FaultConfig, ParamSet, SimConfig, SimParams, Simulator, TransportPolicy};

fn tiny_params() -> SimParams {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    params
}

fn run(cfg: SimConfig) -> Metrics {
    let mut sim = Simulator::new(cfg);
    sim.run()
}

/// Bit-identical metrics across 1/2 worker threads × 1/3 shards, with the
/// default transport policy — fault-free and under the lossy fault
/// config. The transport's event schedule (and therefore every deferred
/// completion's interval) must be invariant to both knobs.
#[test]
fn overlapped_metrics_are_bit_identical_across_threads_and_shards() {
    for fault in [None, Some(FaultConfig::lossy(5))] {
        let mut reference: Option<Metrics> = None;
        for threads in [1usize, 2] {
            for shards in [1usize, 3] {
                let mut b = SimConfig::new(tiny_params(), 99)
                    .to_builder()
                    .threads(threads)
                    .server_shards(shards)
                    .transport(TransportPolicy::default());
                if let Some(f) = fault {
                    b = b.fault(f);
                }
                let m = run(b.build());
                assert!(m.queries > 0);
                match &reference {
                    None => reference = Some(m),
                    Some(r) => assert_eq!(
                        &m,
                        r,
                        "metrics diverged at threads={threads} shards={shards} \
                         fault={:?}",
                        fault.is_some()
                    ),
                }
            }
        }
    }
}

/// A starved transport (one-deep window and queue per lane) sheds part of
/// every residual burst. Shed ladders are terminal: the query stays
/// attributed (as server-bound/unresolved), the shed count flows into
/// `Metrics::server_shed`, and the run still balances its books.
#[test]
fn tiny_queues_shed_under_burst_arrivals_and_stay_attributed() {
    // A hotspot arrival spike: ~100 queries per interval burst into
    // one-deep lanes.
    let mut params = tiny_params();
    params.lambda_query_per_min = 600.0;
    let cfg = SimConfig::new(params, 7)
        .to_builder()
        .transport(TransportPolicy {
            window: 1,
            queue_cap: 1,
            ..TransportPolicy::default()
        })
        .build();
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    assert!(m.queries > 0);
    assert!(
        m.server_shed > 0,
        "one-deep lanes must shed under burst arrivals"
    );
    assert_eq!(
        m.queries,
        m.single_peer + m.multi_peer + m.server + m.accepted_uncertain,
        "shed queries are still attributed exactly once"
    );
    // A shed ladder never retried and never produced an answer.
    assert!(m.server_failed >= m.server_shed);
    // Transport counters span the whole run; `Metrics` reset at warm-up.
    assert!(sim.batch_stats().shed_count >= m.server_shed);
    let stats = sim.transport_stats().expect("overlapped mode");
    assert!(stats.shed >= m.server_shed);
    assert!(stats.queue_depth_peak <= 4, "queues are one-deep per lane");
}

/// The blocking path is untouched by the transport work: a `None`
/// transport reproduces the exact metrics of the pre-transport engine
/// (which the seed-determinism and golden tests elsewhere pin down), and
/// its transport observability stays empty.
#[test]
fn blocking_mode_reports_no_transport_activity() {
    let cfg = SimConfig::new(tiny_params(), 11).to_builder().build();
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    assert!(m.queries > 0);
    assert_eq!(m.server_shed, 0);
    assert!(sim.transport_stats().is_none());
    assert_eq!(sim.batch_stats().shed_count, 0);
    assert_eq!(sim.batch_stats().in_flight_peak, 0);
}
