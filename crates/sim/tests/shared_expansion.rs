//! Shared-vs-solo equivalence at the whole-simulation level.
//!
//! `SimConfig::shared_expansion` swaps the expand pass's per-(query,
//! candidate) network searches for batch-shared resumable Dijkstra
//! frontiers. The contract this suite pins: recorded [`Metrics`] are
//! **bit-identical** to the per-query path in every field except
//! [`Metrics::shared_settles_saved`] — the accounting that justifies each
//! skipped settlement — across model kinds, submission layouts, worker
//! threads, server shards, and seeded fault schedules. The savings
//! themselves are cross-checked against [`BatchStats`]' frontier totals:
//! `saved == solo_settles - settles`, exactly.

use senn_sim::{
    BatchStats, FaultConfig, Metrics, NetworkModelKind, ParamSet, SimConfig, SimParams, Simulator,
};

fn base(seed: u64) -> SimConfig {
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05; // 3 simulated minutes
    SimConfig::new(params, seed)
}

fn run(cfg: SimConfig) -> (Metrics, BatchStats) {
    let mut sim = Simulator::new(cfg);
    let m = sim.run();
    let stats = *sim.batch_stats();
    (m, stats)
}

/// The shared run's metrics with the one permitted difference zeroed.
fn normalized(m: &Metrics) -> Metrics {
    let mut m = m.clone();
    m.shared_settles_saved = 0;
    m
}

#[test]
fn shared_and_solo_metrics_agree_modulo_saved_for_every_kind() {
    for kind in [
        NetworkModelKind::AStar,
        NetworkModelKind::Alt { landmarks: 4 },
        NetworkModelKind::TimeDependent { start_hour: 8.0 },
        NetworkModelKind::Ch,
    ] {
        let mk = |shared: bool| {
            base(42)
                .to_builder()
                .distance_model(kind)
                .shared_expansion(shared)
                .build()
        };
        let (shared, shared_stats) = run(mk(true));
        let (solo, solo_stats) = run(mk(false));
        assert_eq!(
            solo.shared_settles_saved, 0,
            "{kind:?}: the per-query path must never report savings"
        );
        assert_eq!(
            normalized(&shared),
            solo,
            "{kind:?}: shared expansion changed an observable result"
        );
        assert!(
            shared.shared_settles_saved > 0,
            "{kind:?}: the golden workload has co-located queries — sharing must save"
        );
        // The frontier totals cover the whole run (warm-up included),
        // Metrics only the post-warm-up batches — so the totals bound
        // the recorded savings from above. Exact equality is pinned in
        // `every_skip_is_justified_by_the_frontier_accounting`.
        assert!(
            shared.shared_settles_saved
                <= shared_stats.shared_solo_settles - shared_stats.shared_settles,
            "{kind:?}: Metrics report more savings than the frontiers produced"
        );
        assert!(shared_stats.shared_groups > 0, "{kind:?}");
        assert_eq!(
            (
                solo_stats.shared_groups,
                solo_stats.shared_solo_settles,
                solo_stats.shared_settles
            ),
            (0, 0, 0),
            "{kind:?}: per-query runs must not touch the frontier counters"
        );
        // The submission schedule is untouched by the model swap.
        assert_eq!(shared_stats.snnn_rounds, solo_stats.snnn_rounds, "{kind:?}");
        assert_eq!(
            shared_stats.snnn_submissions, solo_stats.snnn_submissions,
            "{kind:?}"
        );
    }
}

#[test]
fn every_skip_is_justified_by_the_frontier_accounting() {
    // With warm-up disabled, Metrics and BatchStats cover exactly the
    // same batches, so the recorded savings must equal the frontier
    // totals' `solo - settles` to the last settlement.
    let cfg = base(42)
        .to_builder()
        .warmup_frac(0.0)
        .distance_model(NetworkModelKind::AStar)
        .shared_expansion(true)
        .build();
    let (m, stats) = run(cfg);
    assert!(m.shared_settles_saved > 0);
    assert_eq!(
        m.shared_settles_saved,
        stats.shared_solo_settles - stats.shared_settles,
        "Metrics savings diverged from the frontier accounting"
    );
}

#[test]
fn shared_equality_holds_under_a_lossy_service() {
    // The keyed fault schedule sees the same per-id request stream either
    // way — sharing only changes how distances are computed, never which
    // requests are sent.
    let mk = |shared: bool| {
        base(7)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .fault(FaultConfig::lossy(99))
            .shared_expansion(shared)
            .build()
    };
    let (shared, _) = run(mk(true));
    let (solo, _) = run(mk(false));
    assert!(
        shared.server_retries > 0,
        "lossy config exercised no retries — the test proves nothing"
    );
    assert_eq!(normalized(&shared), solo, "fault schedules diverged");
    assert!(shared.shared_settles_saved > 0);
}

#[test]
fn shared_equality_holds_across_layouts_threads_and_shards() {
    // 2 submission layouts x 2 worker threads x {1,3} shards, all under a
    // mildly lossy service: every combination must agree with the 1x1
    // reference bit for bit — shared_settles_saved included, because the
    // frontier totals depend only on the probe multiset, which is fixed
    // by the plan order.
    let mk = |batched: bool, threads: usize, shards: usize| {
        base(11)
            .to_builder()
            .distance_model(NetworkModelKind::Alt { landmarks: 4 })
            .fault(FaultConfig::lossy(5))
            .threads(threads)
            .server_shards(shards)
            .expansion_batching(batched)
            .shared_expansion(true)
            .build()
    };
    let (reference, _) = run(mk(true, 1, 1));
    assert!(reference.shared_settles_saved > 0);
    for batched in [true, false] {
        for threads in [1usize, 2] {
            for shards in [1usize, 3] {
                let (m, _) = run(mk(batched, threads, shards));
                assert_eq!(
                    m, reference,
                    "diverged at batching={batched} threads={threads} shards={shards}"
                );
            }
        }
    }
}

#[test]
fn hotspot_density_saves_at_least_two_fold() {
    // The perf-gate claim at test scale: with many co-located queries per
    // interval (a dense arrival spike on the golden world), the shared
    // frontiers settle at least 2x fewer nodes than fresh per-candidate
    // searches would.
    let mut params = SimParams::two_by_two(ParamSet::LosAngeles);
    params.t_execution_hours = 0.05;
    params.lambda_query_per_min *= 4.0;
    let cfg = SimConfig::new(params, 42)
        .to_builder()
        .distance_model(NetworkModelKind::AStar)
        .shared_expansion(true)
        .build();
    let (m, stats) = run(cfg);
    assert!(m.queries > 0);
    assert!(stats.shared_settles > 0, "the workload reaches the model");
    let ratio = stats.shared_solo_settles as f64 / stats.shared_settles as f64;
    assert!(
        ratio >= 2.0,
        "hotspot sharing ratio {ratio:.2} below the 2x floor \
         ({} solo vs {} shared settles)",
        stats.shared_solo_settles,
        stats.shared_settles
    );
}

#[test]
fn golden_attribution_is_pinned_under_sharing() {
    // Same pin as batched_expansion.rs / network_mode.rs: seed 42, LA
    // 2x2, A*. Sharing must not move a single query between resolution
    // classes or change a single page access.
    for shared in [true, false] {
        let (m, stats) = run(base(42)
            .to_builder()
            .distance_model(NetworkModelKind::AStar)
            .shared_expansion(shared)
            .build());
        let golden = [
            ("queries", m.queries),
            ("single_peer", m.single_peer),
            ("multi_peer", m.multi_peer),
            ("server", m.server),
            ("einn_accesses", m.einn_accesses),
            ("inn_accesses", m.inn_accesses),
            ("snnn_rounds", stats.snnn_rounds),
        ];
        assert_eq!(
            golden,
            [
                ("queries", 65),
                ("single_peer", 17),
                ("multi_peer", 0),
                ("server", 48),
                ("einn_accesses", 193),
                ("inn_accesses", 194),
                ("snnn_rounds", 200),
            ],
            "golden drifted with shared_expansion({shared})"
        );
    }
}
