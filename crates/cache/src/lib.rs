#![warn(missing_docs)]
//! # senn-cache
//!
//! Mobile-host NN result caches (Section 4.1).
//!
//! Each mobile host manages a local cache of nearest-neighbor query
//! results. The paper's policy:
//!
//! 1. "A MH only stores the query location (the coordinates where it
//!    launched the query) and all the certain nearest neighbors of the
//!    most recent query" — [`MostRecentCache`].
//! 2. "If a kNN query must be sent to the server, the MH will query for as
//!    many NN as its cache capacity allows" — the cache exposes its
//!    [`capacity`](QueryCache::capacity) so the query layer can over-fetch.
//!
//! [`LruCache`] is an extension (multiple past queries under a shared item
//! budget) used by the ablation benches.

use senn_geom::Point;

/// A cached nearest neighbor: POI identity plus its exact position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedNn {
    /// Stable POI identifier (index into the server's POI table).
    pub poi_id: u64,
    /// POI position. The paper "uses the object identifier to represent
    /// its position coordinates"; we carry both explicitly.
    pub position: Point,
}

/// One cached query result: the location the query was launched from plus
/// its verified (certain) nearest neighbors in ascending distance order.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Where the owner launched the query.
    pub query_location: Point,
    /// Certain NNs sorted ascending by distance to `query_location`.
    pub neighbors: Vec<CachedNn>,
    /// Creation time in seconds (simulation clock); `0.0` when untracked.
    /// Lets consumers apply TTL invalidation against POI churn.
    pub timestamp: f64,
}

impl CacheEntry {
    /// Builds an entry, sorting the neighbors by distance to the query
    /// location (the invariant every consumer relies on).
    pub fn new(query_location: Point, mut neighbors: Vec<CachedNn>) -> Self {
        neighbors.sort_by(|a, b| {
            query_location
                .dist_sq(a.position)
                .partial_cmp(&query_location.dist_sq(b.position))
                .unwrap()
        });
        CacheEntry {
            query_location,
            neighbors,
            timestamp: 0.0,
        }
    }

    /// Builds an entry from `(poi_id, position)` pairs already sorted by
    /// ascending distance. Debug-asserts the ordering.
    pub fn from_sorted(query_location: Point, neighbors: Vec<(u64, Point)>) -> Self {
        let neighbors: Vec<CachedNn> = neighbors
            .into_iter()
            .map(|(poi_id, position)| CachedNn { poi_id, position })
            .collect();
        debug_assert!(neighbors.windows(2).all(|w| {
            query_location.dist_sq(w[0].position) <= query_location.dist_sq(w[1].position) + 1e-9
        }));
        CacheEntry {
            query_location,
            neighbors,
            timestamp: 0.0,
        }
    }

    /// Sets the creation timestamp (builder style).
    pub fn at_time(mut self, timestamp: f64) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// True when the entry is older than `ttl_secs` at time `now`.
    pub fn is_expired(&self, now: f64, ttl_secs: f64) -> bool {
        now - self.timestamp > ttl_secs
    }

    /// Number of cached neighbors.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when no neighbors are cached.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Distance from the query location to the farthest cached NN — the
    /// `Dist(P, n_k)` of Lemmas 3.1/3.2, i.e. the radius of this entry's
    /// *certain area*.
    pub fn farthest_distance(&self) -> f64 {
        self.neighbors
            .last()
            .map(|n| self.query_location.dist(n.position))
            .unwrap_or(0.0)
    }

    /// Truncates to at most `capacity` nearest entries.
    pub fn truncate(&mut self, capacity: usize) {
        self.neighbors.truncate(capacity);
    }
}

/// Common interface of the host-side caches.
pub trait QueryCache {
    /// Stores a fresh query result (evicting per the policy).
    fn store(&mut self, entry: CacheEntry);
    /// All live entries, most recent first.
    fn entries(&self) -> Vec<&CacheEntry>;
    /// The NN-object capacity (the paper's `C_size`); server queries fetch
    /// this many NNs.
    fn capacity(&self) -> usize;
    /// Drops everything.
    fn clear(&mut self);
}

/// The paper's policy: only the most recent query's certain NNs are kept,
/// truncated to the capacity.
///
/// ```
/// use senn_cache::{CacheEntry, CachedNn, MostRecentCache, QueryCache};
/// use senn_geom::Point;
///
/// let mut cache = MostRecentCache::new(10);
/// cache.store(CacheEntry::new(
///     Point::new(5.0, 5.0),
///     vec![CachedNn { poi_id: 3, position: Point::new(6.0, 5.0) }],
/// ));
/// assert_eq!(cache.entry().unwrap().farthest_distance(), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct MostRecentCache {
    capacity: usize,
    entry: Option<CacheEntry>,
}

impl MostRecentCache {
    /// Creates an empty cache with NN capacity `capacity` (`C_size`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        MostRecentCache {
            capacity,
            entry: None,
        }
    }

    /// The single stored entry, if any.
    pub fn entry(&self) -> Option<&CacheEntry> {
        self.entry.as_ref()
    }
}

impl QueryCache for MostRecentCache {
    fn store(&mut self, mut entry: CacheEntry) {
        entry.truncate(self.capacity);
        if entry.is_empty() {
            return; // nothing certain to share; keep the previous result
        }
        self.entry = Some(entry);
    }

    fn entries(&self) -> Vec<&CacheEntry> {
        self.entry.iter().collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn clear(&mut self) {
        self.entry = None;
    }
}

/// Extension: keeps several past query results under a shared NN-object
/// budget, evicting the least recently stored.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    entries: std::collections::VecDeque<CacheEntry>,
}

impl LruCache {
    /// Creates an empty cache with a total NN-object budget of `capacity`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        LruCache {
            capacity,
            entries: std::collections::VecDeque::new(),
        }
    }

    fn total_items(&self) -> usize {
        self.entries.iter().map(|e| e.len()).sum()
    }

    /// Iterates the live entries most recent first — the same order
    /// [`QueryCache::entries`] returns, without allocating the `Vec`.
    pub fn iter(&self) -> LruIter<'_> {
        LruIter(self.entries.iter())
    }
}

/// Non-allocating iterator over an [`LruCache`]'s entries, most recent
/// first (see [`LruCache::iter`]).
pub struct LruIter<'a>(std::collections::vec_deque::Iter<'a, CacheEntry>);

impl<'a> Iterator for LruIter<'a> {
    type Item = &'a CacheEntry;

    fn next(&mut self) -> Option<&'a CacheEntry> {
        self.0.next()
    }
}

impl QueryCache for LruCache {
    fn store(&mut self, mut entry: CacheEntry) {
        entry.truncate(self.capacity);
        if entry.is_empty() {
            return;
        }
        self.entries.push_front(entry);
        while self.total_items() > self.capacity {
            // Evict oldest entries until within budget; if the newest entry
            // alone exceeds the budget it was truncated above.
            if self.entries.len() == 1 {
                break;
            }
            self.entries.pop_back();
        }
    }

    fn entries(&self) -> Vec<&CacheEntry> {
        self.entries.iter().collect()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_and_expiry() {
        let e = CacheEntry::new(Point::ORIGIN, vec![]).at_time(100.0);
        assert_eq!(e.timestamp, 100.0);
        assert!(!e.is_expired(150.0, 60.0));
        assert!(e.is_expired(200.0, 60.0));
        // Default entries carry timestamp 0 and expire per the same rule.
        let d = CacheEntry::new(Point::ORIGIN, vec![]);
        assert!(d.is_expired(100.0, 50.0));
    }

    fn nn(id: u64, x: f64, y: f64) -> CachedNn {
        CachedNn {
            poi_id: id,
            position: Point::new(x, y),
        }
    }

    #[test]
    fn entry_sorts_neighbors() {
        let e = CacheEntry::new(
            Point::ORIGIN,
            vec![nn(1, 5.0, 0.0), nn(2, 1.0, 0.0), nn(3, 3.0, 0.0)],
        );
        let ids: Vec<u64> = e.neighbors.iter().map(|n| n.poi_id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert_eq!(e.farthest_distance(), 5.0);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn empty_entry_farthest_is_zero() {
        let e = CacheEntry::new(Point::ORIGIN, vec![]);
        assert!(e.is_empty());
        assert_eq!(e.farthest_distance(), 0.0);
    }

    #[test]
    fn most_recent_replaces_and_truncates() {
        let mut c = MostRecentCache::new(2);
        assert_eq!(c.capacity(), 2);
        c.store(CacheEntry::new(Point::ORIGIN, vec![nn(1, 1.0, 0.0)]));
        c.store(CacheEntry::new(
            Point::new(10.0, 0.0),
            vec![nn(2, 11.0, 0.0), nn(3, 12.0, 0.0), nn(4, 13.0, 0.0)],
        ));
        let e = c.entry().unwrap();
        assert_eq!(e.query_location, Point::new(10.0, 0.0));
        assert_eq!(e.len(), 2, "truncated to capacity");
        assert_eq!(e.neighbors[0].poi_id, 2);
    }

    #[test]
    fn most_recent_keeps_old_on_empty_store() {
        let mut c = MostRecentCache::new(3);
        c.store(CacheEntry::new(Point::ORIGIN, vec![nn(1, 1.0, 0.0)]));
        c.store(CacheEntry::new(Point::new(5.0, 5.0), vec![]));
        assert_eq!(c.entry().unwrap().neighbors[0].poi_id, 1);
        c.clear();
        assert!(c.entry().is_none());
        assert!(c.entries().is_empty());
    }

    #[test]
    fn lru_evicts_oldest_under_budget() {
        let mut c = LruCache::new(4);
        c.store(CacheEntry::new(
            Point::ORIGIN,
            vec![nn(1, 1.0, 0.0), nn(2, 2.0, 0.0)],
        ));
        c.store(CacheEntry::new(
            Point::new(9.0, 0.0),
            vec![nn(3, 8.0, 0.0), nn(4, 7.0, 0.0)],
        ));
        assert_eq!(c.entries().len(), 2);
        // Third entry of 2 pushes total to 6 > 4: the oldest goes.
        c.store(CacheEntry::new(
            Point::new(20.0, 0.0),
            vec![nn(5, 21.0, 0.0), nn(6, 22.0, 0.0)],
        ));
        let entries = c.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].neighbors[0].poi_id, 5, "most recent first");
        assert_eq!(entries[1].neighbors[0].poi_id, 3);
    }

    #[test]
    fn lru_single_giant_entry_is_truncated_not_dropped() {
        let mut c = LruCache::new(2);
        c.store(CacheEntry::new(
            Point::ORIGIN,
            vec![nn(1, 1.0, 0.0), nn(2, 2.0, 0.0), nn(3, 3.0, 0.0)],
        ));
        assert_eq!(c.entries().len(), 1);
        assert_eq!(c.entries()[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MostRecentCache::new(0);
    }

    #[test]
    fn lru_iter_matches_entries_order() {
        let mut c = LruCache::new(6);
        for i in 0..3u64 {
            c.store(CacheEntry::new(
                Point::new(i as f64, 0.0),
                vec![nn(i, i as f64 + 1.0, 0.0)],
            ));
        }
        let via_iter: Vec<&CacheEntry> = c.iter().collect();
        assert_eq!(via_iter, c.entries(), "iter() mirrors entries()");
        assert_eq!(via_iter[0].neighbors[0].poi_id, 2, "most recent first");
    }
}
