//! Property tests for the geometry substrate's interval/arc machinery and
//! coverage predicates, checked against naive dense-sampling models.

use proptest::prelude::*;
use senn_geom::arcset::ArcSet;
use senn_geom::interval::IntervalSet;
use senn_geom::{Circle, ConvexPolygon, DiskRegion, Point, PolygonRegion};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// IntervalSet subtraction behaves like subtracting from a dense grid
    /// of sample points.
    #[test]
    fn interval_subtraction_matches_sampling(
        cuts in prop::collection::vec((0.0..100.0f64, 0.0..30.0f64), 0..12)
    ) {
        let mut set = IntervalSet::single(0.0, 100.0);
        for &(lo, w) in &cuts {
            set.subtract(lo, lo + w);
        }
        // Dense samples: a point survives iff it is in no cut.
        const N: usize = 2000;
        let mut survived = 0usize;
        for i in 0..N {
            let x = 100.0 * (i as f64 + 0.5) / N as f64;
            let cut = cuts.iter().any(|&(lo, w)| x >= lo && x <= lo + w);
            if !cut {
                survived += 1;
            }
            if !cut {
                // The set must contain x.
                prop_assert!(
                    set.spans().iter().any(|&(a, b)| x >= a - 1e-9 && x <= b + 1e-9),
                    "sample {x} missing from spans {:?}",
                    set.spans()
                );
            }
        }
        let sampled_len = 100.0 * survived as f64 / N as f64;
        prop_assert!((set.total_len() - sampled_len).abs() < 0.5, "length mismatch");
    }

    /// Spans stay sorted, disjoint and within the original interval.
    #[test]
    fn interval_invariants(
        cuts in prop::collection::vec((-10.0..110.0f64, 0.0..40.0f64), 0..16)
    ) {
        let mut set = IntervalSet::single(0.0, 100.0);
        for &(lo, w) in &cuts {
            set.subtract(lo, lo + w);
            let spans = set.spans();
            for s in spans {
                prop_assert!(s.0 <= s.1);
                prop_assert!(s.0 >= -1e-9 && s.1 <= 100.0 + 1e-9);
            }
            for w2 in spans.windows(2) {
                prop_assert!(w2[0].1 <= w2[1].0 + 1e-12, "overlapping spans");
            }
        }
    }

    /// ArcSet subtraction matches angular sampling on the circle.
    #[test]
    fn arcset_matches_sampling(
        target in (0.0..std::f64::consts::TAU, 0.05..3.0f64),
        cuts in prop::collection::vec((0.0..std::f64::consts::TAU, 0.0..2.5f64), 0..8)
    ) {
        let mut arc = ArcSet::from_arc(target.0, target.1);
        for &(c, hw) in &cuts {
            arc.subtract_arc(c, hw);
        }
        const N: usize = 1440;
        let tau = std::f64::consts::TAU;
        let ang_diff = |a: f64, b: f64| {
            let d = (a - b).rem_euclid(tau);
            d.min(tau - d)
        };
        let mut survived = 0usize;
        for i in 0..N {
            let th = tau * (i as f64 + 0.5) / N as f64;
            let in_target = ang_diff(th, target.0) <= target.1;
            let cut = cuts.iter().any(|&(c, hw)| ang_diff(th, c) <= hw);
            if in_target && !cut {
                survived += 1;
            }
        }
        let sampled = tau * survived as f64 / N as f64;
        prop_assert!(
            (arc.total_len() - sampled).abs() < 0.05,
            "arc len {} vs sampled {}",
            arc.total_len(),
            sampled
        );
    }

    /// Inscribed polygons never leave their circle, for any phase/size.
    #[test]
    fn inscribed_polygon_inside_disk(
        cx in -50.0..50.0f64,
        cy in -50.0..50.0f64,
        r in 0.1..40.0f64,
        n in 3usize..48,
        phase in 0.0..std::f64::consts::TAU,
    ) {
        let c = Circle::new(Point::new(cx, cy), r);
        let poly = ConvexPolygon::inscribed_in(&c, n, phase);
        for &v in poly.vertices() {
            prop_assert!(c.contains_point(v) || c.center.dist(v) <= r + 1e-9);
        }
        prop_assert!(poly.area() <= c.area() + 1e-9);
        // Edge midpoints are strictly inside for n >= 3.
        for seg in poly.edges() {
            prop_assert!(c.contains_point(seg.at(0.5)));
        }
    }

    /// Union area via Green's theorem matches Monte-Carlo estimation for
    /// arbitrary overlapping polygonized disks.
    #[test]
    fn union_area_matches_monte_carlo(
        disks in prop::collection::vec((10.0..90.0f64, 10.0..90.0f64, 5.0..25.0f64), 1..5)
    ) {
        let circles: Vec<Circle> =
            disks.iter().map(|&(x, y, r)| Circle::new(Point::new(x, y), r)).collect();
        let region = PolygonRegion::from_circles(&circles, 24);
        let analytic = region.union_area();
        // Deterministic grid sampling over the region's bounding box.
        let min_x = circles.iter().map(|c| c.center.x - c.radius).fold(f64::MAX, f64::min);
        let min_y = circles.iter().map(|c| c.center.y - c.radius).fold(f64::MAX, f64::min);
        let max_x = circles.iter().map(|c| c.center.x + c.radius).fold(f64::MIN, f64::max);
        let max_y = circles.iter().map(|c| c.center.y + c.radius).fold(f64::MIN, f64::max);
        let span = (max_x - min_x).max(max_y - min_y).max(1.0);
        const N: usize = 150;
        let cell = span / N as f64;
        let mut hits = 0usize;
        for ix in 0..N {
            for iy in 0..N {
                let p = Point::new(
                    min_x + (ix as f64 + 0.5) * cell,
                    min_y + (iy as f64 + 0.5) * cell,
                );
                if region.covers_point(p) {
                    hits += 1;
                }
            }
        }
        let sampled = hits as f64 * cell * cell;
        // Grid resolution bounds the error by ~perimeter * cell.
        let tol = 16.0 * circles.iter().map(|c| c.radius).sum::<f64>() * cell + 1.0;
        prop_assert!(
            (analytic - sampled).abs() < tol,
            "analytic {analytic} vs sampled {sampled} (tol {tol})"
        );
    }

    /// DiskRegion::covers_point is exactly "inside some disk".
    #[test]
    fn disk_region_point_coverage(
        disks in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64, 1.0..30.0f64), 1..6),
        px in 0.0..100.0f64,
        py in 0.0..100.0f64,
    ) {
        let circles: Vec<Circle> =
            disks.iter().map(|&(x, y, r)| Circle::new(Point::new(x, y), r)).collect();
        let region = DiskRegion::from_circles(&circles);
        let p = Point::new(px, py);
        let want = circles.iter().any(|c| c.contains_point(p));
        prop_assert_eq!(region.covers_point(p), want);
    }
}
