#![warn(missing_docs)]
//! # senn-geom
//!
//! Two-dimensional geometry substrate for the `mobishare-senn` workspace, a
//! reproduction of *"Location-based Spatial Queries with Data Sharing in
//! Mobile Environments"* (Ku, Zimmermann & Wan, ICDE 2006).
//!
//! The paper's verification machinery is built on a handful of geometric
//! primitives and predicates:
//!
//! * [`Point`] — locations of mobile hosts and points of interest.
//! * [`Rect`] — minimum bounding rectangles with the `MINDIST` / `MAXDIST`
//!   metrics used by the R\*-tree (`senn-rtree`) and by the paper's EINN
//!   pruning rules (Section 3.3).
//! * [`Circle`] — peer *certain-area* disks and candidate verification
//!   circles (Lemmas 3.1–3.8).
//! * [`ConvexPolygon`] — inscribed polygonizations of certain-area circles
//!   (the paper's polygonization step, Section 3.2.2).
//! * [`PolygonRegion`] — the merged certain region `R_c`. The paper merges
//!   polygons with the MapOverlay algorithm; we answer the only query the
//!   verification needs (`does the region cover this circle?`) against the
//!   *implicit* union, which computes exactly the overlay boundary pieces
//!   the test consumes. See `DESIGN.md` §2 for the substitution argument.
//! * [`DiskRegion`] — an *exact* circle-union coverage test over the arc
//!   arrangement; an extension used as an ablation baseline for the
//!   polygonization approach.
//!
//! All coordinates are `f64`. The crate is `no_std`-agnostic in spirit but
//! uses `std` floats throughout; predicates take an explicit epsilon where
//! robustness matters.

pub mod arcset;
pub mod circle;
pub mod interval;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod region;
pub mod segment;

pub use circle::Circle;
pub use point::Point;
pub use polygon::ConvexPolygon;
pub use rect::Rect;
pub use region::{DiskRegion, PolygonRegion};
pub use segment::Segment;

/// Default tolerance used by geometric predicates in this workspace.
///
/// Simulation areas are a few tens of miles (tens of thousands of meters),
/// so `1e-9` in working units is far below any physically meaningful
/// distance while staying well above `f64` noise for the magnitudes used.
pub const EPS: f64 = 1e-9;
