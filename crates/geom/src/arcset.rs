//! Angular interval sets on a circle.
//!
//! Used by the exact disk-union coverage test ([`crate::region::DiskRegion`]):
//! for every disk boundary we track which angular sections are covered by
//! the other disks, working on normalized angles in `[0, 2π)` and splitting
//! wrapping arcs into at most two linear intervals.

use crate::interval::IntervalSet;

const TAU: f64 = std::f64::consts::TAU;

/// A set of angular intervals on `[0, 2π)`.
#[derive(Clone, Debug, Default)]
pub struct ArcSet {
    set: IntervalSet,
}

/// Normalizes an angle into `[0, 2π)`.
pub fn normalize_angle(theta: f64) -> f64 {
    let t = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself for inputs like -1e-18.
    if t >= TAU {
        0.0
    } else {
        t
    }
}

impl ArcSet {
    /// The empty set of arcs.
    pub fn new() -> Self {
        ArcSet {
            set: IntervalSet::new(),
        }
    }

    /// The full circle.
    pub fn full() -> Self {
        ArcSet {
            set: IntervalSet::single(0.0, TAU),
        }
    }

    /// The arc centered at `center` (radians) extending `half_width` to each
    /// side. A half-width of `π` or more yields the full circle.
    pub fn from_arc(center: f64, half_width: f64) -> Self {
        if half_width <= 0.0 {
            return ArcSet::new();
        }
        if half_width >= std::f64::consts::PI {
            return ArcSet::full();
        }
        let lo = normalize_angle(center - half_width);
        let hi = lo + 2.0 * half_width;
        let mut set = IntervalSet::single(lo, hi.min(TAU));
        if hi > TAU {
            // Wraps past 2π: add the leading piece.
            let wrapped = IntervalSet::single(0.0, hi - TAU);
            for &(a, b) in wrapped.spans() {
                // IntervalSet has no union op; emulate by collecting spans.
                set = merge(set, a, b);
            }
        }
        ArcSet { set }
    }

    /// Removes the arc centered at `center` with the given `half_width`.
    pub fn subtract_arc(&mut self, center: f64, half_width: f64) {
        if half_width <= 0.0 {
            return;
        }
        if half_width >= std::f64::consts::PI {
            self.set = IntervalSet::new();
            return;
        }
        let lo = normalize_angle(center - half_width);
        let hi = lo + 2.0 * half_width;
        self.set.subtract(lo, hi.min(TAU));
        if hi > TAU {
            self.set.subtract(0.0, hi - TAU);
        }
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Total angular measure of the remaining arcs (radians).
    pub fn total_len(&self) -> f64 {
        self.set.total_len()
    }

    /// True when some remaining arc is wider than `eps` radians.
    ///
    /// Note: an arc that wraps across 0 is stored as two pieces, so the
    /// check is conservative by at most a factor of two — acceptable for
    /// the refutation tests this type serves.
    pub fn has_span_longer_than(&self, eps: f64) -> bool {
        self.set.has_span_longer_than(eps)
    }

    /// An angle inside the widest remaining arc, if any.
    pub fn witness(&self) -> Option<f64> {
        self.set.longest_span_midpoint()
    }
}

/// Adds `[a, b]` to `set` (helper: `IntervalSet` only supports subtraction,
/// so we rebuild by subtracting the complement from the full range).
fn merge(set: IntervalSet, a: f64, b: f64) -> IntervalSet {
    let mut spans: Vec<(f64, f64)> = set.spans().to_vec();
    spans.push((a, b));
    spans.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let mut full = IntervalSet::single(0.0, TAU);
    // Subtract the complement of the merged spans.
    let mut cursor = 0.0_f64;
    let mut gaps = Vec::new();
    let mut end = 0.0_f64;
    for (lo, hi) in spans {
        if lo > end {
            gaps.push((cursor.max(end), lo));
        }
        end = end.max(hi);
        cursor = cursor.max(end);
    }
    if end < TAU {
        gaps.push((end, TAU));
    }
    for (lo, hi) in gaps {
        full.subtract(lo, hi);
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert!((normalize_angle(TAU + 1.0) - 1.0).abs() < 1e-12);
        assert!((normalize_angle(-1.0) - (TAU - 1.0)).abs() < 1e-12);
        assert_eq!(normalize_angle(TAU), 0.0);
    }

    #[test]
    fn full_and_empty() {
        assert!((ArcSet::full().total_len() - TAU).abs() < 1e-12);
        assert!(ArcSet::new().is_empty());
        assert!(ArcSet::from_arc(1.0, 0.0).is_empty());
        assert!((ArcSet::from_arc(1.0, 10.0).total_len() - TAU).abs() < 1e-12);
    }

    #[test]
    fn simple_arc() {
        let a = ArcSet::from_arc(1.0, 0.5);
        assert!((a.total_len() - 1.0).abs() < 1e-12);
        assert!(a.has_span_longer_than(0.9));
        assert!(!a.has_span_longer_than(1.1));
    }

    #[test]
    fn wrapping_arc() {
        // Arc centered at 0 with half width 0.5 wraps: [2π-0.5, 2π) ∪ [0, 0.5].
        let a = ArcSet::from_arc(0.0, 0.5);
        assert!((a.total_len() - 1.0).abs() < 1e-12);
        let mut b = ArcSet::full();
        b.subtract_arc(0.0, 0.5);
        assert!((b.total_len() - (TAU - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn subtract_covering_everything() {
        let mut a = ArcSet::from_arc(1.0, 0.5);
        a.subtract_arc(1.0, 0.6);
        assert!(a.is_empty());
    }

    #[test]
    fn subtract_wrapping_from_plain() {
        // Target [1, 2]; subtract a wrapping arc that eats [0, 1.5].
        let mut a = ArcSet::from_arc(1.5, 0.5);
        a.subtract_arc(0.25, 1.25); // covers [2π-1, 2π) ∪ [0, 1.5]
        assert!((a.total_len() - 0.5).abs() < 1e-12);
        let w = a.witness().unwrap();
        assert!(w > 1.5 && w < 2.0);
    }

    #[test]
    fn two_halves_cover_circle() {
        let mut a = ArcSet::full();
        a.subtract_arc(0.0, PI / 2.0 + 0.01);
        a.subtract_arc(PI, PI / 2.0 + 0.01);
        assert!(!a.has_span_longer_than(1e-9));
    }

    #[test]
    fn two_halves_with_gap_leave_slivers() {
        let mut a = ArcSet::full();
        a.subtract_arc(0.0, PI / 2.0 - 0.05);
        a.subtract_arc(PI, PI / 2.0 - 0.05);
        // Two slivers of width 0.1 each remain.
        assert!((a.total_len() - 0.2).abs() < 1e-9);
        assert!(a.has_span_longer_than(0.05));
    }
}
