//! One-dimensional interval sets on a line parameter.
//!
//! The implicit-union coverage test ([`crate::region::PolygonRegion`])
//! walks every polygon edge, starts from the parameter interval of the edge
//! that lies inside the candidate circle, and *subtracts* the sub-intervals
//! covered by the other polygons. Whatever survives is exposed boundary of
//! the union — a witness that the circle is not covered.

/// A set of disjoint, sorted, closed intervals `[lo, hi]` on the real line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSet {
    /// Invariant: sorted by `lo`, pairwise disjoint, each with `lo <= hi`.
    spans: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { spans: Vec::new() }
    }

    /// The single interval `[lo, hi]`; empty if `lo > hi`.
    pub fn single(lo: f64, hi: f64) -> Self {
        let mut s = IntervalSet::new();
        if lo <= hi {
            s.spans.push((lo, hi));
        }
        s
    }

    /// True when no interval remains.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total length of the remaining intervals.
    pub fn total_len(&self) -> f64 {
        self.spans.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// The remaining spans, sorted and disjoint.
    pub fn spans(&self) -> &[(f64, f64)] {
        &self.spans
    }

    /// Removes `[lo, hi]` from the set. No-op if `lo > hi`.
    pub fn subtract(&mut self, lo: f64, hi: f64) {
        if lo > hi || self.spans.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.spans.len() + 1);
        for &(a, b) in &self.spans {
            if b < lo || a > hi {
                out.push((a, b)); // untouched
                continue;
            }
            if a < lo {
                out.push((a, lo));
            }
            if b > hi {
                out.push((hi, b));
            }
        }
        self.spans = out;
    }

    /// True when some remaining interval is longer than `eps`.
    pub fn has_span_longer_than(&self, eps: f64) -> bool {
        self.spans.iter().any(|(lo, hi)| hi - lo > eps)
    }

    /// Midpoint of the longest remaining interval, if any.
    pub fn longest_span_midpoint(&self) -> Option<f64> {
        self.spans
            .iter()
            .max_by(|a, b| (a.1 - a.0).partial_cmp(&(b.1 - b.0)).unwrap())
            .map(|(lo, hi)| (lo + hi) * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_degenerate_and_inverted() {
        assert_eq!(IntervalSet::single(1.0, 1.0).total_len(), 0.0);
        assert!(!IntervalSet::single(1.0, 1.0).is_empty());
        assert!(IntervalSet::single(2.0, 1.0).is_empty());
    }

    #[test]
    fn subtract_middle_splits() {
        let mut s = IntervalSet::single(0.0, 10.0);
        s.subtract(3.0, 7.0);
        assert_eq!(s.spans(), &[(0.0, 3.0), (7.0, 10.0)]);
        assert!((s.total_len() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn subtract_ends() {
        let mut s = IntervalSet::single(0.0, 10.0);
        s.subtract(-5.0, 2.0);
        s.subtract(8.0, 15.0);
        assert_eq!(s.spans(), &[(2.0, 8.0)]);
    }

    #[test]
    fn subtract_everything() {
        let mut s = IntervalSet::single(0.0, 10.0);
        s.subtract(-1.0, 11.0);
        assert!(s.is_empty());
        assert!(!s.has_span_longer_than(0.0));
    }

    #[test]
    fn subtract_disjoint_is_noop() {
        let mut s = IntervalSet::single(0.0, 1.0);
        s.subtract(2.0, 3.0);
        assert_eq!(s.spans(), &[(0.0, 1.0)]);
    }

    #[test]
    fn repeated_subtractions_accumulate() {
        let mut s = IntervalSet::single(0.0, 1.0);
        for i in 0..10 {
            let lo = i as f64 * 0.1;
            s.subtract(lo, lo + 0.05);
        }
        assert!((s.total_len() - 0.5).abs() < 1e-9);
        assert_eq!(s.spans().len(), 10);
        assert!(s.has_span_longer_than(0.04));
        assert!(!s.has_span_longer_than(0.06));
    }

    #[test]
    fn longest_span_midpoint() {
        let mut s = IntervalSet::single(0.0, 10.0);
        s.subtract(1.0, 2.0); // leaves [0,1] and [2,10]
        assert_eq!(s.longest_span_midpoint(), Some(6.0));
        assert_eq!(IntervalSet::new().longest_span_midpoint(), None);
    }
}
