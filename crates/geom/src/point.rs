//! Points and elementary vector operations.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the Euclidean plane.
///
/// The paper identifies an object with its position coordinates
/// (footnote 1), so `Point` doubles as the location type for mobile hosts,
/// cached query locations and points of interest.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate (meters in the simulator).
    pub x: f64,
    /// Vertical coordinate (meters in the simulator).
    pub y: f64,
}

impl Point {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` — the `Dist(·,·)` of the paper.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm when `self` is interpreted as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dist(Point::ORIGIN)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product `self × other`.
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Unit vector in the direction of `self`, or `None` for a (near-)zero
    /// vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle of the vector in radians, in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
///
/// Returns a positive value when `c` is to the left of the directed line
/// `a -> b`, negative to the right, and (near) zero when collinear.
#[inline]
pub fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(b.dist(a), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Point::new(1.0, 0.0);
        assert_eq!(v.perp(), Point::new(0.0, 1.0));
        // Rotating twice flips the sign.
        assert_eq!(v.perp().perp(), -v);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(0.0, 2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(u, Point::new(0.0, 1.0));
    }

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(orient(a, b, Point::new(0.5, 1.0)) > 0.0);
        assert!(orient(a, b, Point::new(0.5, -1.0)) < 0.0);
        assert_eq!(orient(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn angle_quadrants() {
        assert!((Point::new(1.0, 0.0).angle() - 0.0).abs() < 1e-12);
        assert!((Point::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Point::new(-1.0, 0.0).angle() - std::f64::consts::PI).abs() < 1e-12);
    }
}
