//! Axis-aligned rectangles (minimum bounding rectangles).
//!
//! `Rect` carries the two distance metrics the paper's server-side search
//! needs: `MINDIST` (classic R-tree NN pruning, Roussopoulos et al.) and
//! `MAXDIST` (the extra metric Section 3.3 adds so EINN can discard MBRs
//! that are *totally covered* by the already-verified circle `C_r`).

use crate::point::Point;

/// An axis-aligned rectangle, stored as inclusive min/max corners.
///
/// An empty rectangle (used as the identity for [`Rect::union`]) has
/// `min > max` in both dimensions; see [`Rect::EMPTY`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// The empty rectangle: the identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a rectangle from two corner points (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Smallest rectangle containing every point of the iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Rect::EMPTY, |r, p| r.union(Rect::from_point(p)))
    }

    /// True when the rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (x-extent); zero for empty rectangles.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y-extent); zero for empty rectangles.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter; the *margin* minimized by the R\*-tree split axis
    /// selection.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Area of the intersection with `other` (the *overlap* minimized by the
    /// R\*-tree ChooseSubtree heuristic).
    pub fn overlap_area(&self, other: Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Increase in area needed to absorb `other`.
    #[inline]
    pub fn enlargement(&self, other: Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self` (boundary allowed).
    pub fn contains_rect(&self, other: Rect) -> bool {
        other.is_empty()
            || (self.min.x <= other.min.x
                && self.min.y <= other.min.y
                && self.max.x >= other.max.x
                && self.max.y >= other.max.y)
    }

    /// True when the rectangles share at least one point.
    pub fn intersects(&self, other: Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Squared `MINDIST(q, self)`: squared distance from `q` to the closest
    /// point of the rectangle (zero when `q` is inside).
    pub fn min_dist_sq(&self, q: Point) -> f64 {
        let dx = (self.min.x - q.x).max(0.0).max(q.x - self.max.x);
        let dy = (self.min.y - q.y).max(0.0).max(q.y - self.max.y);
        dx * dx + dy * dy
    }

    /// `MINDIST(q, self)` from Roussopoulos et al.: a lower bound on the
    /// distance from `q` to any object inside the rectangle.
    #[inline]
    pub fn min_dist(&self, q: Point) -> f64 {
        self.min_dist_sq(q).sqrt()
    }

    /// Squared `MAXDIST(q, self)`: squared distance from `q` to the farthest
    /// point of the rectangle.
    pub fn max_dist_sq(&self, q: Point) -> f64 {
        let dx = (q.x - self.min.x).abs().max((q.x - self.max.x).abs());
        let dy = (q.y - self.min.y).abs().max((q.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// `MAXDIST(q, self)`: an upper bound on the distance from `q` to any
    /// object inside the rectangle. Section 3.3 uses it for downward
    /// pruning: an MBR with `MAXDIST` below the branch-expanding lower bound
    /// is totally covered by the certain circle `C_r` and need not be
    /// expanded.
    #[inline]
    pub fn max_dist(&self, q: Point) -> f64 {
        self.max_dist_sq(q).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn new_normalizes_corners() {
        let a = r(3.0, 4.0, 1.0, 2.0);
        assert_eq!(a.min, Point::new(1.0, 2.0));
        assert_eq!(a.max, Point::new(3.0, 4.0));
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_rect_identity() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.union(a), a);
        assert_eq!(a.union(Rect::EMPTY), a);
        assert!(!Rect::EMPTY.intersects(a));
        assert!(a.contains_rect(Rect::EMPTY));
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        let u = a.union(b);
        assert_eq!(u, r(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(b), 9.0 - 1.0);
        assert_eq!(a.enlargement(a), 0.0);
    }

    #[test]
    fn overlap_area_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.overlap_area(r(1.0, 1.0, 3.0, 3.0)), 1.0);
        assert_eq!(a.overlap_area(r(2.0, 0.0, 3.0, 1.0)), 0.0); // touching edge
        assert_eq!(a.overlap_area(r(5.0, 5.0, 6.0, 6.0)), 0.0); // disjoint
        assert_eq!(a.overlap_area(a), 4.0);
    }

    #[test]
    fn containment_and_intersection() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_point(Point::new(0.0, 0.0)));
        assert!(a.contains_point(Point::new(4.0, 4.0)));
        assert!(!a.contains_point(Point::new(4.0, 4.1)));
        assert!(a.contains_rect(r(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_rect(r(1.0, 1.0, 5.0, 2.0)));
        assert!(a.intersects(r(4.0, 4.0, 5.0, 5.0))); // corner touch
        assert!(!a.intersects(r(4.1, 4.1, 5.0, 5.0)));
    }

    #[test]
    fn mindist_inside_is_zero() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist(Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn mindist_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // Directly right of the rect.
        assert_eq!(a.min_dist(Point::new(5.0, 1.0)), 3.0);
        // Diagonal from the corner.
        assert_eq!(a.min_dist(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn maxdist_is_distance_to_farthest_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // From the center, the farthest point is any corner at sqrt(2).
        assert!((a.max_dist(Point::new(1.0, 1.0)) - 2f64.sqrt()).abs() < 1e-12);
        // From outside, the opposite corner.
        assert_eq!(a.max_dist(Point::new(-1.0, 0.0)), (9f64 + 4.0).sqrt());
    }

    #[test]
    fn maxdist_dominates_mindist() {
        let a = r(-3.0, 1.0, 7.0, 9.0);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(100.0, -40.0),
            Point::new(2.0, 5.0),
            Point::new(-3.0, 1.0),
        ] {
            assert!(a.max_dist(q) >= a.min_dist(q));
        }
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 3.0),
        ];
        let bb = Rect::from_points(pts);
        for p in pts {
            assert!(bb.contains_point(p));
        }
        assert_eq!(bb, r(-2.0, 0.5, 3.0, 5.0));
    }
}
