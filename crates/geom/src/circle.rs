//! Circles (disks).
//!
//! Two families of circles drive the paper's verification logic:
//!
//! * the *certain-area* disk of a peer `P` — center `P`, radius
//!   `Dist(P, n_k)` to its cached farthest nearest neighbor — inside which
//!   `P`'s cache enumerates **all** points of interest, and
//! * the *candidate* disk of the querier `Q` — center `Q`, radius
//!   `Dist(Q, n_i)` — which must be covered by the certain region for the
//!   candidate `n_i` to be a certain nearest neighbor (Lemma 3.8).

use crate::point::Point;
use crate::rect::Rect;

/// A circle, interpreted as the closed disk it bounds unless noted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Radii are clamped to be non-negative.
    pub fn new(center: Point, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// True when `p` lies inside or on the circle.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// True when `p` lies strictly inside the circle (by more than `eps`).
    #[inline]
    pub fn contains_point_strict(&self, p: Point, eps: f64) -> bool {
        self.center.dist(p) < self.radius - eps
    }

    /// True when the closed disk `other` lies entirely inside this closed
    /// disk: `dist(centers) + r_other <= r_self`.
    #[inline]
    pub fn contains_circle(&self, other: &Circle) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius
    }

    /// True when the two closed disks share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        self.center.dist_sq(other.center)
            <= (self.radius + other.radius) * (self.radius + other.radius)
    }

    /// Axis-aligned bounding box of the disk.
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// The point on the circle at angle `theta` (radians, measured from the
    /// positive x-axis).
    #[inline]
    pub fn point_at(&self, theta: f64) -> Point {
        Point::new(
            self.center.x + self.radius * theta.cos(),
            self.center.y + self.radius * theta.sin(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_radius_clamps_to_zero() {
        let c = Circle::new(Point::ORIGIN, -3.0);
        assert_eq!(c.radius, 0.0);
        assert!(c.contains_point(Point::ORIGIN));
        assert!(!c.contains_point(Point::new(0.1, 0.0)));
    }

    #[test]
    fn contains_point_boundary_inclusive() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains_point(Point::new(3.0, 1.0)));
        assert!(c.contains_point(Point::new(1.0, 1.0)));
        assert!(!c.contains_point(Point::new(3.1, 1.0)));
    }

    #[test]
    fn strict_containment_excludes_boundary() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(!c.contains_point_strict(Point::new(1.0, 0.0), 1e-12));
        assert!(c.contains_point_strict(Point::new(0.5, 0.0), 1e-12));
    }

    #[test]
    fn circle_in_circle() {
        let big = Circle::new(Point::ORIGIN, 5.0);
        let small = Circle::new(Point::new(2.0, 0.0), 3.0); // internally tangent
        assert!(big.contains_circle(&small));
        let out = Circle::new(Point::new(2.0, 0.0), 3.5);
        assert!(!big.contains_circle(&out));
        // A disk contains itself.
        assert!(big.contains_circle(&big));
    }

    #[test]
    fn intersection_including_tangency() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        let b = Circle::new(Point::new(2.0, 0.0), 1.0); // externally tangent
        assert!(a.intersects(&b));
        let c = Circle::new(Point::new(2.01, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(1.0, -1.0), 2.0);
        let bb = c.bounding_rect();
        assert_eq!(bb.min, Point::new(-1.0, -3.0));
        assert_eq!(bb.max, Point::new(3.0, 1.0));
    }

    #[test]
    fn point_at_angles() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        let e = c.point_at(0.0);
        assert!((e.x - 3.0).abs() < 1e-12 && (e.y - 1.0).abs() < 1e-12);
        let n = c.point_at(std::f64::consts::FRAC_PI_2);
        assert!((n.x - 1.0).abs() < 1e-12 && (n.y - 3.0).abs() < 1e-12);
    }
}
