//! Certain-region representations and circle-coverage tests.
//!
//! Lemma 3.8: with peers `P_1..P_j`, the certain region is
//! `R_c = P_1-area ∪ ... ∪ P_j-area` (each area the peer's outermost-NN
//! disk), and a candidate `n_i` is a certain NN of `Q` iff the circle
//! centered at `Q` through `n_i` is fully covered by `R_c`.
//!
//! Two interchangeable implementations:
//!
//! * [`PolygonRegion`] — the paper's polygonization approach. Disks become
//!   inscribed regular polygons (a conservative under-approximation) and
//!   coverage is answered against the implicit union: a disk `D` is covered
//!   by a union `U` of convex polygons iff `center(D) ∈ U` and no point of
//!   `∂U` lies in the open disk `int(D)`. `∂U` is exactly the sub-segments
//!   of polygon edges not covered by any *other* polygon, which we compute
//!   with 1-D interval subtraction per edge — the same boundary pieces a
//!   MapOverlay pass would produce, without maintaining a DCEL.
//! * [`DiskRegion`] — an exact test on the original disks via the arc
//!   arrangement (extension; used as an ablation baseline and as an oracle
//!   in property tests).
//!
//! Soundness direction: both tests only return `true` when the closed
//! candidate disk really is covered (`PolygonRegion` additionally
//! under-approximates each disk, so it can answer `false` for circles the
//! true region covers — the paper's approximation has the same property).

use crate::arcset::ArcSet;
use crate::circle::Circle;
use crate::interval::IntervalSet;
use crate::point::Point;
use crate::polygon::ConvexPolygon;
use crate::rect::Rect;
use crate::EPS;

/// Relative tolerance used when deduplicating source disks.
const DEDUP_EPS: f64 = 1e-12;

/// The certain region as a union of convex polygons (the paper's
/// polygonized `R_c`).
///
/// ```
/// use senn_geom::{Circle, Point, PolygonRegion};
///
/// // Two overlapping peer disks; a candidate circle needing both.
/// let region = PolygonRegion::from_circles(
///     &[
///         Circle::new(Point::new(0.0, 0.0), 1.0),
///         Circle::new(Point::new(1.0, 0.0), 1.0),
///     ],
///     32,
/// );
/// assert!(region.covers_circle(&Circle::new(Point::new(0.5, 0.0), 0.6)));
/// assert!(!region.covers_circle(&Circle::new(Point::new(0.5, 0.0), 0.95)));
/// ```
#[derive(Clone, Debug)]
pub struct PolygonRegion {
    polygons: Vec<ConvexPolygon>,
    bounds: Vec<Rect>,
}

impl PolygonRegion {
    /// Builds the region by polygonizing `circles` with inscribed regular
    /// `vertices`-gons. Duplicate and zero-radius circles are dropped.
    pub fn from_circles(circles: &[Circle], vertices: usize) -> Self {
        let deduped = dedup_circles(circles);
        let polygons: Vec<ConvexPolygon> = deduped
            .iter()
            .filter(|c| c.radius > 0.0)
            .map(|c| ConvexPolygon::inscribed_in(c, vertices, 0.0))
            .collect();
        Self::from_polygons(polygons)
    }

    /// Builds the region from pre-built convex polygons.
    pub fn from_polygons(polygons: Vec<ConvexPolygon>) -> Self {
        let bounds = polygons.iter().map(|p| p.bounding_rect()).collect();
        PolygonRegion { polygons, bounds }
    }

    /// Number of polygons forming the region.
    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// The polygons forming the region.
    pub fn polygons(&self) -> &[ConvexPolygon] {
        &self.polygons
    }

    /// True when `p` lies in the union.
    pub fn covers_point(&self, p: Point) -> bool {
        self.polygons
            .iter()
            .zip(&self.bounds)
            .any(|(poly, bb)| bb.contains_point(p) && poly.contains_point(p, EPS))
    }

    /// The exposed boundary of the union: the sub-segments of polygon
    /// edges not covered by any other polygon, each oriented as its source
    /// edge (counter-clockwise around the union). This is exactly the
    /// boundary a MapOverlay merge would output, as a segment soup.
    pub fn union_boundary(&self) -> Vec<crate::segment::Segment> {
        let mut out = Vec::new();
        for (i, poly) in self.polygons.iter().enumerate() {
            for seg in poly.edges() {
                let seg_len = seg.len();
                if seg_len <= EPS {
                    continue;
                }
                let mut exposed = IntervalSet::single(0.0, 1.0);
                for (j, other) in self.polygons.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let Some((t0, t1)) = other.clip_segment(&seg) else {
                        continue;
                    };
                    if j < i {
                        // Lower-indexed polygon wins boundary-shared
                        // pieces: subtract the whole covered interval.
                        exposed.subtract(t0, t1);
                    } else {
                        // Keep sub-intervals where the segment runs along
                        // j's boundary (collinear shared edges) so each
                        // shared piece is emitted exactly once.
                        let mut covered = IntervalSet::single(t0, t1);
                        for (s0, s1) in collinear_overlaps(&seg, other) {
                            covered.subtract(s0, s1);
                        }
                        for &(c0, c1) in covered.spans() {
                            exposed.subtract(c0, c1);
                        }
                    }
                    if exposed.is_empty() {
                        break;
                    }
                }
                for &(t0, t1) in exposed.spans() {
                    if (t1 - t0) * seg_len > EPS {
                        out.push(crate::segment::Segment::new(seg.at(t0), seg.at(t1)));
                    }
                }
            }
        }
        out
    }

    /// Area of the union, via Green's theorem over the oriented exposed
    /// boundary (`½ Σ (a × b)` over the boundary segments). Exact up to
    /// floating point for any arrangement of the member polygons —
    /// overlapping, nested or disjoint.
    pub fn union_area(&self) -> f64 {
        self.union_boundary()
            .iter()
            .map(|s| s.a.cross(s.b))
            .sum::<f64>()
            * 0.5
    }

    /// True when the closed disk bounded by `circle` is fully covered by the
    /// union (Lemma 3.8's test, on the polygonized region).
    pub fn covers_circle(&self, circle: &Circle) -> bool {
        if !self.covers_point(circle.center) {
            return false;
        }
        if circle.radius <= 0.0 {
            return true;
        }
        let target_bb = circle.bounding_rect();
        for (i, poly) in self.polygons.iter().enumerate() {
            if !self.bounds[i].intersects(target_bb) {
                continue;
            }
            for seg in poly.edges() {
                // Part of this edge inside the open candidate disk.
                let Some((c0, c1)) = seg.clip_to_open_disk(circle.center, circle.radius) else {
                    continue;
                };
                let seg_len = seg.len();
                if seg_len <= EPS {
                    continue;
                }
                let mut exposed = IntervalSet::single(c0, c1);
                for (j, other) in self.polygons.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    if let Some((t0, t1)) = other.clip_segment(&seg) {
                        exposed.subtract(t0, t1);
                        if exposed.is_empty() {
                            break;
                        }
                    }
                }
                // A surviving piece longer than EPS (as a distance) is union
                // boundary strictly inside the disk: not covered.
                if exposed.has_span_longer_than(EPS / seg_len) {
                    return false;
                }
            }
        }
        true
    }
}

/// The certain region as an exact union of disks.
#[derive(Clone, Debug)]
pub struct DiskRegion {
    disks: Vec<Circle>,
}

impl DiskRegion {
    /// Builds the region. Duplicate and zero-radius disks are dropped
    /// (duplicates would otherwise mutually erase each other's boundary in
    /// the arrangement walk).
    pub fn from_circles(circles: &[Circle]) -> Self {
        DiskRegion {
            disks: dedup_circles(circles)
                .into_iter()
                .filter(|c| c.radius > 0.0)
                .collect(),
        }
    }

    /// Number of disks forming the region.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// The disks forming the region.
    pub fn disks(&self) -> &[Circle] {
        &self.disks
    }

    /// True when `p` lies in the union.
    pub fn covers_point(&self, p: Point) -> bool {
        self.disks.iter().any(|d| d.contains_point(p))
    }

    /// Exact test: is the closed disk bounded by `circle` covered by the
    /// union of the region's disks?
    ///
    /// A closed disk `D` is covered by the closed union `U` iff
    /// `center(D) ∈ U` and `∂U ∩ int(D) = ∅`. Every point of `∂U` lies on
    /// some disk boundary and is covered by no other disk, so per disk we
    /// subtract, from the arc of its boundary inside `int(D)`, the angular
    /// intervals covered by every other disk; any surviving arc refutes
    /// coverage.
    pub fn covers_circle(&self, circle: &Circle) -> bool {
        if !self.covers_point(circle.center) {
            return false;
        }
        if circle.radius <= 0.0 {
            return true;
        }
        for (i, di) in self.disks.iter().enumerate() {
            let Some(mut arc) = boundary_inside_open_disk(di, circle) else {
                continue;
            };
            let ang_eps = EPS / di.radius;
            for (j, dj) in self.disks.iter().enumerate() {
                if i == j {
                    continue;
                }
                subtract_coverage(&mut arc, di, dj);
                if arc.is_empty() {
                    break;
                }
            }
            if arc.has_span_longer_than(ang_eps) {
                return false;
            }
        }
        true
    }
}

/// Angular section of `∂disk` lying strictly inside the open disk bounded by
/// `target`, or `None` when there is none (tangency counts as none).
fn boundary_inside_open_disk(disk: &Circle, target: &Circle) -> Option<ArcSet> {
    let d = disk.center.dist(target.center);
    let (r, rt) = (disk.radius, target.radius);
    if d >= rt + r {
        return None; // fully outside (or externally tangent)
    }
    if d + r < rt {
        return Some(ArcSet::full()); // ∂disk entirely inside int(target)
    }
    if d <= f64::EPSILON {
        // Concentric and not strictly inside: boundary touches/exceeds.
        return None;
    }
    // Law of cosines on the triangle (disk.center, target.center, x) for a
    // boundary point x of `disk` at angle alpha from the center line.
    let cos_a = (d * d + r * r - rt * rt) / (2.0 * d * r);
    if cos_a >= 1.0 {
        return None;
    }
    let half = cos_a.clamp(-1.0, 1.0).acos();
    let toward = (target.center - disk.center).angle();
    Some(ArcSet::from_arc(toward, half))
}

/// Subtracts from `arc` (angles on `∂di`) the section covered by the closed
/// disk `dj`.
fn subtract_coverage(arc: &mut ArcSet, di: &Circle, dj: &Circle) {
    let d = di.center.dist(dj.center);
    let (ri, rj) = (di.radius, dj.radius);
    if d >= ri + rj {
        return; // disjoint: covers nothing of ∂di
    }
    if d + ri <= rj {
        // di (hence its boundary) entirely inside dj.
        arc.subtract_arc(0.0, std::f64::consts::PI + 1.0);
        return;
    }
    if d + rj <= ri || d <= f64::EPSILON {
        return; // dj strictly inside di: touches ∂di nowhere
    }
    let cos_b = (d * d + ri * ri - rj * rj) / (2.0 * d * ri);
    if cos_b >= 1.0 {
        return;
    }
    let half = cos_b.clamp(-1.0, 1.0).acos();
    let toward = (dj.center - di.center).angle();
    arc.subtract_arc(toward, half);
}

/// Parameter intervals of `seg` that lie along (collinear with) some edge
/// of `poly`.
fn collinear_overlaps(seg: &crate::segment::Segment, poly: &ConvexPolygon) -> Vec<(f64, f64)> {
    use crate::point::orient;
    let mut out = Vec::new();
    let len = seg.len().max(f64::MIN_POSITIVE);
    for e in poly.edges() {
        let elen = e.len().max(f64::MIN_POSITIVE);
        // Collinear iff both endpoints of `seg` sit on e's carrier line.
        let d0 = orient(e.a, e.b, seg.a).abs() / elen;
        let d1 = orient(e.a, e.b, seg.b).abs() / elen;
        if d0 > EPS || d1 > EPS {
            continue;
        }
        let ta = seg.project(e.a);
        let tb = seg.project(e.b);
        let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
        let (lo, hi) = (lo.max(0.0), hi.min(1.0));
        if hi - lo > EPS / len {
            out.push((lo, hi));
        }
    }
    out
}

/// Drops circles equal (within [`DEDUP_EPS`], relative to magnitude) to an
/// earlier circle in the slice.
fn dedup_circles(circles: &[Circle]) -> Vec<Circle> {
    let mut out: Vec<Circle> = Vec::with_capacity(circles.len());
    'outer: for &c in circles {
        for &prev in &out {
            let scale = (prev.radius + c.radius).max(1.0);
            if prev.center.dist(c.center) <= DEDUP_EPS * scale
                && (prev.radius - c.radius).abs() <= DEDUP_EPS * scale
            {
                continue 'outer;
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r)
    }

    // ---------- DiskRegion (exact) ----------

    #[test]
    fn disk_single_contains_smaller() {
        let region = DiskRegion::from_circles(&[c(0.0, 0.0, 2.0)]);
        assert!(region.covers_circle(&c(0.5, 0.0, 1.0)));
        assert!(!region.covers_circle(&c(0.5, 0.0, 1.6)));
        // Internally tangent counts as covered (closed containment).
        assert!(region.covers_circle(&c(1.0, 0.0, 1.0)));
    }

    #[test]
    fn disk_empty_region_covers_nothing() {
        let region = DiskRegion::from_circles(&[]);
        assert!(!region.covers_circle(&c(0.0, 0.0, 0.0)));
        assert!(!region.covers_point(Point::ORIGIN));
    }

    #[test]
    fn disk_two_overlapping_cover_bridge_circle() {
        // Two unit disks overlapping; a circle straddling the lens. The
        // union boundary nearest to (0.5, 0) is the lens vertex at distance
        // sqrt(3)/2 ≈ 0.866, so radius 0.6 needs *both* disks.
        let region = DiskRegion::from_circles(&[c(0.0, 0.0, 1.0), c(1.0, 0.0, 1.0)]);
        assert!(region.covers_circle(&c(0.5, 0.0, 0.6)));
        // Neither single disk covers it (0.5 + 0.6 > 1):
        let single = DiskRegion::from_circles(&[c(0.0, 0.0, 1.0)]);
        assert!(!single.covers_circle(&c(0.5, 0.0, 0.6)));
        // Too large: pokes out above/below the lens region.
        assert!(!region.covers_circle(&c(0.5, 0.0, 0.95)));
    }

    #[test]
    fn disk_union_with_hole_is_detected() {
        // Four unit disks around the origin leaving a tiny central hole.
        let r = 1.0;
        let off = 1.05; // centers at distance 1.05 → hole at origin
        let region = DiskRegion::from_circles(&[
            c(off, 0.0, r),
            c(-off, 0.0, r),
            c(0.0, off, r),
            c(0.0, -off, r),
        ]);
        // Origin is not covered at all.
        assert!(!region.covers_point(Point::ORIGIN));
        // A circle centered inside one disk but spanning the hole: rejected.
        assert!(!region.covers_circle(&c(0.4, 0.0, 0.45)));
    }

    #[test]
    fn disk_ring_of_disks_covers_inner_circle() {
        // Six unit disks on a radius-1 hexagon fully cover a central disk.
        let mut disks = vec![];
        for i in 0..6 {
            let th = std::f64::consts::TAU * i as f64 / 6.0;
            disks.push(c(th.cos(), th.sin(), 1.0));
        }
        let region = DiskRegion::from_circles(&disks);
        assert!(region.covers_circle(&c(0.0, 0.0, 0.5)));
        assert!(!region.covers_circle(&c(0.0, 0.0, 1.9)));
    }

    #[test]
    fn disk_duplicates_do_not_fake_coverage() {
        let region = DiskRegion::from_circles(&[c(0.0, 0.0, 1.0), c(0.0, 0.0, 1.0)]);
        assert_eq!(region.len(), 1);
        assert!(!region.covers_circle(&c(0.0, 0.0, 1.5)));
    }

    #[test]
    fn disk_zero_radius_candidate() {
        let region = DiskRegion::from_circles(&[c(0.0, 0.0, 1.0)]);
        assert!(region.covers_circle(&c(0.5, 0.0, 0.0)));
        assert!(!region.covers_circle(&c(5.0, 0.0, 0.0)));
    }

    // ---------- PolygonRegion (paper's polygonization) ----------

    #[test]
    fn polygon_region_is_conservative_subset_of_disk_region() {
        // Whatever the polygon region accepts, the exact region must accept.
        let circles = [c(0.0, 0.0, 1.0), c(1.2, 0.3, 0.8), c(-0.4, 0.9, 0.7)];
        let poly = PolygonRegion::from_circles(&circles, 24);
        let exact = DiskRegion::from_circles(&circles);
        let candidates = [
            c(0.0, 0.0, 0.5),
            c(0.5, 0.2, 0.6),
            c(1.0, 0.3, 0.7),
            c(0.3, 0.3, 1.0),
            c(-0.2, 0.5, 0.4),
            c(2.0, 2.0, 0.1),
        ];
        for cand in candidates {
            if poly.covers_circle(&cand) {
                assert!(
                    exact.covers_circle(&cand),
                    "polygon region accepted {cand:?} but exact region refuses"
                );
            }
        }
    }

    #[test]
    fn polygon_two_overlapping_cover_bridge_circle() {
        let region = PolygonRegion::from_circles(&[c(0.0, 0.0, 1.0), c(1.0, 0.0, 1.0)], 32);
        assert!(region.covers_circle(&c(0.5, 0.0, 0.6)));
        let single = PolygonRegion::from_circles(&[c(0.0, 0.0, 1.0)], 32);
        assert!(!single.covers_circle(&c(0.5, 0.0, 0.6)));
        assert!(!region.covers_circle(&c(0.5, 0.0, 0.95)));
    }

    #[test]
    fn polygon_region_rejects_uncovered_center() {
        let region = PolygonRegion::from_circles(&[c(0.0, 0.0, 1.0)], 16);
        assert!(!region.covers_circle(&c(3.0, 0.0, 0.1)));
    }

    #[test]
    fn polygon_more_vertices_accept_more() {
        // A candidate near the limit: the coarse polygonization rejects it,
        // the fine one accepts it, and the exact test accepts it.
        let circles = [c(0.0, 0.0, 1.0)];
        let cand = c(0.0, 0.0, 0.97);
        let coarse = PolygonRegion::from_circles(&circles, 6);
        let fine = PolygonRegion::from_circles(&circles, 96);
        let exact = DiskRegion::from_circles(&circles);
        assert!(exact.covers_circle(&cand));
        assert!(
            !coarse.covers_circle(&cand),
            "hexagon under-approximates too much"
        );
        assert!(fine.covers_circle(&cand));
    }

    #[test]
    fn polygon_duplicates_do_not_fake_coverage() {
        let region = PolygonRegion::from_circles(&[c(0.0, 0.0, 1.0), c(0.0, 0.0, 1.0)], 24);
        assert_eq!(region.len(), 1);
        assert!(!region.covers_circle(&c(0.0, 0.0, 1.5)));
    }

    #[test]
    fn polygon_empty_region() {
        let region = PolygonRegion::from_circles(&[c(0.0, 0.0, 0.0)], 24);
        assert!(region.is_empty());
        assert!(!region.covers_circle(&c(0.0, 0.0, 0.0)));
    }

    #[test]
    fn union_area_disjoint_is_sum() {
        let squares = vec![
            ConvexPolygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ])
            .unwrap(),
            ConvexPolygon::new(vec![
                Point::new(5.0, 0.0),
                Point::new(7.0, 0.0),
                Point::new(7.0, 2.0),
                Point::new(5.0, 2.0),
            ])
            .unwrap(),
        ];
        let region = PolygonRegion::from_polygons(squares);
        assert!((region.union_area() - 5.0).abs() < 1e-9);
        assert_eq!(region.union_boundary().len(), 8);
    }

    #[test]
    fn union_area_overlap_matches_inclusion_exclusion() {
        // Two unit squares overlapping in a 0.5x1 strip: union = 1.5.
        let a = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        let b = ConvexPolygon::new(vec![
            Point::new(0.5, 0.0),
            Point::new(1.5, 0.0),
            Point::new(1.5, 1.0),
            Point::new(0.5, 1.0),
        ])
        .unwrap();
        let region = PolygonRegion::from_polygons(vec![a, b]);
        assert!(
            (region.union_area() - 1.5).abs() < 1e-9,
            "got {}",
            region.union_area()
        );
    }

    #[test]
    fn union_area_nested_is_outer() {
        let outer = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        let inner = ConvexPolygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 2.0),
        ])
        .unwrap();
        let region = PolygonRegion::from_polygons(vec![outer, inner]);
        assert!((region.union_area() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn union_area_of_polygonized_disks_approaches_disk_area() {
        // Two far-apart disks: union area ≈ sum of disk areas, scaled by
        // the inscribed-polygon factor.
        let circles = [c(0.0, 0.0, 1.0), c(10.0, 0.0, 2.0)];
        let region = PolygonRegion::from_circles(&circles, 64);
        let expected: f64 = circles.iter().map(|d| d.area()).sum();
        let got = region.union_area();
        assert!(
            (got - expected).abs() / expected < 0.01,
            "union {got} vs disks {expected}"
        );
    }

    // ---------- randomized agreement check ----------

    #[test]
    fn monte_carlo_agreement() {
        // Deterministic pseudo-random scenario sweep: the polygon test must
        // never accept a candidate whose disk has a sample point outside
        // every source disk.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..50 {
            let circles: Vec<Circle> = (0..4)
                .map(|_| c(next() * 4.0 - 2.0, next() * 4.0 - 2.0, 0.3 + next()))
                .collect();
            let region = PolygonRegion::from_circles(&circles, 24);
            let exact = DiskRegion::from_circles(&circles);
            let cand = c(next() * 4.0 - 2.0, next() * 4.0 - 2.0, 0.2 + next());
            let accepted = region.covers_circle(&cand);
            let accepted_exact = exact.covers_circle(&cand);
            if accepted {
                assert!(accepted_exact, "polygon accepted, exact refused: {cand:?}");
            }
            if accepted_exact {
                // Sample the candidate disk; every sample must be in a disk.
                for i in 0..64 {
                    let th = std::f64::consts::TAU * i as f64 / 64.0;
                    for fr in [0.0, 0.5, 0.999] {
                        let p = Point::new(
                            cand.center.x + cand.radius * fr * th.cos(),
                            cand.center.y + cand.radius * fr * th.sin(),
                        );
                        assert!(
                            circles.iter().any(|d| d.center.dist(p) <= d.radius + 1e-9),
                            "exact accepted but sample point {p:?} uncovered"
                        );
                    }
                }
            }
        }
    }
}
