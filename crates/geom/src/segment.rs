//! Line segments and parametric clipping.

use crate::point::Point;

/// A directed line segment from `a` to `b`, parameterized as
/// `p(t) = a + t (b - a)` with `t` in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point (`t = 0`).
    pub a: Point,
    /// End point (`t = 1`).
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// True for a degenerate (zero-length) segment.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The point at parameter `t` (not clamped).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Parameter of the point on the *infinite line* closest to `p`.
    ///
    /// Returns `0.0` for a degenerate segment.
    pub fn project(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            0.0
        } else {
            (p - self.a).dot(d) / len_sq
        }
    }

    /// Closest point on the segment (clamped to the endpoints) to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.at(self.project(p).clamp(0.0, 1.0))
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Parameter interval `[t0, t1]` of the segment that lies inside the
    /// *open* disk of `circle` (center `c`, radius `r`), or `None` when the
    /// segment misses the open disk.
    ///
    /// Solves `|p(t) - c|^2 < r^2`, a quadratic in `t`, and intersects the
    /// solution interval with `[0, 1]`.
    pub fn clip_to_open_disk(&self, center: Point, radius: f64) -> Option<(f64, f64)> {
        let d = self.b - self.a;
        let f = self.a - center;
        let aa = d.norm_sq();
        if aa <= f64::EPSILON {
            // Degenerate segment: either the point is inside or not.
            return if f.norm() < radius {
                Some((0.0, 1.0))
            } else {
                None
            };
        }
        let bb = 2.0 * f.dot(d);
        let cc = f.norm_sq() - radius * radius;
        let disc = bb * bb - 4.0 * aa * cc;
        if disc <= 0.0 {
            return None; // tangent (measure zero) or disjoint
        }
        let sq = disc.sqrt();
        let t0 = ((-bb - sq) / (2.0 * aa)).max(0.0);
        let t1 = ((-bb + sq) / (2.0 * aa)).min(1.0);
        if t0 < t1 {
            Some((t0, t1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_at() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 8.0));
        assert_eq!(s.len(), 10.0);
        assert_eq!(s.at(0.5), Point::new(3.0, 4.0));
        assert!(!s.is_degenerate());
        assert!(Segment::new(Point::ORIGIN, Point::ORIGIN).is_degenerate());
    }

    #[test]
    fn projection_and_closest_point() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.project(Point::new(3.0, 5.0)), 0.3);
        // Beyond the endpoint: clamped.
        assert_eq!(
            s.closest_point(Point::new(20.0, 1.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(s.closest_point(Point::new(-5.0, 1.0)), Point::new(0.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(3.0, 5.0)), 5.0);
    }

    #[test]
    fn degenerate_projection() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.project(Point::new(9.0, 9.0)), 0.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(2.0, 2.0));
    }

    #[test]
    fn disk_clip_through_center() {
        let s = Segment::new(Point::new(-2.0, 0.0), Point::new(2.0, 0.0));
        let (t0, t1) = s.clip_to_open_disk(Point::ORIGIN, 1.0).unwrap();
        assert!((s.at(t0).x + 1.0).abs() < 1e-12);
        assert!((s.at(t1).x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_clip_miss_and_tangent() {
        let s = Segment::new(Point::new(-2.0, 2.0), Point::new(2.0, 2.0));
        assert!(s.clip_to_open_disk(Point::ORIGIN, 1.0).is_none()); // above
        let t = Segment::new(Point::new(-2.0, 1.0), Point::new(2.0, 1.0));
        // Tangent line touches only the boundary, not the open disk.
        assert!(t.clip_to_open_disk(Point::ORIGIN, 1.0).is_none());
    }

    #[test]
    fn disk_clip_segment_fully_inside() {
        let s = Segment::new(Point::new(-0.2, 0.0), Point::new(0.2, 0.0));
        let (t0, t1) = s.clip_to_open_disk(Point::ORIGIN, 1.0).unwrap();
        assert_eq!((t0, t1), (0.0, 1.0));
    }

    #[test]
    fn disk_clip_one_endpoint_inside() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        let (t0, t1) = s.clip_to_open_disk(Point::ORIGIN, 1.0).unwrap();
        assert_eq!(t0, 0.0);
        assert!((s.at(t1).x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_clip_degenerate_segment() {
        let inside = Segment::new(Point::new(0.1, 0.1), Point::new(0.1, 0.1));
        assert_eq!(
            inside.clip_to_open_disk(Point::ORIGIN, 1.0),
            Some((0.0, 1.0))
        );
        let outside = Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0));
        assert_eq!(outside.clip_to_open_disk(Point::ORIGIN, 1.0), None);
    }
}
