//! Convex polygons and circle polygonization.
//!
//! Section 3.2.2: *"we adopt a polygonization technique that transforms all
//! the certain area circles into polygons to closely approximate the certain
//! area reported by each peer."* We polygonize with **inscribed** regular
//! polygons: an inscribed polygon is a subset of its disk, so the
//! approximate certain region is a subset of the true one and the
//! verification can only *miss* certain objects, never fabricate one
//! (soundness before completeness).

use crate::circle::Circle;
use crate::point::{orient, Point};
use crate::rect::Rect;
use crate::segment::Segment;

/// Default vertex count used when polygonizing certain-area circles.
///
/// 24 vertices keep the inscribed-polygon area within 1.2 % of the disk; the
/// `region_coverage` bench sweeps this parameter as an ablation.
pub const DEFAULT_POLYGONIZATION_VERTICES: usize = 24;

/// A convex polygon with vertices in counter-clockwise order.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

/// Errors from [`ConvexPolygon::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// The vertex chain is not convex / counter-clockwise.
    NotConvexCcw,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::NotConvexCcw => {
                write!(f, "vertices must form a convex counter-clockwise chain")
            }
        }
    }
}

impl std::error::Error for PolygonError {}

impl ConvexPolygon {
    /// Builds a polygon from counter-clockwise vertices, validating
    /// convexity.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            if orient(a, b, c) <= 0.0 {
                return Err(PolygonError::NotConvexCcw);
            }
        }
        Ok(ConvexPolygon { vertices })
    }

    /// The regular `n`-gon **inscribed** in `circle`, with the first vertex
    /// at angle `phase` (radians).
    ///
    /// Being inscribed, the polygon is a subset of the closed disk, which is
    /// what makes the polygonized certain region a conservative
    /// approximation. Panics if `n < 3`.
    pub fn inscribed_in(circle: &Circle, n: usize, phase: f64) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices");
        let step = std::f64::consts::TAU / n as f64;
        let vertices = (0..n)
            .map(|i| circle.point_at(phase + i as f64 * step))
            .collect();
        // A regular polygon inscribed in a positive-radius circle is convex
        // and CCW by construction; a zero radius collapses to a point, which
        // we still store (all predicates degrade gracefully).
        ConvexPolygon { vertices }
    }

    /// The polygon's vertices, counter-clockwise.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterator over the directed boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for CCW polygons).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            s += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        s * 0.5
    }

    /// Axis-aligned bounding box.
    pub fn bounding_rect(&self) -> Rect {
        Rect::from_points(self.vertices.iter().copied())
    }

    /// True when `p` lies inside or on the polygon (within `eps` of the
    /// boundary counts as inside).
    pub fn contains_point(&self, p: Point, eps: f64) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Normalize the tolerance by the edge length so that `eps` is a
            // distance, not a raw cross-product value.
            let len = a.dist(b).max(f64::MIN_POSITIVE);
            if orient(a, b, p) < -eps * len {
                return false;
            }
        }
        true
    }

    /// Clips the parameter interval of `seg` to the closed polygon,
    /// returning `[t0, t1]` or `None` when the segment misses the polygon.
    ///
    /// Standard Cyrus–Beck clipping against the polygon's half-planes.
    pub fn clip_segment(&self, seg: &Segment) -> Option<(f64, f64)> {
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        let d = seg.b - seg.a;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let edge = b - a;
            // inside(t) ⇔ cross(edge, p(t) - a) >= 0
            let num = edge.cross(seg.a - a);
            let den = edge.cross(d);
            if den.abs() <= f64::EPSILON {
                if num < 0.0 {
                    return None; // parallel and fully outside this half-plane
                }
                continue;
            }
            let t = -num / den;
            if den > 0.0 {
                // Entering the half-plane as t grows.
                t0 = t0.max(t);
            } else {
                t1 = t1.min(t);
            }
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_polygons() {
        assert_eq!(
            ConvexPolygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        // Clockwise square.
        assert_eq!(
            ConvexPolygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(1.0, 1.0),
                Point::new(1.0, 0.0),
            ]),
            Err(PolygonError::NotConvexCcw)
        );
        // Non-convex chevron.
        assert_eq!(
            ConvexPolygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 0.1),
                Point::new(1.0, 2.0),
            ]),
            Err(PolygonError::NotConvexCcw)
        );
    }

    #[test]
    fn area_and_bbox() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        let bb = sq.bounding_rect();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(1.0, 1.0));
        assert_eq!(sq.edges().count(), 4);
    }

    #[test]
    fn point_containment() {
        let sq = unit_square();
        assert!(sq.contains_point(Point::new(0.5, 0.5), 1e-12));
        assert!(sq.contains_point(Point::new(0.0, 0.0), 1e-12)); // vertex
        assert!(sq.contains_point(Point::new(0.5, 0.0), 1e-12)); // edge
        assert!(!sq.contains_point(Point::new(1.5, 0.5), 1e-12));
        assert!(!sq.contains_point(Point::new(0.5, -0.001), 1e-12));
    }

    #[test]
    fn inscribed_polygon_is_inside_disk() {
        let c = Circle::new(Point::new(3.0, -2.0), 5.0);
        for n in [3usize, 4, 8, 24, 64] {
            let poly = ConvexPolygon::inscribed_in(&c, n, 0.7);
            assert_eq!(poly.vertices().len(), n);
            for &v in poly.vertices() {
                assert!((c.center.dist(v) - c.radius).abs() < 1e-9);
            }
            // Sample interior points of the polygon: all inside the disk.
            let centroid = poly
                .vertices()
                .iter()
                .fold(Point::ORIGIN, |acc, &v| acc + v)
                / n as f64;
            assert!(c.contains_point(centroid));
            // Area converges to the disk area from below.
            assert!(poly.area() <= c.area() + 1e-9);
        }
        let a24 = ConvexPolygon::inscribed_in(&c, 24, 0.0).area();
        assert!(
            a24 / c.area() > 0.985,
            "24-gon should capture >98.5% of disk area"
        );
    }

    #[test]
    fn clip_segment_through_square() {
        let sq = unit_square();
        let s = Segment::new(Point::new(-1.0, 0.5), Point::new(2.0, 0.5));
        let (t0, t1) = sq.clip_segment(&s).unwrap();
        assert!((s.at(t0).x - 0.0).abs() < 1e-12);
        assert!((s.at(t1).x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_segment_misses() {
        let sq = unit_square();
        let s = Segment::new(Point::new(-1.0, 2.0), Point::new(2.0, 2.0));
        assert!(sq.clip_segment(&s).is_none());
        // Parallel to an edge but outside.
        let s2 = Segment::new(Point::new(0.0, -0.5), Point::new(1.0, -0.5));
        assert!(sq.clip_segment(&s2).is_none());
    }

    #[test]
    fn clip_segment_fully_inside() {
        let sq = unit_square();
        let s = Segment::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8));
        assert_eq!(sq.clip_segment(&s), Some((0.0, 1.0)));
    }

    #[test]
    fn clip_segment_touching_corner() {
        let sq = unit_square();
        // A diagonal through the corner (0,0) only touches at t=0.5 -> a
        // degenerate interval, which clip reports with t0 == t1.
        let s = Segment::new(Point::new(-0.5, 0.5), Point::new(0.5, -0.5));
        match sq.clip_segment(&s) {
            None => {}
            Some((t0, t1)) => assert!((t1 - t0).abs() < 1e-9),
        }
    }
}
