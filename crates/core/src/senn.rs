//! Algorithm 1: the Sharing-based Euclidean distance Nearest Neighbor
//! (SENN) query, as a driver over the staged pipeline (see
//! [`crate::pipeline`]):
//!
//! ```text
//! PeerProbe       query peers in range, sort by cached-location distance
//! SingleVerify    kNN_single over each peer                     (§3.2.1)
//! MultiVerify     kNN_multiple over the merged certain region   (§3.2.2)
//!                 (if H full and uncertain acceptable: return)
//! ServerResidual  residual server query with the pruning bounds (§3.3)
//! ```

use std::borrow::Borrow;
use std::time::Instant;

use senn_cache::CacheEntry;
use senn_geom::Point;
use senn_rtree::SearchBounds;

use crate::bounds::bounds_from_heap;
use crate::heap::{HeapEntry, HeapState};
use crate::multiple::{collect_candidates, collect_circles, CertainRegion, RegionMethod};
use crate::pipeline::{
    merge_residual_with, multi_verify, peer_probe, residual_request_with, server_residual,
    single_verify, QueryContext, VerifyScratch,
};
use crate::server::ServerResponse;
use crate::service::{ServerRequest, SpatialService};
use crate::trace::{QueryTrace, Stage};

pub use crate::trace::Resolution;

/// Configuration of the SENN engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct SennConfig {
    /// Certain-region representation for `kNN_multiple`.
    pub region_method: RegionMethod,
    /// Accept a full heap of (possibly) uncertain answers instead of
    /// contacting the server (Algorithm 1, line 15). The paper's simulation
    /// requires exact answers, so the default is `false`.
    pub accept_uncertain: bool,
    /// When the server must be contacted, fetch at least this many NNs —
    /// the paper's cache policy 2 ("query for as many NN as the cache
    /// capacity allows"). `0` fetches exactly what the query needs.
    pub server_fetch: usize,
}

/// The outcome of a SENN query.
#[derive(Clone, Debug)]
pub struct SennOutcome {
    /// Final answer: up to `k` entries, certain entries first, each group
    /// ascending by distance. After a server round-trip every entry is
    /// certain.
    pub results: Vec<HeapEntry>,
    /// Additional certain NNs beyond `k` obtained from an over-fetching
    /// server query (available for caching), ascending by distance.
    pub extra_certain: Vec<HeapEntry>,
    /// The pruning bounds that were (or would have been) forwarded.
    pub bounds: SearchBounds,
    /// State of the result heap `H` after the peer phases (Section 3.3) —
    /// `None` when the peer phases fully answered the query.
    pub heap_state: Option<HeapState>,
    /// Attribution, server accounting and stage timings of the query.
    pub trace: QueryTrace,
}

impl SennOutcome {
    /// How the query was resolved.
    pub fn resolution(&self) -> Resolution {
        self.trace.resolution()
    }

    /// R\*-tree node accesses of the server search, when one happened.
    pub fn server_accesses(&self) -> Option<u64> {
        self.trace
            .server_contacted
            .then_some(self.trace.server_accesses)
    }

    /// The certain prefix of the results.
    pub fn certain(&self) -> &[HeapEntry] {
        let n = self.results.iter().take_while(|e| e.certain).count();
        &self.results[..n]
    }

    /// Every certain entry including over-fetched extras — what the host
    /// should store in its cache.
    pub fn cacheable(&self) -> Vec<HeapEntry> {
        self.certain()
            .iter()
            .copied()
            .chain(self.extra_certain.iter().copied())
            .collect()
    }
}

/// The SENN query engine (stateless; configuration only).
///
/// ```
/// use senn_core::{PeerCacheEntry, RTreeServer, SennEngine, Resolution};
/// use senn_geom::Point;
///
/// let server = RTreeServer::new(vec![
///     (0, Point::new(10.0, 0.0)),
///     (1, Point::new(40.0, 0.0)),
///     (2, Point::new(90.0, 0.0)),
/// ]);
/// // A peer that cached all three POIs from (30, 0).
/// let peer = PeerCacheEntry::from_sorted(
///     Point::new(30.0, 0.0),
///     vec![(1, Point::new(40.0, 0.0)), (0, Point::new(10.0, 0.0)), (2, Point::new(90.0, 0.0))],
/// );
/// let engine = SennEngine::default();
/// let out = engine.query(Point::new(35.0, 0.0), 2, std::slice::from_ref(&peer), &server);
/// assert_eq!(out.resolution(), Resolution::SinglePeer);
/// assert_eq!(out.results[0].poi.poi_id, 1);
/// assert!(out.server_accesses().is_none());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SennEngine {
    config: SennConfig,
}

impl SennEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SennConfig) -> Self {
        SennEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SennConfig {
        &self.config
    }

    /// Runs only the peer stages (PeerProbe → SingleVerify → MultiVerify,
    /// then optionally accept an uncertain full heap). Returns
    /// [`Resolution::Unresolved`] when the server would be needed.
    ///
    /// Generic over the peer representation: pass `&[CacheEntry]` or
    /// `&[&CacheEntry]` — the latter lets batch drivers hand over borrowed
    /// cache snapshots without cloning an entry per query.
    pub fn query_peers_only<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        k: usize,
        peers: &[B],
    ) -> SennOutcome {
        self.query_peers_only_with(query, k, peers, &mut QueryContext::new())
    }

    /// [`Self::query_peers_only`] against a caller-owned [`QueryContext`]
    /// (the allocation-reusing batch entry point).
    pub fn query_peers_only_with<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        k: usize,
        peers: &[B],
        ctx: &mut QueryContext,
    ) -> SennOutcome {
        let resolution = self.run_peer_stages(query, k, peers, ctx);
        let bounds = bounds_from_heap(&ctx.heap);
        let heap_state = if resolution.is_some() {
            None
        } else {
            Some(ctx.heap.state())
        };
        let results = ctx.heap.entries().to_vec();
        let extra_certain = if resolution.is_some() {
            self.extend_certains(query, peers, &results, &mut ctx.verify)
        } else {
            Vec::new()
        };
        ctx.trace
            .resolutions
            .push(resolution.unwrap_or(Resolution::Unresolved));
        SennOutcome {
            results,
            extra_certain,
            bounds,
            heap_state,
            trace: std::mem::take(&mut ctx.trace),
        }
    }

    /// Runs the full Algorithm 1 against `server`.
    ///
    /// Generic over the peer representation (see [`Self::query_peers_only`]).
    pub fn query<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        k: usize,
        peers: &[B],
        server: &dyn SpatialService,
    ) -> SennOutcome {
        self.query_with(query, k, peers, server, &mut QueryContext::new())
    }

    /// [`Self::query`] against a caller-owned [`QueryContext`] (the
    /// allocation-reusing batch entry point).
    pub fn query_with<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        k: usize,
        peers: &[B],
        server: &dyn SpatialService,
        ctx: &mut QueryContext,
    ) -> SennOutcome {
        let resolution = self.run_peer_stages(query, k, peers, ctx);
        let bounds = bounds_from_heap(&ctx.heap);
        if let Some(resolution) = resolution {
            let results = ctx.heap.entries().to_vec();
            let extra_certain = self.extend_certains(query, peers, &results, &mut ctx.verify);
            ctx.trace.resolutions.push(resolution);
            return SennOutcome {
                results,
                extra_certain,
                bounds,
                heap_state: None,
                trace: std::mem::take(&mut ctx.trace),
            };
        }
        let heap_state = ctx.heap.state();

        let started = Instant::now();
        let residual = server_residual(ctx, query, k, bounds, self.config.server_fetch, server);
        ctx.trace
            .record_stage(Stage::ServerResidual, started.elapsed().as_nanos() as u64);
        ctx.trace.resolutions.push(Resolution::Server);
        ctx.trace.server_accesses += residual.node_accesses;
        ctx.trace.server_contacted = true;
        SennOutcome {
            results: residual.results,
            extra_certain: residual.extra_certain,
            bounds,
            heap_state: Some(heap_state),
            trace: std::mem::take(&mut ctx.trace),
        }
    }

    /// Builds the [`ServerRequest`] that would complete an
    /// [`Resolution::Unresolved`] outcome of [`Self::query_peers_only`] —
    /// the deferred half of the server stage. Batch drivers collect one
    /// request per unresolved query, submit them together through
    /// [`crate::service::SpatialService::submit`] (typically via
    /// [`crate::transport::submit_with_retry`]), and finish each query with
    /// [`Self::complete_residual`].
    pub fn residual_request(
        &self,
        id: impl Into<crate::transport::RequestId>,
        query: Point,
        k: usize,
        outcome: &SennOutcome,
    ) -> ServerRequest {
        residual_request_with(
            outcome.certain(),
            id,
            query,
            k,
            outcome.bounds,
            self.config.server_fetch,
        )
    }

    /// Completes a deferred [`Resolution::Unresolved`] outcome with the
    /// service response for its [`Self::residual_request`]. Equivalent —
    /// result for result, trace for trace — to having called
    /// [`Self::query`] directly (stage timing then covers only the merge;
    /// the service round-trip is the driver's to account).
    pub fn complete_residual(
        &self,
        k: usize,
        mut outcome: SennOutcome,
        response: ServerResponse,
    ) -> SennOutcome {
        debug_assert_eq!(
            outcome.trace.resolutions.last(),
            Some(&Resolution::Unresolved),
            "complete_residual expects an unresolved peers-only outcome"
        );
        let node_accesses = response.node_accesses;
        let started = Instant::now();
        let residual = merge_residual_with(outcome.certain(), k, response);
        outcome.results = residual.results;
        outcome.extra_certain = residual.extra_certain;
        if outcome.trace.resolutions.last() == Some(&Resolution::Unresolved) {
            outcome.trace.resolutions.pop();
        }
        outcome.trace.resolutions.push(Resolution::Server);
        outcome.trace.server_accesses += node_accesses;
        outcome.trace.server_contacted = true;
        outcome
            .trace
            .record_stage(Stage::ServerResidual, started.elapsed().as_nanos() as u64);
        outcome
    }

    /// Runs PeerProbe → SingleVerify → MultiVerify (steps 1–5 of
    /// Algorithm 1) through the context, timing each stage. Returns the
    /// resolution when the peer stages completed the query.
    fn run_peer_stages<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        k: usize,
        peers: &[B],
        ctx: &mut QueryContext,
    ) -> Option<Resolution> {
        ctx.begin(k);
        let started = Instant::now();
        peer_probe(ctx, query, peers);
        ctx.trace
            .record_stage(Stage::PeerProbe, started.elapsed().as_nanos() as u64);

        let started = Instant::now();
        let done = single_verify(ctx, query, peers);
        ctx.trace
            .record_stage(Stage::SingleVerify, started.elapsed().as_nanos() as u64);
        if done {
            return Some(Resolution::SinglePeer);
        }

        if !ctx.order.is_empty() {
            let started = Instant::now();
            let done = multi_verify(ctx, query, peers, self.config.region_method);
            ctx.trace
                .record_stage(Stage::MultiVerify, started.elapsed().as_nanos() as u64);
            if done {
                return Some(Resolution::MultiPeer);
            }
        }
        (ctx.heap.is_full() && self.config.accept_uncertain)
            .then_some(Resolution::AcceptedUncertain)
    }

    /// Continues certifying POIs beyond the k-th for caching, up to the
    /// configured `server_fetch` (cache capacity): the paper's client
    /// caches "as many NN as its cache capacity allows", and the certain
    /// set is a downward-closed prefix of the true ranking, so verification
    /// can simply keep walking candidates in ascending distance until the
    /// first failure.
    ///
    /// This cache-extension walk runs outside the four timed stages: it
    /// serves the *next* query's cache, not this query's answer. The
    /// certain region is rebuilt from the peers in their original
    /// (unsorted) order, exactly like `CertainRegion::build`.
    fn extend_certains<B: Borrow<CacheEntry>>(
        &self,
        query: Point,
        peers: &[B],
        results: &[HeapEntry],
        scratch: &mut VerifyScratch,
    ) -> Vec<HeapEntry> {
        let limit = self.config.server_fetch.saturating_sub(results.len());
        if limit == 0 || peers.is_empty() || results.iter().any(|e| !e.certain) {
            // Only a fully-certain result set is a known prefix of the true
            // ranking; accepted-uncertain answers cannot be extended.
            return Vec::new();
        }
        collect_circles(peers.iter().map(|p| p.borrow()), &mut scratch.circles);
        let region = CertainRegion::from_circles(&scratch.circles, self.config.region_method);
        // Candidates beyond the current result set, ascending by distance.
        scratch.seen.clear();
        scratch.seen.extend(results.iter().map(|e| e.poi.poi_id));
        collect_candidates(
            query,
            peers.iter().map(|p| p.borrow()),
            &mut scratch.candidates,
            &mut scratch.seen,
        );
        let mut out = Vec::new();
        for &(dist, poi) in &scratch.candidates {
            if out.len() >= limit {
                break;
            }
            // Certain via any single peer (Lemma 3.2) or the merged region
            // (Lemma 3.8); certainty is monotone in the distance, so the
            // first failure ends the extension.
            let single_ok = peers.iter().map(|p| p.borrow()).any(|p| {
                crate::verify::is_certain(
                    query,
                    p.query_location,
                    p.farthest_distance(),
                    poi.position,
                )
            });
            if single_ok || (!region.is_empty() && region.covers_candidate(query, dist)) {
                out.push(HeapEntry {
                    poi,
                    dist,
                    certain: true,
                });
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;
    use senn_cache::CachedNn;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Builds an honest peer cache: the `cache_k` true NNs of `loc`.
    fn honest_peer(loc: Point, pois: &[Point], cache_k: usize) -> CacheEntry {
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (loc.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        CacheEntry::from_sorted(
            loc,
            by_d.iter()
                .take(cache_k)
                .map(|&(_, i)| (i as u64, pois[i]))
                .collect(),
        )
    }

    fn true_knn(pois: &[Point], q: Point, k: usize) -> Vec<(f64, usize)> {
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (q.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        by_d.truncate(k);
        by_d
    }

    #[test]
    fn collocated_peer_answers_without_server() {
        let pois = vec![
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(9.0, 0.0),
        ];
        let peer = honest_peer(Point::new(0.1, 0.0), &pois, 3);
        let engine = SennEngine::default();
        let out = engine.query_peers_only(Point::new(0.0, 0.0), 2, std::slice::from_ref(&peer));
        assert_eq!(out.resolution(), Resolution::SinglePeer);
        assert_eq!(out.certain().len(), 2);
        assert_eq!(out.certain()[0].poi.poi_id, 0);
        assert_eq!(out.certain()[1].poi.poi_id, 1);
    }

    #[test]
    fn no_peers_falls_through_to_server() {
        let pois: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64, (i % 7) as f64))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let engine = SennEngine::default();
        let q = Point::new(20.2, 3.3);
        let out = engine.query::<CacheEntry>(q, 5, &[], &server);
        assert_eq!(out.resolution(), Resolution::Server);
        assert!(out.bounds.is_none());
        assert!(out.server_accesses().unwrap() > 0);
        let want = true_knn(&pois, q, 5);
        assert_eq!(out.results.len(), 5);
        for (r, (wd, wi)) in out.results.iter().zip(&want) {
            assert_eq!(r.poi.poi_id, *wi as u64);
            assert!((r.dist - wd).abs() < 1e-9);
            assert!(r.certain);
        }
    }

    #[test]
    fn partial_verification_uses_bounds_and_completes() {
        // One peer verifies a couple of NNs; the server fills the rest.
        let mut rng = Rng(0x1234 | 1);
        let pois: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(50.0, 50.0);
        let peer = honest_peer(Point::new(50.5, 50.2), &pois, 4);
        let engine = SennEngine::default();
        let out = engine.query(q, 8, std::slice::from_ref(&peer), &server);
        assert_eq!(out.resolution(), Resolution::Server);
        assert!(
            out.bounds.lower.is_some(),
            "peer verification should yield a lower bound"
        );
        let want = true_knn(&pois, q, 8);
        assert_eq!(out.results.len(), 8);
        for (r, (wd, wi)) in out.results.iter().zip(&want) {
            assert_eq!(r.poi.poi_id, *wi as u64, "rank mismatch");
            assert!((r.dist - wd).abs() < 1e-9);
        }
    }

    #[test]
    fn accept_uncertain_short_circuits() {
        let pois = vec![Point::new(5.0, 0.0), Point::new(6.0, 0.0)];
        // A far peer: candidates are uncertain but fill the heap.
        let peer = honest_peer(Point::new(30.0, 0.0), &pois, 2);
        let engine = SennEngine::new(SennConfig {
            accept_uncertain: true,
            ..Default::default()
        });
        let out = engine.query_peers_only(Point::ORIGIN, 2, std::slice::from_ref(&peer));
        assert_eq!(out.resolution(), Resolution::AcceptedUncertain);
        assert_eq!(out.results.len(), 2);
        assert!(out.results.iter().all(|e| !e.certain));
        assert_eq!(out.certain().len(), 0);
    }

    #[test]
    fn server_overfetch_yields_cacheable_extras() {
        let mut rng = Rng(0x77 | 1);
        let pois: Vec<Point> = (0..100)
            .map(|_| Point::new(rng.next() * 50.0, rng.next() * 50.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let engine = SennEngine::new(SennConfig {
            server_fetch: 10,
            ..Default::default()
        });
        let q = Point::new(25.0, 25.0);
        let out = engine.query::<CacheEntry>(q, 3, &[], &server);
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.extra_certain.len(), 7);
        assert_eq!(out.cacheable().len(), 10);
        let want = true_knn(&pois, q, 10);
        for (c, (wd, _)) in out.cacheable().iter().zip(&want) {
            assert!((c.dist - wd).abs() < 1e-9);
        }
    }

    #[test]
    fn oracle_randomized_worlds() {
        // End-to-end soundness and completeness: with arbitrary honest
        // peers, the final answer always equals the true kNN set.
        let mut rng = Rng(0xabcdef | 1);
        for trial in 0..60 {
            let n = 20 + (rng.next() * 100.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 9.0) as usize;
            let peer_count = (rng.next() * 5.0) as usize;
            let peers: Vec<CacheEntry> = (0..peer_count)
                .map(|_| {
                    let loc = Point::new(
                        q.x + rng.next() * 40.0 - 20.0,
                        q.y + rng.next() * 40.0 - 20.0,
                    );
                    honest_peer(loc, &pois, 1 + (rng.next() * 9.0) as usize)
                })
                .collect();
            let engine = SennEngine::default();
            let out = engine.query(q, k, &peers, &server);
            let want = true_knn(&pois, q, k);
            assert_eq!(out.results.len(), k.min(n), "trial {trial}");
            for (r, (wd, _)) in out.results.iter().zip(&want) {
                assert!(
                    (r.dist - wd).abs() < 1e-9,
                    "trial {trial}: got dist {} want {} (resolution {:?})",
                    r.dist,
                    wd,
                    out.resolution()
                );
            }
            // Certain entries really are certain.
            for (i, r) in out.results.iter().enumerate() {
                if r.certain {
                    assert!(
                        (r.dist - want[i].0).abs() < 1e-9,
                        "trial {trial} certain rank {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn context_reuse_is_hygienic_across_randomized_worlds() {
        // Property (satellite): running query B in a context that already
        // ran query A equals running B in a fresh context — no scratch
        // state leaks across a batch.
        let mut rng = Rng(0xfeed5eed | 1);
        let mut shared = QueryContext::new();
        for trial in 0..80 {
            let n = 10 + (rng.next() * 60.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let engine = SennEngine::new(SennConfig {
                accept_uncertain: trial % 3 == 0,
                server_fetch: (trial % 4) * 3,
                ..Default::default()
            });
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 7.0) as usize;
            let peers: Vec<CacheEntry> = (0..(rng.next() * 4.0) as usize)
                .map(|_| {
                    let loc = Point::new(
                        q.x + rng.next() * 30.0 - 15.0,
                        q.y + rng.next() * 30.0 - 15.0,
                    );
                    honest_peer(loc, &pois, 1 + (rng.next() * 8.0) as usize)
                })
                .collect();
            let shared_out = engine.query_with(q, k, &peers, &server, &mut shared);
            let fresh_out = engine.query(q, k, &peers, &server);
            assert_eq!(shared_out.results, fresh_out.results, "trial {trial}");
            assert_eq!(
                shared_out.extra_certain, fresh_out.extra_certain,
                "trial {trial}"
            );
            assert_eq!(shared_out.bounds, fresh_out.bounds, "trial {trial}");
            assert_eq!(shared_out.heap_state, fresh_out.heap_state, "trial {trial}");
            assert_eq!(
                shared_out.trace.resolutions, fresh_out.trace.resolutions,
                "trial {trial}"
            );
            assert_eq!(
                shared_out.trace.server_accesses, fresh_out.trace.server_accesses,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn deferred_residual_matches_direct_query() {
        // The batch driver's split path — peers-only, build the wire
        // request, answer it, complete — must equal the one-shot query()
        // outcome for outcome, across randomized worlds.
        let mut rng = Rng(0xdefe44ed | 1);
        for trial in 0..60 {
            let n = 15 + (rng.next() * 80.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let engine = SennEngine::new(SennConfig {
                server_fetch: (trial % 3) * 4,
                ..Default::default()
            });
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 7.0) as usize;
            let peers: Vec<CacheEntry> = (0..(rng.next() * 4.0) as usize)
                .map(|_| {
                    let loc = Point::new(
                        q.x + rng.next() * 30.0 - 15.0,
                        q.y + rng.next() * 30.0 - 15.0,
                    );
                    honest_peer(loc, &pois, 1 + (rng.next() * 8.0) as usize)
                })
                .collect();
            let direct = engine.query(q, k, &peers, &server);

            let peers_only = engine.query_peers_only(q, k, &peers);
            let deferred = if peers_only.resolution() == Resolution::Unresolved {
                let req = engine.residual_request(trial as u64, q, k, &peers_only);
                let resp = server.knn_one(req.query, req.count, req.bounds);
                engine.complete_residual(k, peers_only, resp)
            } else {
                peers_only
            };
            assert_eq!(deferred.results, direct.results, "trial {trial}");
            assert_eq!(
                deferred.extra_certain, direct.extra_certain,
                "trial {trial}"
            );
            assert_eq!(deferred.bounds, direct.bounds, "trial {trial}");
            assert_eq!(deferred.heap_state, direct.heap_state, "trial {trial}");
            assert_eq!(
                deferred.trace.resolutions, direct.trace.resolutions,
                "trial {trial}"
            );
            assert_eq!(
                deferred.trace.server_accesses, direct.trace.server_accesses,
                "trial {trial}"
            );
            assert_eq!(
                deferred.trace.server_contacted, direct.trace.server_contacted,
                "trial {trial}"
            );
            assert_eq!(
                deferred.trace.stage_calls, direct.trace.stage_calls,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn peers_with_empty_caches_are_ignored() {
        let empty = CacheEntry::new(Point::ORIGIN, vec![]);
        let engine = SennEngine::default();
        let out = engine.query_peers_only(Point::new(1.0, 1.0), 2, std::slice::from_ref(&empty));
        assert_eq!(out.resolution(), Resolution::Unresolved);
        assert!(out.results.is_empty());
    }

    #[test]
    fn duplicate_pois_across_peers_dedupe() {
        let pois = vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let p1 = honest_peer(Point::new(0.2, 0.0), &pois, 3);
        let p2 = honest_peer(Point::new(0.3, 0.1), &pois, 3);
        let engine = SennEngine::default();
        let out = engine.query_peers_only(Point::ORIGIN, 3, &[p1, p2]);
        let mut ids: Vec<u64> = out.results.iter().map(|e| e.poi.poi_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.results.len(), "no POI appears twice");
    }

    #[test]
    fn multi_peer_resolution_reported() {
        // Fig. 7-style: only the merged region verifies the full set.
        let q = Point::new(0.0, 0.0);
        let cand = (100u64, 0.0, 0.8);
        let mk = |loc: Point, extra: &[(u64, f64, f64)]| {
            let mut v = vec![CachedNn {
                poi_id: cand.0,
                position: Point::new(cand.1, cand.2),
            }];
            v.extend(extra.iter().map(|&(id, x, y)| CachedNn {
                poi_id: id,
                position: Point::new(x, y),
            }));
            CacheEntry::new(loc, v)
        };
        let p3 = mk(
            Point::new(-0.7, 0.0),
            &[(101, -1.0, -0.9), (102, -2.05, 0.0)],
        );
        let p4 = mk(Point::new(0.7, 0.0), &[(103, 1.0, -0.9), (104, 2.05, 0.0)]);
        let engine = SennEngine::default();
        let out = engine.query_peers_only(q, 1, &[p3, p4]);
        assert_eq!(out.resolution(), Resolution::MultiPeer);
        assert_eq!(out.certain()[0].poi.poi_id, 100);
    }

    #[test]
    fn stage_timings_cover_the_stages_that_ran() {
        let pois: Vec<Point> = (0..30).map(|i| Point::new(i as f64, 0.0)).collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let engine = SennEngine::default();
        // Server-bound query: probe + single ran, server residual ran.
        let out = engine.query::<CacheEntry>(Point::new(5.5, 3.0), 3, &[], &server);
        assert_eq!(out.trace.stage_calls[0], 1, "peer probe runs once");
        assert_eq!(out.trace.stage_calls[1], 1, "single verify runs once");
        assert_eq!(out.trace.stage_calls[2], 0, "no peers: multi skipped");
        assert_eq!(out.trace.stage_calls[3], 1, "server residual ran");
        // Peer-resolved query: no server stage.
        let peer = honest_peer(Point::new(5.0, 0.1), &pois, 6);
        let out = engine.query(
            Point::new(5.2, 0.0),
            2,
            std::slice::from_ref(&peer),
            &server,
        );
        assert_eq!(out.resolution(), Resolution::SinglePeer);
        assert_eq!(out.trace.stage_calls[3], 0, "peer-resolved: no server");
    }
}
