//! The batched spatial-service API: the request/reply message pair, the
//! [`SpatialService`] trait whose unit of work is a **batch** of residual
//! queries, and the client-side retry/backoff/degradation layer.
//!
//! ## Why a batch API
//!
//! Every query the peer caches cannot verify falls through to the remote
//! spatial database (EINN over the R\*-tree, §3.3/§4.4). At
//! millions-of-users scale those residuals arrive as a *stream of
//! intervals*, not as isolated calls: the simulator's batch engine already
//! collects one interval's residuals before any of them is answered, and a
//! real backend amortizes index traversal, fan-out and scheduling across a
//! request set. The service seam therefore speaks batches:
//!
//! ```text
//! client                       service
//!   │  submit(&[ServerRequest]) ─►  (shard fan-out, per-shard search)
//!   │  ◄─ Vec<ServerReply>          (merge, per-shard accounting)
//! ```
//!
//! [`SpatialService::submit`] answers a whole batch; replies come back in
//! request order, each echoing its request's `id`. The single-query
//! convenience [`SpatialService::knn_one`] routes through the same batch
//! path — there is no separate direct-call API.
//!
//! ## Robustness
//!
//! Real services drop and delay requests. A reply therefore carries a
//! [`ReplyStatus`]; [`submit_with_retry`] implements the client side:
//! failed requests are re-submitted (still as batches) with exponential
//! backoff, and when every pruned attempt failed the client degrades to
//! the **unpruned** query ([`ServerRequest::unpruned`]) as a last resort —
//! a pruned request that keeps timing out may be hitting a bounds-handling
//! fault, and the unpruned form is always self-contained. All waiting is
//! *virtual* (accounted in [`RequestOutcome::waited_ms`], never slept), so
//! retry schedules stay deterministic and simulation-speed.

use senn_geom::Point;
use senn_rtree::SearchBounds;

pub use crate::server::ServerResponse;

/// One residual kNN query in a service batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerRequest {
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub id: u64,
    /// The query location.
    pub query: Point,
    /// POIs to return under `bounds`, ascending by distance.
    pub count: usize,
    /// Branch-expanding pruning bounds (§3.3). Under a lower bound the
    /// service omits POIs strictly inside the verified circle and
    /// re-reports the boundary POI (the client dedupes it).
    pub bounds: SearchBounds,
    /// POIs that would be needed if `bounds` were dropped — `count` plus
    /// the certain prefix the lower bound lets the service skip. The
    /// degraded (unpruned) retry of [`submit_with_retry`] asks for this
    /// many so its answer is complete without any client-held state.
    pub full_count: usize,
}

impl ServerRequest {
    /// A plain unpruned request (no bounds, `count == full_count`).
    pub fn plain(id: u64, query: Point, count: usize) -> Self {
        ServerRequest {
            id,
            query,
            count,
            bounds: SearchBounds::NONE,
            full_count: count,
        }
    }

    /// The degraded form of this request: same query, bounds dropped,
    /// `full_count` POIs requested.
    pub fn unpruned(&self) -> Self {
        ServerRequest {
            id: self.id,
            query: self.query,
            count: self.full_count.max(self.count),
            bounds: SearchBounds::NONE,
            full_count: self.full_count.max(self.count),
        }
    }
}

/// How the service disposed of one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The search ran; `response` is authoritative.
    #[default]
    Ok,
    /// The service (or network) dropped the request; no answer.
    Dropped,
    /// The service answered too late; the reply was discarded.
    TimedOut,
}

/// The service's answer to one [`ServerRequest`].
#[derive(Clone, Debug, Default)]
pub struct ServerReply {
    /// Echo of [`ServerRequest::id`].
    pub id: u64,
    /// Disposition; `response` is meaningful only for [`ReplyStatus::Ok`].
    pub status: ReplyStatus,
    /// The search result (empty unless `status` is `Ok`).
    pub response: ServerResponse,
    /// Service-side latency in milliseconds (simulated by fault-injecting
    /// wrappers; `0` for in-process backends).
    pub latency_ms: f64,
}

impl ServerReply {
    /// A successful in-process reply.
    pub fn ok(id: u64, response: ServerResponse) -> Self {
        ServerReply {
            id,
            status: ReplyStatus::Ok,
            response,
            latency_ms: 0.0,
        }
    }
}

/// A remote spatial database answering kNN queries in batches.
///
/// Implementations must return exactly one reply per request, **in request
/// order**, each echoing the request's `id`. In-process backends
/// ([`crate::RTreeServer`], the sharded service in `senn-server`) always
/// reply [`ReplyStatus::Ok`]; fault-injecting wrappers may drop or time
/// out individual requests.
pub trait SpatialService {
    /// Answers a batch of residual queries.
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply>;

    /// Total number of POIs the service indexes.
    fn poi_count(&self) -> usize;

    /// Single-query convenience routed through [`Self::submit`] — a batch
    /// of one. Infallible backends return the search result; on a dropped
    /// or timed-out reply this returns an empty response (callers that
    /// need retry semantics use [`submit_with_retry`]).
    fn knn_one(&self, query: Point, count: usize, bounds: SearchBounds) -> ServerResponse {
        let request = ServerRequest {
            id: 0,
            query,
            count,
            bounds,
            full_count: count,
        };
        let mut replies = self.submit(std::slice::from_ref(&request));
        match replies.pop() {
            Some(r) if r.status == ReplyStatus::Ok => r.response,
            _ => ServerResponse::default(),
        }
    }
}

impl<S: SpatialService + ?Sized> SpatialService for &S {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        (**self).submit(batch)
    }

    fn poi_count(&self) -> usize {
        (**self).poi_count()
    }

    fn knn_one(&self, query: Point, count: usize, bounds: SearchBounds) -> ServerResponse {
        (**self).knn_one(query, count, bounds)
    }
}

/// Client-side retry/backoff policy for [`submit_with_retry`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts with the pruned request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry, milliseconds.
    pub backoff_base_ms: f64,
    /// Multiplier applied to the backoff after every retry round.
    pub backoff_factor: f64,
    /// After `max_attempts` pruned failures, degrade to the unpruned
    /// query ([`ServerRequest::unpruned`]) as a final attempt.
    pub degrade_unpruned: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 50.0,
            backoff_factor: 2.0,
            degrade_unpruned: true,
        }
    }
}

impl RetryPolicy {
    /// No retries, no degradation: one attempt, take it or leave it.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        backoff_base_ms: 0.0,
        backoff_factor: 1.0,
        degrade_unpruned: false,
    };
}

/// What the retry layer delivered for one request.
#[derive(Clone, Debug, Default)]
pub struct RequestOutcome {
    /// The answer (empty when `failed`).
    pub response: ServerResponse,
    /// Re-submissions after the first attempt (degraded attempt included).
    pub retries: u32,
    /// Attempts that ended in [`ReplyStatus::TimedOut`].
    pub timeouts: u32,
    /// Attempts that ended in [`ReplyStatus::Dropped`].
    pub drops: u32,
    /// True when the answer came from the degraded (unpruned) fallback.
    pub degraded: bool,
    /// True when every attempt failed; `response` is empty and the caller
    /// must fall back to whatever it verified locally.
    pub failed: bool,
    /// Virtual wall time spent waiting: service latencies of every attempt
    /// plus the exponential backoff between rounds.
    pub waited_ms: f64,
}

/// Submits `requests` through `service`, retrying failed requests in
/// (re-batched) rounds per `policy`. Returns one outcome per request, in
/// request order. Purely deterministic for a deterministic service: retry
/// rounds re-submit failures in their original request order.
pub fn submit_with_retry(
    service: &dyn SpatialService,
    requests: &[ServerRequest],
    policy: &RetryPolicy,
) -> Vec<RequestOutcome> {
    let mut outcomes: Vec<RequestOutcome> =
        requests.iter().map(|_| RequestOutcome::default()).collect();
    if requests.is_empty() {
        return outcomes;
    }
    // Indices (into `requests`) still awaiting an answer.
    let mut open: Vec<usize> = (0..requests.len()).collect();
    let mut round_batch: Vec<ServerRequest> = Vec::new();
    let mut backoff = policy.backoff_base_ms;
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if open.is_empty() {
            break;
        }
        round_batch.clear();
        round_batch.extend(open.iter().map(|&i| requests[i]));
        if attempt > 0 {
            for &i in &open {
                outcomes[i].retries += 1;
                outcomes[i].waited_ms += backoff;
            }
            backoff *= policy.backoff_factor;
        }
        let replies = service.submit(&round_batch);
        debug_assert_eq!(replies.len(), round_batch.len(), "one reply per request");
        let mut still_open = Vec::new();
        for (&i, reply) in open.iter().zip(&replies) {
            let out = &mut outcomes[i];
            out.waited_ms += reply.latency_ms;
            match reply.status {
                ReplyStatus::Ok => out.response = reply.response.clone(),
                ReplyStatus::TimedOut => {
                    out.timeouts += 1;
                    still_open.push(i);
                }
                ReplyStatus::Dropped => {
                    out.drops += 1;
                    still_open.push(i);
                }
            }
        }
        open = still_open;
    }
    // Graceful degradation: one unpruned attempt for whatever is left.
    if !open.is_empty() && policy.degrade_unpruned {
        round_batch.clear();
        round_batch.extend(open.iter().map(|&i| requests[i].unpruned()));
        for &i in &open {
            outcomes[i].retries += 1;
            outcomes[i].waited_ms += backoff;
        }
        let replies = service.submit(&round_batch);
        let mut still_open = Vec::new();
        for (&i, reply) in open.iter().zip(&replies) {
            let out = &mut outcomes[i];
            out.waited_ms += reply.latency_ms;
            match reply.status {
                ReplyStatus::Ok => {
                    out.response = reply.response.clone();
                    out.degraded = true;
                }
                ReplyStatus::TimedOut => {
                    out.timeouts += 1;
                    still_open.push(i);
                }
                ReplyStatus::Dropped => {
                    out.drops += 1;
                    still_open.push(i);
                }
            }
        }
        open = still_open;
    }
    for i in open {
        outcomes[i].failed = true;
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn server() -> RTreeServer {
        RTreeServer::new((0..40).map(|i| (i as u64, Point::new(i as f64, 0.0))))
    }

    /// A service that fails each request's first `fail_first` attempts.
    struct Flaky {
        inner: RTreeServer,
        fail_first: u32,
        calls: AtomicU64,
        drop_instead: bool,
    }

    impl SpatialService for Flaky {
        fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.fail_first as u64 {
                return batch
                    .iter()
                    .map(|r| ServerReply {
                        id: r.id,
                        status: if self.drop_instead {
                            ReplyStatus::Dropped
                        } else {
                            ReplyStatus::TimedOut
                        },
                        response: ServerResponse::default(),
                        latency_ms: 7.0,
                    })
                    .collect();
            }
            self.inner.submit(batch)
        }

        fn poi_count(&self) -> usize {
            self.inner.poi_count()
        }
    }

    #[test]
    fn knn_one_routes_through_submit() {
        let srv = server();
        let resp = srv.knn_one(Point::new(10.2, 0.0), 3, SearchBounds::NONE);
        assert_eq!(resp.pois.len(), 3);
        assert_eq!(resp.pois[0].0.poi_id, 10);
    }

    #[test]
    fn infallible_service_needs_no_retry() {
        let srv = server();
        let reqs = [
            ServerRequest::plain(0, Point::new(3.4, 0.0), 2),
            ServerRequest::plain(1, Point::new(20.0, 0.0), 1),
        ];
        let outs = submit_with_retry(&srv, &reqs, &RetryPolicy::default());
        assert_eq!(outs.len(), 2);
        for out in &outs {
            assert_eq!(out.retries, 0);
            assert!(!out.failed && !out.degraded);
        }
        assert_eq!(outs[0].response.pois[0].0.poi_id, 3);
        assert_eq!(outs[1].response.pois[0].0.poi_id, 20);
    }

    #[test]
    fn retries_then_succeeds_with_attributed_timeouts() {
        let svc = Flaky {
            inner: server(),
            fail_first: 2,
            calls: AtomicU64::new(0),
            drop_instead: false,
        };
        let reqs = [ServerRequest::plain(9, Point::new(5.1, 0.0), 2)];
        let outs = submit_with_retry(&svc, &reqs, &RetryPolicy::default());
        assert_eq!(outs[0].retries, 2);
        assert_eq!(outs[0].timeouts, 2);
        assert_eq!(outs[0].drops, 0);
        assert!(!outs[0].failed && !outs[0].degraded);
        assert_eq!(outs[0].response.pois[0].0.poi_id, 5);
        // Virtual wait: two 7 ms latencies for the failures, one 0 ms
        // success, plus 50 + 100 backoff.
        assert!((outs[0].waited_ms - (7.0 + 50.0 + 7.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn degrades_to_unpruned_after_exhausted_attempts() {
        // Fails all 3 pruned attempts; the 4th (degraded) succeeds.
        let svc = Flaky {
            inner: server(),
            fail_first: 3,
            calls: AtomicU64::new(0),
            drop_instead: true,
        };
        let req = ServerRequest {
            id: 0,
            query: Point::new(4.2, 0.0),
            count: 1,
            bounds: SearchBounds {
                upper: None,
                lower: Some(1.0),
            },
            full_count: 3,
        };
        let outs = submit_with_retry(&svc, &[req], &RetryPolicy::default());
        assert!(outs[0].degraded);
        assert!(!outs[0].failed);
        assert_eq!(outs[0].drops, 3);
        assert_eq!(outs[0].retries, 3, "two pruned retries plus the fallback");
        // Unpruned fallback asked for full_count POIs without bounds.
        assert_eq!(outs[0].response.pois.len(), 3);
        assert_eq!(outs[0].response.pois[0].0.poi_id, 4);
    }

    #[test]
    fn total_failure_is_reported_not_panicked() {
        let svc = Flaky {
            inner: server(),
            fail_first: u32::MAX,
            calls: AtomicU64::new(0),
            drop_instead: false,
        };
        let reqs = [ServerRequest::plain(0, Point::ORIGIN, 2)];
        let outs = submit_with_retry(&svc, &reqs, &RetryPolicy::default());
        assert!(outs[0].failed);
        assert!(outs[0].response.pois.is_empty());
        assert_eq!(outs[0].timeouts, 4, "3 pruned + 1 degraded attempt");
    }

    #[test]
    fn unpruned_form_is_self_contained() {
        let req = ServerRequest {
            id: 3,
            query: Point::ORIGIN,
            count: 2,
            bounds: SearchBounds {
                upper: Some(9.0),
                lower: Some(4.0),
            },
            full_count: 6,
        };
        let u = req.unpruned();
        assert!(u.bounds.is_none());
        assert_eq!(u.count, 6);
        assert_eq!(u.id, 3);
    }
}
