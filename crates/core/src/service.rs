//! The batched spatial-service API: the request/reply message pair and the
//! [`SpatialService`] trait whose unit of work is a **batch** of residual
//! queries.
//!
//! ## Why a batch API
//!
//! Every query the peer caches cannot verify falls through to the remote
//! spatial database (EINN over the R\*-tree, §3.3/§4.4). At
//! millions-of-users scale those residuals arrive as a *stream of
//! intervals*, not as isolated calls: the simulator's batch engine already
//! collects one interval's residuals before any of them is answered, and a
//! real backend amortizes index traversal, fan-out and scheduling across a
//! request set. The service seam therefore speaks batches:
//!
//! ```text
//! client                       service
//!   │  submit(&[ServerRequest]) ─►  (shard fan-out, per-shard search)
//!   │  ◄─ Vec<ServerReply>          (merge, per-shard accounting)
//! ```
//!
//! [`SpatialService::submit`] answers a whole batch; replies come back in
//! request order, each echoing its request's [`RequestId`]. There is no
//! single-query convenience on the trait — a lone query is a batch of one,
//! and callers that need retry or overlap semantics use the client layers
//! in [`crate::transport`] ([`crate::transport::submit_with_retry`]
//! blocking, [`crate::transport::AsyncClient`] event-driven).
//!
//! ## Robustness
//!
//! Real services drop, delay and *refuse* requests. A reply therefore
//! carries a [`ReplyStatus`]: transient failures (`Dropped`/`TimedOut`)
//! are retried by the client layer with exponential virtual backoff and an
//! unpruned degraded fallback, while `Shed` — the transport's admission
//! edge refusing work under overload — is terminal. All waiting is
//! *virtual* (accounted in [`RequestOutcome::waited_ms`], never slept), so
//! retry schedules stay deterministic and simulation-speed.

use senn_geom::Point;
use senn_rtree::SearchBounds;

pub use crate::server::ServerResponse;
pub use crate::transport::RequestId;

/// One residual kNN query in a service batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerRequest {
    /// Client-chosen correlation id, echoed verbatim in the reply and the
    /// key of every keyed schedule (fault fates, transport service times).
    pub id: RequestId,
    /// The query location.
    pub query: Point,
    /// POIs to return under `bounds`, ascending by distance.
    pub count: usize,
    /// Branch-expanding pruning bounds (§3.3). Under a lower bound the
    /// service omits POIs strictly inside the verified circle and
    /// re-reports the boundary POI (the client dedupes it).
    pub bounds: SearchBounds,
    /// POIs that would be needed if `bounds` were dropped — `count` plus
    /// the certain prefix the lower bound lets the service skip. The
    /// degraded (unpruned) retry of the client layer asks for this many so
    /// its answer is complete without any client-held state.
    pub full_count: usize,
}

impl ServerRequest {
    /// A plain unpruned request (no bounds, `count == full_count`).
    pub fn plain(id: impl Into<RequestId>, query: Point, count: usize) -> Self {
        ServerRequest {
            id: id.into(),
            query,
            count,
            bounds: SearchBounds::NONE,
            full_count: count,
        }
    }

    /// The degraded form of this request: same query, bounds dropped,
    /// `full_count` POIs requested.
    pub fn unpruned(&self) -> Self {
        ServerRequest {
            id: self.id,
            query: self.query,
            count: self.full_count.max(self.count),
            bounds: SearchBounds::NONE,
            full_count: self.full_count.max(self.count),
        }
    }
}

/// How the service disposed of one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The search ran; `response` is authoritative.
    #[default]
    Ok,
    /// The service (or network) dropped the request; no answer.
    Dropped,
    /// The service answered too late; the reply was discarded.
    TimedOut,
    /// The transport's admission control refused the request under
    /// overload before it reached any backend. Terminal for the retry
    /// ladder: retrying against a shedding edge tightens the overload.
    Shed,
}

/// The service's answer to one [`ServerRequest`].
#[derive(Clone, Debug, Default)]
pub struct ServerReply {
    /// Echo of [`ServerRequest::id`].
    pub id: RequestId,
    /// Disposition; `response` is meaningful only for [`ReplyStatus::Ok`].
    pub status: ReplyStatus,
    /// The search result (empty unless `status` is `Ok`).
    pub response: ServerResponse,
    /// Service-side latency in milliseconds (simulated by fault-injecting
    /// wrappers; `0` for in-process backends).
    pub latency_ms: f64,
}

impl ServerReply {
    /// A successful in-process reply.
    pub fn ok(id: impl Into<RequestId>, response: ServerResponse) -> Self {
        ServerReply {
            id: id.into(),
            status: ReplyStatus::Ok,
            response,
            latency_ms: 0.0,
        }
    }
}

/// A remote spatial database answering kNN queries in batches.
///
/// Implementations must return exactly one reply per request, **in request
/// order**, each echoing the request's `id`. In-process backends
/// ([`crate::RTreeServer`], the sharded service in `senn-server`) always
/// reply [`ReplyStatus::Ok`]; fault-injecting wrappers may drop or time
/// out individual requests, and the async transport may shed them.
pub trait SpatialService {
    /// Answers a batch of residual queries.
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply>;

    /// Total number of POIs the service indexes.
    fn poi_count(&self) -> usize;
}

impl<S: SpatialService + ?Sized> SpatialService for &S {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        (**self).submit(batch)
    }

    fn poi_count(&self) -> usize {
        (**self).poi_count()
    }
}

/// What the client layer (blocking retry or async ladder) delivered for
/// one request.
#[derive(Clone, Debug, Default)]
pub struct RequestOutcome {
    /// The answer (empty when `failed`).
    pub response: ServerResponse,
    /// Re-submissions after the first attempt (degraded attempt included).
    pub retries: u32,
    /// Attempts that ended in [`ReplyStatus::TimedOut`].
    pub timeouts: u32,
    /// Attempts that ended in [`ReplyStatus::Dropped`].
    pub drops: u32,
    /// Attempts refused by admission control ([`ReplyStatus::Shed`]) —
    /// terminal, so this is 0 or 1 per outcome.
    pub shed: u32,
    /// Retries refused by the token-bucket
    /// [`RetryBudget`](crate::transport::RetryBudget) — terminal, so this
    /// is 0 or 1 per outcome (always 0 with the unlimited budget).
    pub retries_denied: u32,
    /// True when the answer came from the degraded (unpruned) fallback.
    pub degraded: bool,
    /// True when every attempt failed; `response` is empty and the caller
    /// must fall back to whatever it verified locally.
    pub failed: bool,
    /// Virtual wall time spent waiting: service latencies of every attempt
    /// plus the exponential backoff between rounds.
    pub waited_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;
    use crate::transport::{submit_with_retry, RetryPolicy};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn server() -> RTreeServer {
        RTreeServer::new((0..40).map(|i| (i as u64, Point::new(i as f64, 0.0))))
    }

    /// A service that fails each request's first `fail_first` attempts.
    struct Flaky {
        inner: RTreeServer,
        fail_first: u32,
        calls: AtomicU64,
        drop_instead: bool,
    }

    impl SpatialService for Flaky {
        fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.fail_first as u64 {
                return batch
                    .iter()
                    .map(|r| ServerReply {
                        id: r.id,
                        status: if self.drop_instead {
                            ReplyStatus::Dropped
                        } else {
                            ReplyStatus::TimedOut
                        },
                        response: ServerResponse::default(),
                        latency_ms: 7.0,
                    })
                    .collect();
            }
            self.inner.submit(batch)
        }

        fn poi_count(&self) -> usize {
            self.inner.poi_count()
        }
    }

    #[test]
    fn single_query_is_a_batch_of_one() {
        let srv = server();
        let req = ServerRequest::plain(0u64, Point::new(10.2, 0.0), 3);
        let replies = srv.submit(std::slice::from_ref(&req));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].status, ReplyStatus::Ok);
        assert_eq!(replies[0].id, req.id);
        assert_eq!(replies[0].response.pois.len(), 3);
        assert_eq!(replies[0].response.pois[0].0.poi_id, 10);
    }

    #[test]
    fn infallible_service_needs_no_retry() {
        let srv = server();
        let reqs = [
            ServerRequest::plain(0u64, Point::new(3.4, 0.0), 2),
            ServerRequest::plain(1u64, Point::new(20.0, 0.0), 1),
        ];
        let outs = submit_with_retry(&srv, &reqs, &RetryPolicy::default());
        assert_eq!(outs.len(), 2);
        for out in &outs {
            assert_eq!(out.retries, 0);
            assert!(!out.failed && !out.degraded);
        }
        assert_eq!(outs[0].response.pois[0].0.poi_id, 3);
        assert_eq!(outs[1].response.pois[0].0.poi_id, 20);
    }

    #[test]
    fn retries_then_succeeds_with_attributed_timeouts() {
        let svc = Flaky {
            inner: server(),
            fail_first: 2,
            calls: AtomicU64::new(0),
            drop_instead: false,
        };
        let reqs = [ServerRequest::plain(9u64, Point::new(5.1, 0.0), 2)];
        let outs = submit_with_retry(&svc, &reqs, &RetryPolicy::default());
        assert_eq!(outs[0].retries, 2);
        assert_eq!(outs[0].timeouts, 2);
        assert_eq!(outs[0].drops, 0);
        assert!(!outs[0].failed && !outs[0].degraded);
        assert_eq!(outs[0].response.pois[0].0.poi_id, 5);
        // Virtual wait: two 7 ms latencies for the failures, one 0 ms
        // success, plus 50 + 100 backoff.
        assert!((outs[0].waited_ms - (7.0 + 50.0 + 7.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn degrades_to_unpruned_after_exhausted_attempts() {
        // Fails all 3 pruned attempts; the 4th (degraded) succeeds.
        let svc = Flaky {
            inner: server(),
            fail_first: 3,
            calls: AtomicU64::new(0),
            drop_instead: true,
        };
        let req = ServerRequest {
            id: RequestId::new(0),
            query: Point::new(4.2, 0.0),
            count: 1,
            bounds: SearchBounds {
                upper: None,
                lower: Some(1.0),
            },
            full_count: 3,
        };
        let outs = submit_with_retry(&svc, &[req], &RetryPolicy::default());
        assert!(outs[0].degraded);
        assert!(!outs[0].failed);
        assert_eq!(outs[0].drops, 3);
        assert_eq!(outs[0].retries, 3, "two pruned retries plus the fallback");
        // Unpruned fallback asked for full_count POIs without bounds.
        assert_eq!(outs[0].response.pois.len(), 3);
        assert_eq!(outs[0].response.pois[0].0.poi_id, 4);
    }

    #[test]
    fn total_failure_is_reported_not_panicked() {
        let svc = Flaky {
            inner: server(),
            fail_first: u32::MAX,
            calls: AtomicU64::new(0),
            drop_instead: false,
        };
        let reqs = [ServerRequest::plain(0u64, Point::ORIGIN, 2)];
        let outs = submit_with_retry(&svc, &reqs, &RetryPolicy::default());
        assert!(outs[0].failed);
        assert!(outs[0].response.pois.is_empty());
        assert_eq!(outs[0].timeouts, 4, "3 pruned + 1 degraded attempt");
    }

    #[test]
    fn shed_replies_are_terminal_for_the_blocking_ladder() {
        // A service that sheds every request: the ladder must not retry.
        struct Shedder;
        impl SpatialService for Shedder {
            fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
                batch
                    .iter()
                    .map(|r| ServerReply {
                        id: r.id,
                        status: ReplyStatus::Shed,
                        response: ServerResponse::default(),
                        latency_ms: 0.0,
                    })
                    .collect()
            }
            fn poi_count(&self) -> usize {
                0
            }
        }
        let reqs = [ServerRequest::plain(4u64, Point::ORIGIN, 2)];
        let outs = submit_with_retry(&Shedder, &reqs, &RetryPolicy::default());
        assert!(outs[0].failed);
        assert_eq!(outs[0].shed, 1);
        assert_eq!(outs[0].retries, 0, "shed is terminal, not retried");
        assert_eq!(outs[0].timeouts, 0);
    }

    #[test]
    fn unpruned_form_is_self_contained() {
        let req = ServerRequest {
            id: RequestId::new(3),
            query: Point::ORIGIN,
            count: 2,
            bounds: SearchBounds {
                upper: Some(9.0),
                lower: Some(4.0),
            },
            full_count: 6,
        };
        let u = req.unpruned();
        assert!(u.bounds.is_none());
        assert_eq!(u.count, 6);
        assert_eq!(u.id.raw(), 3);
    }
}
