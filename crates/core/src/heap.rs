//! The result heap `H` (Table 1 and Section 3.3).
//!
//! `H` holds up to `k` entries, each a POI with its distance to the querier
//! and a certainty flag. Certain entries precede uncertain ones; both
//! groups are kept in ascending distance order. "If there exist uncertain
//! nearest neighbor objects in `H`, a newly discovered certain NN object
//! will replace an uncertain object."
//!
//! After verification the heap is in one of six states (§3.3) which
//! determine the pruning bounds forwarded to the server.

use senn_cache::CachedNn;

/// One entry of the result heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeapEntry {
    /// The POI (identity + position).
    pub poi: CachedNn,
    /// Euclidean distance from the query location.
    pub dist: f64,
    /// True when verified as a guaranteed top-k NN.
    pub certain: bool,
}

/// The six states of `H` after verification (Section 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapState {
    /// State 1: full, certain and uncertain entries.
    FullMixed,
    /// State 2: full, only uncertain entries.
    FullUncertain,
    /// State 3: not full, certain and uncertain entries.
    PartialMixed,
    /// State 4: not full, only certain entries.
    PartialCertain,
    /// State 5: not full, only uncertain entries.
    PartialUncertain,
    /// State 6: empty.
    Empty,
}

/// The result heap `H` with capacity `k` (the paper's `Q_k`).
#[derive(Clone, Debug)]
pub struct ResultHeap {
    k: usize,
    /// Invariant: certain entries first (ascending distance), then
    /// uncertain entries (ascending distance); at most one entry per POI
    /// id; `entries.len() <= k`.
    entries: Vec<HeapEntry>,
}

impl ResultHeap {
    /// Creates an empty heap for a kNN query with the given `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        ResultHeap {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Clears the heap and re-arms it for a new query with the given `k`,
    /// keeping the entry allocation — the reuse hook behind
    /// [`crate::pipeline::QueryContext`].
    pub fn reset(&mut self, k: usize) {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self.entries.clear();
        self.entries.reserve(k);
    }

    /// The query's `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// All entries: certains first, then uncertains, each group ascending.
    pub fn entries(&self) -> &[HeapEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `k` entries are present.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// Number of certain entries.
    pub fn certain_count(&self) -> usize {
        self.entries.iter().take_while(|e| e.certain).count()
    }

    /// True when the query is answered: `k` certain entries.
    pub fn is_certain_complete(&self) -> bool {
        self.is_full() && self.certain_count() == self.k
    }

    /// The certain entries, ascending by distance.
    pub fn certain(&self) -> &[HeapEntry] {
        &self.entries[..self.certain_count()]
    }

    /// The uncertain entries, ascending by distance.
    pub fn uncertain(&self) -> &[HeapEntry] {
        &self.entries[self.certain_count()..]
    }

    /// True when the POI id is already present (certain or uncertain).
    pub fn contains(&self, poi_id: u64) -> bool {
        self.entries.iter().any(|e| e.poi.poi_id == poi_id)
    }

    /// The current state per Section 3.3.
    pub fn state(&self) -> HeapState {
        let certains = self.certain_count();
        let uncertains = self.len() - certains;
        match (self.is_full(), certains > 0, uncertains > 0) {
            (_, false, false) => HeapState::Empty,
            (true, true, true) => HeapState::FullMixed,
            (true, false, true) => HeapState::FullUncertain,
            (true, true, false) => HeapState::FullMixed, // fully certain: query answered
            (false, true, true) => HeapState::PartialMixed,
            (false, true, false) => HeapState::PartialCertain,
            (false, false, true) => HeapState::PartialUncertain,
        }
    }

    /// Inserts a certain NN. Duplicates upgrade an existing uncertain entry
    /// in place; when full, the worst uncertain entry is evicted first and
    /// only then (heap fully certain) the farthest certain entry.
    pub fn insert_certain(&mut self, poi: CachedNn, dist: f64) {
        if let Some(pos) = self.entries.iter().position(|e| e.poi.poi_id == poi.poi_id) {
            if self.entries[pos].certain {
                return; // already certain
            }
            self.entries.remove(pos); // upgrade: reinsert as certain below
        }
        let entry = HeapEntry {
            poi,
            dist,
            certain: true,
        };
        let certains = self.certain_count();
        let at = self.entries[..certains].partition_point(|e| e.dist <= dist);
        self.entries.insert(at, entry);
        if self.entries.len() > self.k {
            // Evict: last uncertain if any, else the farthest certain.
            self.entries.pop();
        }
    }

    /// Inserts an uncertain candidate. Ignored when the POI is already
    /// present or when the heap is full and the candidate is no better
    /// than the current worst uncertain entry; certain entries are never
    /// displaced by uncertain ones.
    pub fn insert_uncertain(&mut self, poi: CachedNn, dist: f64) {
        if self.contains(poi.poi_id) {
            return;
        }
        let certains = self.certain_count();
        if self.is_full() {
            if certains == self.k {
                return; // fully certain: uncertain candidates are useless
            }
            let worst = self.entries.last().expect("full heap has a last entry");
            if dist >= worst.dist {
                return;
            }
            self.entries.pop();
        }
        let at = certains + self.entries[certains..].partition_point(|e| e.dist <= dist);
        self.entries.insert(
            at,
            HeapEntry {
                poi,
                dist,
                certain: false,
            },
        );
    }

    /// The distance of the last (worst) entry, if any — the branch
    /// expanding *upper bound* when the heap is full.
    pub fn worst_distance(&self) -> Option<f64> {
        // Certains are a verified prefix of the true NN ranking, so the
        // maximum lives in the last entry of either group.
        self.entries
            .iter()
            .map(|e| e.dist)
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// The distance `D_ct` of the last certain entry, if any — the branch
    /// expanding *lower bound*.
    pub fn last_certain_distance(&self) -> Option<f64> {
        let c = self.certain_count();
        (c > 0).then(|| self.entries[c - 1].dist)
    }

    /// Consumes the heap and returns its entries (certains first).
    pub fn into_entries(self) -> Vec<HeapEntry> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_geom::Point;

    fn nn(id: u64) -> CachedNn {
        CachedNn {
            poi_id: id,
            position: Point::new(id as f64, 0.0),
        }
    }

    #[test]
    fn empty_heap_state_six() {
        let h = ResultHeap::new(3);
        assert_eq!(h.state(), HeapState::Empty);
        assert!(h.is_empty());
        assert!(!h.is_full());
        assert_eq!(h.worst_distance(), None);
        assert_eq!(h.last_certain_distance(), None);
    }

    #[test]
    fn table_1_layout() {
        // Reproduce Table 1: two certains then two uncertains, ascending
        // within each group.
        let mut h = ResultHeap::new(4);
        h.insert_uncertain(nn(31), 5f64.sqrt());
        h.insert_uncertain(nn(32), 8f64.sqrt());
        h.insert_certain(nn(21), 2f64.sqrt());
        h.insert_certain(nn(11), 3f64.sqrt());
        let e = h.entries();
        assert_eq!(e.len(), 4);
        assert!(e[0].certain && e[1].certain && !e[2].certain && !e[3].certain);
        assert!((e[0].dist - 2f64.sqrt()).abs() < 1e-12);
        assert!((e[3].dist - 8f64.sqrt()).abs() < 1e-12);
        assert_eq!(h.state(), HeapState::FullMixed);
    }

    #[test]
    fn certain_replaces_uncertain_when_full() {
        let mut h = ResultHeap::new(2);
        h.insert_uncertain(nn(1), 1.0);
        h.insert_uncertain(nn(2), 2.0);
        assert_eq!(h.state(), HeapState::FullUncertain);
        h.insert_certain(nn(3), 5.0); // farther, but certain: evicts nn(2)
        assert_eq!(h.certain_count(), 1);
        assert_eq!(h.len(), 2);
        assert!(h.contains(3));
        assert!(h.contains(1));
        assert!(!h.contains(2));
    }

    #[test]
    fn uncertain_never_displaces_certain() {
        let mut h = ResultHeap::new(2);
        h.insert_certain(nn(1), 3.0);
        h.insert_certain(nn(2), 4.0);
        h.insert_uncertain(nn(3), 0.5);
        assert_eq!(h.len(), 2);
        assert!(!h.contains(3));
        assert!(h.is_certain_complete());
    }

    #[test]
    fn uncertain_improves_worst_uncertain() {
        let mut h = ResultHeap::new(2);
        h.insert_uncertain(nn(1), 5.0);
        h.insert_uncertain(nn(2), 9.0);
        h.insert_uncertain(nn(3), 7.0); // evicts nn(2)
        assert!(h.contains(3) && !h.contains(2));
        h.insert_uncertain(nn(4), 8.0); // worse than both: ignored
        assert!(!h.contains(4));
    }

    #[test]
    fn duplicate_upgrade() {
        let mut h = ResultHeap::new(3);
        h.insert_uncertain(nn(7), 2.0);
        assert_eq!(h.certain_count(), 0);
        h.insert_certain(nn(7), 2.0);
        assert_eq!(h.certain_count(), 1);
        assert_eq!(h.len(), 1);
        // Re-inserting as certain again is a no-op.
        h.insert_certain(nn(7), 2.0);
        assert_eq!(h.len(), 1);
        // Re-inserting as uncertain after upgrade is ignored.
        h.insert_uncertain(nn(7), 2.0);
        assert_eq!(h.certain_count(), 1);
    }

    #[test]
    fn all_six_states_reachable() {
        let mut h = ResultHeap::new(2);
        assert_eq!(h.state(), HeapState::Empty); // 6
        h.insert_uncertain(nn(1), 1.0);
        assert_eq!(h.state(), HeapState::PartialUncertain); // 5
        h.insert_certain(nn(2), 0.5);
        assert_eq!(h.state(), HeapState::FullMixed); // k=2 full, mixed → 1
        let mut h = ResultHeap::new(3);
        h.insert_certain(nn(1), 1.0);
        assert_eq!(h.state(), HeapState::PartialCertain); // 4
        h.insert_uncertain(nn(2), 2.0);
        assert_eq!(h.state(), HeapState::PartialMixed); // 3
        let mut h = ResultHeap::new(1);
        h.insert_uncertain(nn(5), 4.0);
        assert_eq!(h.state(), HeapState::FullUncertain); // 2
    }

    #[test]
    fn bounds_from_heap() {
        let mut h = ResultHeap::new(3);
        h.insert_certain(nn(1), 1.0);
        h.insert_certain(nn(2), 2.0);
        h.insert_uncertain(nn(3), 4.0);
        assert_eq!(h.worst_distance(), Some(4.0));
        assert_eq!(h.last_certain_distance(), Some(2.0));
    }

    #[test]
    fn eviction_order_prefers_uncertain() {
        let mut h = ResultHeap::new(3);
        h.insert_certain(nn(1), 1.0);
        h.insert_uncertain(nn(2), 10.0);
        h.insert_certain(nn(3), 5.0);
        h.insert_certain(nn(4), 3.0); // full of certains now; nn(2) evicted
        assert_eq!(h.certain_count(), 3);
        assert!(!h.contains(2));
        // Another certain beyond all: evicts the farthest certain (5.0).
        h.insert_certain(nn(5), 2.0);
        assert!(h.contains(5) && !h.contains(3));
        assert!(h.is_certain_complete());
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let _ = ResultHeap::new(0);
    }
}
