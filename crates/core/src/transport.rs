//! The event-driven async service transport: a seeded virtual clock over
//! which requests are *enqueued* and replies *complete* out of order,
//! matched by id — the production story for heavy residual traffic.
//!
//! The synchronous [`SpatialService::submit`] seam models latency as a
//! number on the reply: the caller blocks, adds the number to its virtual
//! accounting and moves on. That cannot express a flash crowd, where the
//! interesting degradation is *queueing* — requests waiting behind each
//! other, in-flight windows saturating, and admission control shedding
//! load. This module adds that missing layer without touching any
//! backend:
//!
//! ```text
//! client                    transport (virtual clock)            service
//!   │ enqueue(req) ─► Ticket   [lane queues │ in-flight windows]
//!   │                          dispatch ──────────────────────►  submit
//!   │ poll(now) ◄─ completions (time-ordered, out of id order)
//! ```
//!
//! * [`AsyncService::enqueue`] admits a request to a **lane** (an uplink
//!   channel, chosen by hashing the request id): if the lane's in-flight
//!   window has room the request dispatches immediately, otherwise it
//!   queues. A full queue **sheds** the request — the reply completes
//!   instantly with [`ReplyStatus::Shed`] and the backend never sees it.
//! * Dispatch calls the wrapped [`SpatialService`] (any backend: the
//!   single tree, the sharded fan-out, the keyed fault wrapper) and draws
//!   a seeded service time; the completion event fires at
//!   `dispatch + service_time + reply latency` on the virtual clock.
//! * [`AsyncService::poll`] advances the clock to `now`, running every
//!   completion event in `(time, ticket)` order; each completion frees a
//!   window slot and dispatches the next queued request *at that event's
//!   time* — a textbook discrete-event loop, never a thread.
//!
//! ## Determinism contract
//!
//! Event order is a pure function of `(seed, request ids, enqueue
//! order)` — never of wall clock or thread interleaving. Service times
//! are keyed like `FaultyService`'s fault draws: `(seed, request id,
//! per-id attempt ordinal)` through a SplitMix64 finalizer, so a request
//! keeps its exact schedule no matter how submissions are coalesced,
//! how many worker threads planned them, or how many shards the backend
//! fans out to. Completions are delivered sorted by `(completion time,
//! ticket)`, and [`AsyncClient::poll`] re-sorts its resolved outcomes by
//! ticket, so folding results in ticket order is invariant to any
//! permutation of completion order (property-tested in
//! `tests/transport_order.rs`).
//!
//! ## Retry as a policy object
//!
//! The client-side retry ladder that PR 3 introduced as free-standing
//! [`submit_with_retry`] lives here now: [`TransportPolicy`] carries the
//! [`RetryPolicy`] next to the transport's `window`/`queue_cap`/`shed`
//! knobs, and [`AsyncClient`] replays the exact same ladder —
//! re-submission with exponential virtual backoff, then one degraded
//! unpruned attempt — over the event loop, producing the same
//! [`RequestOutcome`] dispositions as the blocking helper for the same
//! keyed fault schedule. A [`ReplyStatus::Shed`] reply is terminal: the
//! system refused the work, retrying immediately would spin the overload
//! loop tighter.

pub mod adaptive;

use std::collections::{HashMap, VecDeque};

pub use adaptive::{AdaptivePolicy, Priority, RetryBudget};

use crate::service::{ReplyStatus, RequestOutcome, ServerReply, ServerRequest, SpatialService};

/// The shared request-correlation id: chosen by the client, echoed by
/// every reply, and the key of every *keyed* schedule in the system (the
/// fault wrapper's fate draws, the transport's service-time draws).
/// A newtype instead of a raw `u64` so indices, tickets and ids cannot be
/// confused at call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// A request id from a batch/plan index.
    pub const fn from_index(index: usize) -> Self {
        RequestId(index as u64)
    }

    /// The raw id — the word every keyed schedule mixes.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for RequestId {
    fn from(raw: u64) -> Self {
        RequestId(raw)
    }
}

impl From<RequestId> for u64 {
    fn from(id: RequestId) -> Self {
        id.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Handle of one enqueued request: a dense per-transport sequence number.
/// Request *ids* may legitimately repeat (retries re-enqueue the same id);
/// tickets never do, so completions are matched on tickets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The enqueue sequence number.
    pub const fn seq(self) -> u64 {
        self.0
    }
}

/// Client-side retry/backoff policy (the ladder [`submit_with_retry`] and
/// [`AsyncClient`] both implement).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts with the pruned request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry, milliseconds.
    pub backoff_base_ms: f64,
    /// Multiplier applied to the backoff after every retry round.
    pub backoff_factor: f64,
    /// After `max_attempts` pruned failures, degrade to the unpruned
    /// query ([`ServerRequest::unpruned`]) as a final attempt.
    pub degrade_unpruned: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 50.0,
            backoff_factor: 2.0,
            degrade_unpruned: true,
        }
    }
}

impl RetryPolicy {
    /// No retries, no degradation: one attempt, take it or leave it.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        backoff_base_ms: 0.0,
        backoff_factor: 1.0,
        degrade_unpruned: false,
    };
}

/// The policy object of the async client: the retry ladder plus the
/// transport's backpressure knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportPolicy {
    /// Retry/backoff/degradation ladder for failed attempts.
    pub retry: RetryPolicy,
    /// In-flight window per lane: how many dispatched requests a lane may
    /// have awaiting completion (≥ 1).
    pub window: usize,
    /// Admission-queue capacity per lane: requests waiting for a window
    /// slot beyond this are shed (when `shed`) — bounded queues are what
    /// keep an overload from growing latency without limit (≥ 1).
    pub queue_cap: usize,
    /// Load-shedding under overload: `true` refuses work at the admission
    /// edge with [`ReplyStatus::Shed`]; `false` treats `queue_cap` as
    /// advisory and queues without bound (the pre-backpressure behavior,
    /// kept for A/B runs).
    pub shed: bool,
    /// Adaptive transport control ([`AdaptivePolicy`]): AIMD per-lane
    /// windows (replacing the fixed `window`), probe aging for the
    /// two-class scheduler, and a shed-aware token-bucket retry budget
    /// (replacing the unconditional ladder). `None` keeps the exact
    /// static behavior.
    pub adaptive: Option<AdaptivePolicy>,
}

impl Default for TransportPolicy {
    fn default() -> Self {
        TransportPolicy {
            retry: RetryPolicy::default(),
            window: 32,
            queue_cap: 256,
            shed: true,
            adaptive: None,
        }
    }
}

/// An asynchronous spatial service: requests go in with an id, replies
/// complete out of order on a virtual clock, matched by [`Ticket`].
pub trait AsyncService {
    /// Admits one request at the current virtual time. The reply arrives
    /// from a later [`Self::poll`]; a shed request's reply (status
    /// [`ReplyStatus::Shed`]) arrives from the *next* poll.
    fn enqueue(&mut self, request: ServerRequest) -> Ticket;

    /// Advances the virtual clock to `now_ms` and returns every reply
    /// whose completion event fired at or before it, in
    /// `(completion time, ticket)` order.
    fn poll(&mut self, now_ms: f64) -> Vec<(Ticket, ServerReply)>;
}

/// Deterministic SplitMix64 stream (no external RNG dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.0)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix of one word — the same
/// mix `FaultyService` keys its fate draws with.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of log2 latency buckets (covers 1 ms .. ~2^63 ms).
const LATENCY_BUCKETS: usize = 64;

/// Observability counters of one [`Transport`], accumulated over its
/// lifetime. All quantities are *virtual* (event-loop state and clock
/// deltas), so they are as deterministic as the event order itself.
#[derive(Clone, Debug, PartialEq)]
pub struct TransportStats {
    /// Requests admitted (dispatched or queued).
    pub enqueued: u64,
    /// Requests handed to the wrapped service.
    pub dispatched: u64,
    /// Completion events delivered (shed replies excluded).
    pub completed: u64,
    /// Requests refused at the admission edge ([`ReplyStatus::Shed`]).
    pub shed: u64,
    /// Peak total queued requests (across lanes) observed at any event.
    pub queue_depth_peak: u64,
    /// Peak total in-flight requests (across lanes) observed at any event.
    pub in_flight_peak: u64,
    /// Sum of end-to-end virtual latencies (enqueue → completion), ms.
    pub latency_sum_ms: f64,
    /// Smallest per-lane in-flight window observed over the lifetime
    /// (equals the static `window` when adaptive control is off).
    pub window_min: u64,
    /// Largest per-lane in-flight window observed over the lifetime.
    pub window_max: u64,
    /// Current sum of per-lane windows (the transport's total in-flight
    /// budget right now).
    pub window_final: u64,
    /// AIMD additive-increase steps taken.
    pub window_grows: u64,
    /// AIMD multiplicative-decrease steps taken.
    pub window_shrinks: u64,
    /// Probes dispatched ahead of a waiting residual *without* aging
    /// justification. The deterministic dequeue rule makes this
    /// impossible; tests assert it stays zero.
    pub priority_inversions: u64,
    /// Probes promoted ahead of waiting residuals because they aged past
    /// [`AdaptivePolicy::probe_aging_ms`].
    pub aged_promotions: u64,
    /// Log2 buckets of end-to-end virtual latency: bucket `i` counts
    /// completions with latency in `[2^i, 2^(i+1))` ms (bucket 0 also
    /// holds everything below 1 ms).
    hist: [u64; LATENCY_BUCKETS],
}

impl Default for TransportStats {
    fn default() -> Self {
        TransportStats {
            enqueued: 0,
            dispatched: 0,
            completed: 0,
            shed: 0,
            queue_depth_peak: 0,
            in_flight_peak: 0,
            latency_sum_ms: 0.0,
            window_min: 0,
            window_max: 0,
            window_final: 0,
            window_grows: 0,
            window_shrinks: 0,
            priority_inversions: 0,
            aged_promotions: 0,
            hist: [0; LATENCY_BUCKETS],
        }
    }
}

impl TransportStats {
    fn record_latency(&mut self, ms: f64) {
        self.latency_sum_ms += ms;
        let bucket = if ms < 1.0 {
            0
        } else {
            (63 - (ms as u64).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.hist[bucket] += 1;
    }

    /// The fraction of admitted requests that were shed.
    pub fn shed_fraction(&self) -> f64 {
        let offered = self.enqueued + self.shed;
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }

    /// Mean end-to-end virtual latency, milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.completed as f64
        }
    }

    /// Approximate latency quantile from the log2 histogram: the upper
    /// edge of the bucket containing quantile `q` (e.g. `0.5`, `0.99`).
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return (1u64 << (i + 1).min(63)) as f64;
            }
        }
        f64::INFINITY
    }

    /// Median end-to-end virtual latency, milliseconds (bucket edge).
    pub fn p50_latency_ms(&self) -> f64 {
        self.latency_quantile_ms(0.50)
    }

    /// 99th-percentile end-to-end virtual latency, milliseconds.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latency_quantile_ms(0.99)
    }
}

/// One admitted-but-undispatched request.
struct Queued {
    ticket: Ticket,
    request: ServerRequest,
    enqueued_ms: f64,
}

/// One dispatched request awaiting its completion event.
struct InFlight {
    completion_ms: f64,
    ticket: Ticket,
    reply: ServerReply,
    enqueued_ms: f64,
}

/// One uplink lane: a bounded admission queue feeding an in-flight
/// window. Lanes model independent channels (not backend shards — the
/// lane count is deliberately decoupled from `server_shards` so recorded
/// metrics stay invariant to the backend's layout).
struct Lane {
    /// Residual-class admission queue ([`Priority::Residual`]) — strictly
    /// first to dispatch.
    queue: VecDeque<Queued>,
    /// Probe-class admission queue ([`Priority::Probe`]) — dispatches
    /// when no residual waits, or after aging past the starvation bound.
    probes: VecDeque<Queued>,
    /// Kept sorted ascending by `(completion_ms, ticket)`; the head is
    /// the lane's next event. Windows are small (tens), so ordered
    /// insertion beats a heap's constant factor and keeps iteration
    /// order obvious.
    in_flight: Vec<InFlight>,
    /// Current AIMD in-flight window (pinned at `policy.window` when
    /// adaptive control is off).
    window: usize,
    /// Virtual time of the last multiplicative decrease: at most one
    /// shrink fires per distinct event time per lane (one decrease per
    /// congestion epoch, the classic AIMD discipline), so a burst of
    /// same-instant sheds does not collapse the window to the floor.
    last_shrink_ms: f64,
}

/// The blanket adapter: wraps **any** [`SpatialService`] (the single
/// tree, `ShardedService`, `FaultyService` — whose keyed fate draws stay
/// invariant to completion order) as an [`AsyncService`] driven by a
/// seeded virtual clock. See the module docs for the event-loop and
/// determinism semantics.
pub struct Transport<S> {
    inner: S,
    policy: TransportPolicy,
    seed: u64,
    mean_service_ms: f64,
    clock_ms: f64,
    next_ticket: u64,
    /// Per-request-id dispatch ordinals keying the service-time draws.
    attempts: HashMap<RequestId, u64>,
    lanes: Vec<Lane>,
    /// Shed replies staged for the next poll, stamped with their
    /// admission time.
    ready: Vec<(f64, Ticket, ServerReply)>,
    stats: TransportStats,
}

impl<S: SpatialService> Transport<S> {
    /// Default seeded mean of the exponential service-time distribution,
    /// milliseconds — the per-dispatch cost the virtual clock charges on
    /// top of whatever latency the wrapped service reports.
    pub const DEFAULT_MEAN_SERVICE_MS: f64 = 4.0;

    /// Wraps `inner` behind `lanes` uplink lanes under `policy`, with
    /// service times seeded by `seed`.
    pub fn new(inner: S, lanes: usize, seed: u64, policy: TransportPolicy) -> Self {
        assert!(lanes >= 1, "the transport needs at least one lane");
        assert!(policy.window >= 1, "in-flight window must be at least 1");
        assert!(policy.queue_cap >= 1, "queue capacity must be at least 1");
        if let Some(a) = policy.adaptive {
            assert!(
                a.window_min >= 1,
                "adaptive window floor must be at least 1"
            );
            assert!(
                a.window_min <= a.window_max,
                "adaptive window band must be non-empty"
            );
            assert!(
                a.shrink_den >= 1 && a.shrink_num < a.shrink_den,
                "multiplicative decrease must genuinely decrease"
            );
        }
        let start_window = policy.adaptive.map_or(policy.window, |a| a.start_window());
        let stats = TransportStats {
            window_min: start_window as u64,
            window_max: start_window as u64,
            window_final: (start_window * lanes) as u64,
            ..TransportStats::default()
        };
        Transport {
            inner,
            policy,
            seed,
            mean_service_ms: Self::DEFAULT_MEAN_SERVICE_MS,
            clock_ms: 0.0,
            next_ticket: 0,
            attempts: HashMap::new(),
            lanes: (0..lanes)
                .map(|_| Lane {
                    queue: VecDeque::new(),
                    probes: VecDeque::new(),
                    in_flight: Vec::new(),
                    window: start_window,
                    last_shrink_ms: f64::NEG_INFINITY,
                })
                .collect(),
            ready: Vec::new(),
            stats,
        }
    }

    /// Overrides the mean seeded service time (milliseconds; `0` charges
    /// only the wrapped service's reported latency).
    pub fn with_mean_service_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0, "mean service time cannot be negative");
        self.mean_service_ms = ms;
        self
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped service (e.g. POI relocation on a
    /// mutable backend; the event state is unaffected).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the inner service.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &TransportPolicy {
        &self.policy
    }

    /// Lifetime observability counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// The current virtual time, milliseconds.
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Requests admitted but not yet delivered (queued + in flight +
    /// staged shed replies).
    pub fn outstanding(&self) -> usize {
        self.ready.len()
            + self
                .lanes
                .iter()
                .map(|l| l.queue.len() + l.probes.len() + l.in_flight.len())
                .sum::<usize>()
    }

    /// Current AIMD windows, one per lane (each equals `policy.window`
    /// when adaptive control is off).
    pub fn lane_windows(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.window).collect()
    }

    /// Runs the clock past every outstanding event and returns the
    /// remaining completions.
    pub fn drain(&mut self) -> Vec<(Ticket, ServerReply)> {
        self.poll(f64::INFINITY)
    }

    fn lane_of(&self, id: RequestId) -> usize {
        (mix64(id.raw()) % self.lanes.len() as u64) as usize
    }

    fn note_depths(&mut self) {
        let queued: usize = self
            .lanes
            .iter()
            .map(|l| l.queue.len() + l.probes.len())
            .sum();
        let in_flight: usize = self.lanes.iter().map(|l| l.in_flight.len()).sum();
        self.stats.queue_depth_peak = self.stats.queue_depth_peak.max(queued as u64);
        self.stats.in_flight_peak = self.stats.in_flight_peak.max(in_flight as u64);
    }

    /// Applies one AIMD step to `lane`'s window, maintaining the window
    /// telemetry (`window_min`/`max`/`final`, grow/shrink counts).
    fn set_lane_window(&mut self, lane: usize, new_window: usize) {
        let old = self.lanes[lane].window;
        if new_window == old {
            return;
        }
        if new_window > old {
            self.stats.window_grows += 1;
        } else {
            self.stats.window_shrinks += 1;
        }
        self.lanes[lane].window = new_window;
        self.stats.window_final = self.stats.window_final + new_window as u64 - old as u64;
        self.stats.window_min = self.stats.window_min.min(new_window as u64);
        self.stats.window_max = self.stats.window_max.max(new_window as u64);
    }

    /// One multiplicative decrease for `lane` at virtual time `at_ms` —
    /// rate-limited to one shrink per distinct event time (one decrease
    /// per congestion epoch).
    fn shrink_lane(&mut self, lane: usize, at_ms: f64) {
        let Some(a) = self.policy.adaptive else {
            return;
        };
        if at_ms <= self.lanes[lane].last_shrink_ms {
            return;
        }
        self.lanes[lane].last_shrink_ms = at_ms;
        let shrunk = a.shrunk(self.lanes[lane].window);
        self.set_lane_window(lane, shrunk);
    }

    /// Dispatches from `lane`'s queue into its window at virtual time
    /// `at_ms` — on admission, or at the completion event that freed a
    /// slot.
    fn pump_lane(&mut self, lane: usize, at_ms: f64) {
        let aging_ms = self
            .policy
            .adaptive
            .map_or(f64::INFINITY, |a| a.probe_aging_ms);
        while self.lanes[lane].in_flight.len() < self.lanes[lane].window {
            // Deterministic two-class dequeue: residuals strictly first;
            // a probe passes a waiting residual only by aging past the
            // starvation bound (an *aged promotion*, never an inversion).
            let l = &self.lanes[lane];
            let probe_aged = l
                .probes
                .front()
                .is_some_and(|p| at_ms - p.enqueued_ms >= aging_ms);
            let residual_waiting = !l.queue.is_empty();
            let take_probe = match (residual_waiting, l.probes.is_empty()) {
                (false, true) => break,
                (false, false) => true,
                (true, true) => false,
                (true, false) => probe_aged,
            };
            if take_probe && residual_waiting {
                self.stats.aged_promotions += 1;
                if !probe_aged {
                    self.stats.priority_inversions += 1;
                }
            }
            let next = if take_probe {
                self.lanes[lane].probes.pop_front().expect("probe front")
            } else {
                self.lanes[lane].queue.pop_front().expect("residual front")
            };
            // Seeded service time, keyed by (seed, id, per-id dispatch
            // ordinal) — the same discipline as FaultyService's fate
            // draws, so the schedule is invariant to batch layout.
            let ordinal = self.attempts.entry(next.request.id).or_insert(0);
            let key = mix64(
                self.seed
                    .wrapping_add(mix64(next.request.id.raw()).wrapping_add(mix64(*ordinal))),
            );
            *ordinal += 1;
            let service_ms = if self.mean_service_ms > 0.0 {
                -self.mean_service_ms * (1.0 - SplitMix64(key).next_f64()).ln()
            } else {
                0.0
            };
            // The wrapped service runs at dispatch: its reply (and any
            // injected fault latency) is known now; only the *delivery*
            // waits for the completion event.
            let reply = self
                .inner
                .submit(std::slice::from_ref(&next.request))
                .pop()
                .expect("the wrapped service must reply to every request");
            debug_assert_eq!(reply.id, next.request.id);
            self.stats.dispatched += 1;
            let completion_ms = at_ms + service_ms + reply.latency_ms;
            let entry = InFlight {
                completion_ms,
                ticket: next.ticket,
                reply,
                enqueued_ms: next.enqueued_ms,
            };
            let flight = &mut self.lanes[lane].in_flight;
            let pos = flight
                .binary_search_by(|f| {
                    f.completion_ms
                        .total_cmp(&entry.completion_ms)
                        .then(f.ticket.cmp(&entry.ticket))
                })
                .unwrap_err();
            flight.insert(pos, entry);
        }
        self.note_depths();
    }

    /// The lane holding the globally earliest completion event, if any.
    fn next_event(&self) -> Option<(usize, f64, Ticket)> {
        self.lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.in_flight.first().map(|f| (i, f.completion_ms, f.ticket)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)))
    }

    /// [`AsyncService::enqueue`] with an explicit [`Priority`] class.
    /// The trait method admits everything as [`Priority::Residual`], so
    /// class-unaware callers see the historical single-queue behavior.
    pub fn enqueue_prioritized(&mut self, request: ServerRequest, priority: Priority) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let lane = self.lane_of(request.id);
        let backlog = self.lanes[lane].queue.len() + self.lanes[lane].probes.len();
        if self.policy.shed && backlog >= self.policy.queue_cap {
            // Admission control: refuse at the edge instead of letting
            // the queue (and everyone's latency) grow without bound. A
            // shed is the overload signal AIMD reacts to.
            self.stats.shed += 1;
            self.shrink_lane(lane, self.clock_ms);
            let reply = ServerReply {
                id: request.id,
                status: ReplyStatus::Shed,
                response: Default::default(),
                latency_ms: 0.0,
            };
            self.ready.push((self.clock_ms, ticket, reply));
            return ticket;
        }
        self.stats.enqueued += 1;
        let queued = Queued {
            ticket,
            request,
            enqueued_ms: self.clock_ms,
        };
        match priority {
            Priority::Residual => self.lanes[lane].queue.push_back(queued),
            Priority::Probe => self.lanes[lane].probes.push_back(queued),
        }
        self.note_depths();
        self.pump_lane(lane, self.clock_ms);
        ticket
    }

    /// [`AsyncService::poll`] with each reply stamped with its virtual
    /// completion time — the hook the budgeted retry ladder needs to
    /// refill its token bucket at event times (never at poll boundaries,
    /// which would leak poll granularity into the budget trajectory).
    pub fn poll_timed(&mut self, now_ms: f64) -> Vec<(f64, Ticket, ServerReply)> {
        let mut due: Vec<(f64, Ticket, ServerReply)> = Vec::new();
        // Staged shed replies whose admission time has passed.
        let mut i = 0;
        while i < self.ready.len() {
            if self.ready[i].0 <= now_ms {
                due.push(self.ready.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // The discrete-event loop: run completions in (time, ticket)
        // order up to `now_ms`; each completion frees a window slot and
        // pumps its lane at the event's own time.
        while let Some((lane, at, _)) = self.next_event() {
            if at > now_ms {
                break;
            }
            let done = self.lanes[lane].in_flight.remove(0);
            self.stats.completed += 1;
            let latency_ms = done.completion_ms - done.enqueued_ms;
            self.stats.record_latency(latency_ms);
            // AIMD, inside the (time, ticket)-ordered loop so the window
            // trajectory is a pure function of the event schedule: grow
            // on a healthy Ok, shrink on timeout, hold otherwise.
            if let Some(a) = self.policy.adaptive {
                match done.reply.status {
                    ReplyStatus::Ok if latency_ms <= a.latency_target_ms => {
                        let grown = a.grown(self.lanes[lane].window);
                        self.set_lane_window(lane, grown);
                    }
                    ReplyStatus::TimedOut => self.shrink_lane(lane, at),
                    _ => {}
                }
            }
            due.push((done.completion_ms, done.ticket, done.reply));
            self.pump_lane(lane, at);
        }
        if now_ms.is_finite() {
            self.clock_ms = self.clock_ms.max(now_ms);
        } else if let Some((t, _, _)) = due.last() {
            self.clock_ms = self.clock_ms.max(*t);
        }
        due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        due
    }
}

impl<S: SpatialService> AsyncService for Transport<S> {
    fn enqueue(&mut self, request: ServerRequest) -> Ticket {
        self.enqueue_prioritized(request, Priority::Residual)
    }

    fn poll(&mut self, now_ms: f64) -> Vec<(Ticket, ServerReply)> {
        self.poll_timed(now_ms)
            .into_iter()
            .map(|(_, t, r)| (t, r))
            .collect()
    }
}

/// One request mid-ladder inside the [`AsyncClient`].
struct PendingRequest {
    client_ticket: Ticket,
    request: ServerRequest,
    outcome: RequestOutcome,
    /// Pruned attempts completed so far.
    attempt: u32,
    /// True once the degraded (unpruned) attempt is in flight.
    degraded: bool,
    backoff_ms: f64,
    /// Admission class; retries re-enqueue in the same class.
    priority: Priority,
}

/// The asynchronous client: an event-driven [`Transport`] plus the retry
/// ladder, delivering one final [`RequestOutcome`] per submission — the
/// async superset of [`submit_with_retry`], with identical dispositions
/// for the same keyed fault schedule.
pub struct AsyncClient<S> {
    transport: Transport<S>,
    retry: RetryPolicy,
    /// Token-bucket retry budget: unlimited (the historical ladder) when
    /// [`TransportPolicy::adaptive`] is `None`, shed-aware otherwise.
    budget: RetryBudget,
    /// Keyed by the *latest attempt's* transport ticket.
    pending: HashMap<Ticket, PendingRequest>,
}

impl<S: SpatialService> AsyncClient<S> {
    /// Wraps `service` behind `lanes` transport lanes under `policy`.
    pub fn new(service: S, lanes: usize, seed: u64, policy: TransportPolicy) -> Self {
        AsyncClient {
            transport: Transport::new(service, lanes, seed, policy),
            retry: policy.retry,
            budget: policy
                .adaptive
                .as_ref()
                .map_or_else(RetryBudget::unlimited, RetryBudget::from_policy),
            pending: HashMap::new(),
        }
    }

    /// Overrides the transport's mean seeded service time (milliseconds).
    pub fn with_mean_service_ms(mut self, ms: f64) -> Self {
        self.transport = self.transport.with_mean_service_ms(ms);
        self
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        self.transport.inner()
    }

    /// Mutable access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut S {
        self.transport.inner_mut()
    }

    /// The transport's lifetime observability counters.
    pub fn stats(&self) -> &TransportStats {
        self.transport.stats()
    }

    /// The retry token bucket (always-granting when adaptive control is
    /// off).
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// Retries refused by the budget so far (lifetime).
    pub fn retries_denied(&self) -> u64 {
        self.budget.denied()
    }

    /// The underlying transport (e.g. for AIMD window telemetry).
    pub fn transport(&self) -> &Transport<S> {
        &self.transport
    }

    /// The current virtual time, milliseconds.
    pub fn clock_ms(&self) -> f64 {
        self.transport.clock_ms()
    }

    /// Submissions whose ladders have not resolved yet.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Submits one request; its final [`RequestOutcome`] arrives from a
    /// later [`Self::poll`] (or [`Self::drain`]), matched by the returned
    /// ticket.
    pub fn submit(&mut self, request: ServerRequest) -> Ticket {
        self.submit_prioritized(request, Priority::Residual)
    }

    /// [`Self::submit`] with an explicit admission class: `Residual`
    /// (default) dispatches strictly ahead of `Probe` traffic; retries
    /// keep their submission's class.
    pub fn submit_prioritized(&mut self, request: ServerRequest, priority: Priority) -> Ticket {
        let ticket = self.transport.enqueue_prioritized(request, priority);
        self.pending.insert(
            ticket,
            PendingRequest {
                client_ticket: ticket,
                request,
                outcome: RequestOutcome::default(),
                attempt: 0,
                degraded: false,
                backoff_ms: self.retry.backoff_base_ms,
                priority,
            },
        );
        ticket
    }

    /// Advances the virtual clock to `now_ms` and returns every
    /// submission whose ladder *resolved* by then, sorted by submission
    /// ticket — so folding the results in returned order is deterministic
    /// and invariant to completion-order permutations. Failed attempts
    /// re-enqueue their retries (with virtual backoff accounted in
    /// [`RequestOutcome::waited_ms`]) and stay pending.
    pub fn poll(&mut self, now_ms: f64) -> Vec<(Ticket, RequestOutcome)> {
        let mut resolved: Vec<(Ticket, RequestOutcome)> = Vec::new();
        for (at_ms, ticket, reply) in self.transport.poll_timed(now_ms) {
            // Budget refills are granted at each reply's own virtual
            // completion time — never at the poll boundary — so the
            // token trajectory is invariant to poll granularity.
            self.budget.advance_to(at_ms);
            let mut p = self
                .pending
                .remove(&ticket)
                .expect("every transport completion matches a pending ladder");
            p.outcome.waited_ms += reply.latency_ms;
            match reply.status {
                ReplyStatus::Ok => {
                    p.outcome.response = reply.response;
                    p.outcome.degraded = p.degraded;
                    resolved.push((p.client_ticket, p.outcome));
                }
                ReplyStatus::Shed => {
                    // Terminal: the admission edge refused the work —
                    // and the budget tightens its next refill.
                    self.budget.note_shed();
                    p.outcome.shed += 1;
                    p.outcome.failed = true;
                    resolved.push((p.client_ticket, p.outcome));
                }
                ReplyStatus::TimedOut => {
                    p.outcome.timeouts += 1;
                    self.retry_or_fail(p, &mut resolved);
                }
                ReplyStatus::Dropped => {
                    p.outcome.drops += 1;
                    self.retry_or_fail(p, &mut resolved);
                }
            }
        }
        resolved.sort_by_key(|(t, _)| *t);
        resolved
    }

    /// Runs the clock past every outstanding event (retries included)
    /// and returns the remaining resolutions, sorted by ticket.
    pub fn drain(&mut self) -> Vec<(Ticket, RequestOutcome)> {
        let mut resolved = Vec::new();
        while !self.pending.is_empty() {
            // A step that resolves no ladder can still make progress: an
            // attempt that failed re-enqueues its retry, so measure
            // progress in transport deliveries, not resolutions.
            let delivered = self.transport.stats().completed;
            let step = self.poll(f64::INFINITY);
            debug_assert!(
                !step.is_empty() || self.transport.stats().completed > delivered,
                "a drain step must make progress"
            );
            resolved.extend(step);
        }
        resolved.sort_by_key(|(t, _)| *t);
        resolved
    }

    /// One failed attempt: climb the ladder (retry → degrade → fail),
    /// mirroring [`submit_with_retry`]'s rounds exactly.
    fn retry_or_fail(
        &mut self,
        mut p: PendingRequest,
        resolved: &mut Vec<(Ticket, RequestOutcome)>,
    ) {
        p.attempt += 1;
        let wants_retry = !p.degraded && p.attempt < self.retry.max_attempts.max(1);
        let wants_degrade = !p.degraded && self.retry.degrade_unpruned;
        if (wants_retry || wants_degrade) && !self.budget.try_debit() {
            // Budget empty: the ladder ends here, the denial counted
            // exactly once on the outcome.
            p.outcome.retries_denied += 1;
            p.outcome.failed = true;
            resolved.push((p.client_ticket, p.outcome));
            return;
        }
        if wants_retry {
            p.outcome.retries += 1;
            p.outcome.waited_ms += p.backoff_ms;
            p.backoff_ms *= self.retry.backoff_factor;
            let ticket = self.transport.enqueue_prioritized(p.request, p.priority);
            self.pending.insert(ticket, p);
        } else if wants_degrade {
            p.degraded = true;
            p.outcome.retries += 1;
            p.outcome.waited_ms += p.backoff_ms;
            let ticket = self
                .transport
                .enqueue_prioritized(p.request.unpruned(), p.priority);
            self.pending.insert(ticket, p);
        } else {
            p.outcome.failed = true;
            resolved.push((p.client_ticket, p.outcome));
        }
    }
}

/// Submits `requests` through `service`, retrying failed requests in
/// (re-batched) rounds per `policy`. Returns one outcome per request, in
/// request order. Purely deterministic for a deterministic service: retry
/// rounds re-submit failures in their original request order.
///
/// This is the *blocking* form of the ladder — the whole batch resolves
/// before the call returns, with all waiting virtual (accounted in
/// [`RequestOutcome::waited_ms`], never slept). [`AsyncClient`] runs the
/// same ladder over the event loop when completions should overlap other
/// work.
pub fn submit_with_retry(
    service: &dyn SpatialService,
    requests: &[ServerRequest],
    policy: &RetryPolicy,
) -> Vec<RequestOutcome> {
    // The historical unconditional ladder is the budgeted ladder with an
    // always-granting bucket — one implementation, bit-identical
    // dispositions (regression-tested in tests/transport_conformance.rs).
    submit_budgeted(service, requests, policy, &mut RetryBudget::unlimited())
}

/// [`submit_with_retry`] under a [`RetryBudget`]: every re-submission
/// (pruned retry round or the degraded unpruned round) debits one token
/// per request; a denied request resolves `failed` with
/// [`RequestOutcome::retries_denied`] counted exactly once. `Shed`
/// replies feed the bucket's shed pressure. With
/// [`RetryBudget::unlimited`] this is exactly the historical ladder.
///
/// The blocking form never advances the bucket's virtual clock (there is
/// no event loop to anchor refills to): the budget passed in is spent,
/// not refilled — callers running repeated batches refill by calling
/// [`RetryBudget::advance_to`] between batches.
pub fn submit_budgeted(
    service: &dyn SpatialService,
    requests: &[ServerRequest],
    policy: &RetryPolicy,
    budget: &mut RetryBudget,
) -> Vec<RequestOutcome> {
    let mut outcomes: Vec<RequestOutcome> =
        requests.iter().map(|_| RequestOutcome::default()).collect();
    if requests.is_empty() {
        return outcomes;
    }
    // Indices (into `requests`) still awaiting an answer.
    let mut open: Vec<usize> = (0..requests.len()).collect();
    let mut round_batch: Vec<ServerRequest> = Vec::new();
    let mut backoff = policy.backoff_base_ms;
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if open.is_empty() {
            break;
        }
        if attempt > 0 {
            // A retry round: each open request needs a token. Denied
            // requests fail here, in request order, before the round.
            let mut granted = Vec::with_capacity(open.len());
            for &i in &open {
                if budget.try_debit() {
                    outcomes[i].retries += 1;
                    outcomes[i].waited_ms += backoff;
                    granted.push(i);
                } else {
                    outcomes[i].retries_denied += 1;
                    outcomes[i].failed = true;
                }
            }
            open = granted;
            backoff *= policy.backoff_factor;
            if open.is_empty() {
                break;
            }
        }
        round_batch.clear();
        round_batch.extend(open.iter().map(|&i| requests[i]));
        let replies = service.submit(&round_batch);
        debug_assert_eq!(replies.len(), round_batch.len(), "one reply per request");
        let mut still_open = Vec::new();
        for (&i, reply) in open.iter().zip(&replies) {
            let out = &mut outcomes[i];
            out.waited_ms += reply.latency_ms;
            match reply.status {
                ReplyStatus::Ok => out.response = reply.response.clone(),
                ReplyStatus::TimedOut => {
                    out.timeouts += 1;
                    still_open.push(i);
                }
                ReplyStatus::Dropped => {
                    out.drops += 1;
                    still_open.push(i);
                }
                ReplyStatus::Shed => {
                    // Terminal (see the module docs): retrying against a
                    // shedding admission edge would tighten the overload.
                    budget.note_shed();
                    out.shed += 1;
                    out.failed = true;
                }
            }
        }
        open = still_open;
    }
    // Graceful degradation: one unpruned attempt for whatever is left —
    // a re-submission like any other, so it needs a token too.
    if !open.is_empty() && policy.degrade_unpruned {
        let mut granted = Vec::with_capacity(open.len());
        for &i in &open {
            if budget.try_debit() {
                outcomes[i].retries += 1;
                outcomes[i].waited_ms += backoff;
                granted.push(i);
            } else {
                outcomes[i].retries_denied += 1;
                outcomes[i].failed = true;
            }
        }
        open = granted;
        round_batch.clear();
        round_batch.extend(open.iter().map(|&i| requests[i].unpruned()));
        let replies = if round_batch.is_empty() {
            Vec::new()
        } else {
            service.submit(&round_batch)
        };
        let mut still_open = Vec::new();
        for (&i, reply) in open.iter().zip(&replies) {
            let out = &mut outcomes[i];
            out.waited_ms += reply.latency_ms;
            match reply.status {
                ReplyStatus::Ok => {
                    out.response = reply.response.clone();
                    out.degraded = true;
                }
                ReplyStatus::TimedOut => {
                    out.timeouts += 1;
                    still_open.push(i);
                }
                ReplyStatus::Dropped => {
                    out.drops += 1;
                    still_open.push(i);
                }
                ReplyStatus::Shed => {
                    budget.note_shed();
                    out.shed += 1;
                    out.failed = true;
                }
            }
        }
        open = still_open;
    }
    for i in open {
        outcomes[i].failed = true;
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;
    use senn_geom::Point;

    fn server() -> RTreeServer {
        RTreeServer::new((0..64).map(|i| (i as u64, Point::new(i as f64, 0.0))))
    }

    fn requests(n: u64) -> Vec<ServerRequest> {
        (0..n)
            .map(|i| ServerRequest::plain(i, Point::new(i as f64 * 0.7 + 0.01, 0.4), 3))
            .collect()
    }

    fn policy(window: usize, queue_cap: usize) -> TransportPolicy {
        TransportPolicy {
            retry: RetryPolicy::NONE,
            window,
            queue_cap,
            shed: true,
            adaptive: None,
        }
    }

    #[test]
    fn completions_match_tickets_and_answers_are_correct() {
        let mut t = Transport::new(server(), 2, 7, policy(4, 64));
        let reqs = requests(10);
        let tickets: Vec<Ticket> = reqs.iter().map(|r| t.enqueue(*r)).collect();
        let done = t.drain();
        assert_eq!(done.len(), 10);
        // Every ticket resolves exactly once, and each reply echoes its
        // request's id with the right answer.
        let mut seen: Vec<Ticket> = done.iter().map(|(t, _)| *t).collect();
        seen.sort();
        let mut want = tickets.clone();
        want.sort();
        assert_eq!(seen, want);
        for (ticket, reply) in &done {
            let idx = tickets.iter().position(|t| t == ticket).unwrap();
            assert_eq!(reply.id, reqs[idx].id);
            assert_eq!(reply.status, ReplyStatus::Ok);
            assert_eq!(
                reply.response.pois[0].0.poi_id,
                reqs[idx].query.x.round() as u64
            );
        }
        assert_eq!(t.stats().completed, 10);
        assert_eq!(t.stats().shed, 0);
    }

    #[test]
    fn completion_order_is_by_virtual_time_not_enqueue_order() {
        // With seeded exponential service times, 24 requests on one lane
        // with a window of 8 complete out of enqueue order.
        let mut t = Transport::new(server(), 1, 3, policy(8, 64));
        for r in requests(24) {
            t.enqueue(r);
        }
        let done = t.drain();
        let order: Vec<u64> = done.iter().map(|(t, _)| t.seq()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_ne!(
            order, sorted,
            "seeded service times must reorder completions"
        );
        assert_eq!(sorted, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn event_schedule_is_a_pure_function_of_seed_and_ids() {
        let run = |seed: u64| {
            let mut t = Transport::new(server(), 2, seed, policy(4, 64));
            for r in requests(20) {
                t.enqueue(r);
            }
            t.drain()
                .iter()
                .map(|(ticket, r)| (ticket.seq(), r.id.raw(), r.latency_ms.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11), "same seed ⇒ bit-identical schedule");
        assert_ne!(run(11), run(12), "the seed genuinely drives the schedule");
    }

    #[test]
    fn window_bounds_in_flight_and_queue_bounds_admission() {
        let mut t = Transport::new(server(), 1, 5, policy(2, 3));
        for r in requests(12) {
            t.enqueue(r);
        }
        // 2 dispatched immediately, 3 queued, 7 shed.
        assert_eq!(t.stats().in_flight_peak, 2);
        assert_eq!(t.stats().queue_depth_peak, 3);
        assert_eq!(t.stats().shed, 7);
        let done = t.drain();
        assert_eq!(done.len(), 12, "shed replies still resolve their tickets");
        let shed = done
            .iter()
            .filter(|(_, r)| r.status == ReplyStatus::Shed)
            .count();
        assert_eq!(shed, 7);
        assert!((t.stats().shed_fraction() - 7.0 / 12.0).abs() < 1e-12);
        // In-flight never exceeded the window while draining.
        assert_eq!(t.stats().in_flight_peak, 2);
    }

    #[test]
    fn unbounded_mode_never_sheds() {
        let mut t = Transport::new(
            server(),
            1,
            5,
            TransportPolicy {
                shed: false,
                ..policy(1, 1)
            },
        );
        for r in requests(50) {
            t.enqueue(r);
        }
        assert_eq!(t.stats().shed, 0);
        assert_eq!(t.drain().len(), 50);
    }

    #[test]
    fn poll_respects_the_clock() {
        let mut t = Transport::new(server(), 1, 9, policy(4, 64)).with_mean_service_ms(10.0);
        for r in requests(8) {
            t.enqueue(r);
        }
        let early = t.poll(0.001);
        let late = t.drain();
        assert!(early.len() < 8, "nothing meaningful completes in 1 µs");
        assert_eq!(early.len() + late.len(), 8);
        assert!(t.clock_ms() > 0.0);
    }

    #[test]
    fn client_ladder_matches_blocking_dispositions_under_keyed_faults() {
        let fixture = |seed| {
            // A deterministic flaky wrapper with keyed fates, mirroring
            // senn-server's FaultyService keying (which lives downstream
            // of this crate): fail each id's first `id % 3` attempts.
            struct Keyed {
                inner: RTreeServer,
                attempts: std::cell::RefCell<HashMap<RequestId, u64>>,
            }
            impl SpatialService for Keyed {
                fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
                    batch
                        .iter()
                        .map(|r| {
                            let mut map = self.attempts.borrow_mut();
                            let ordinal = map.entry(r.id).or_insert(0);
                            *ordinal += 1;
                            if *ordinal <= r.id.raw() % 3 {
                                ServerReply {
                                    id: r.id,
                                    status: if r.id.raw() % 2 == 0 {
                                        ReplyStatus::Dropped
                                    } else {
                                        ReplyStatus::TimedOut
                                    },
                                    response: Default::default(),
                                    latency_ms: 5.0,
                                }
                            } else {
                                let mut reply =
                                    self.inner.submit(std::slice::from_ref(r)).pop().unwrap();
                                reply.latency_ms = 1.0;
                                reply
                            }
                        })
                        .collect()
                }
                fn poi_count(&self) -> usize {
                    self.inner.poi_count()
                }
            }
            let _ = seed;
            Keyed {
                inner: server(),
                attempts: std::cell::RefCell::new(HashMap::new()),
            }
        };
        let reqs = requests(30);
        let blocking = submit_with_retry(&fixture(0), &reqs, &RetryPolicy::default());
        let mut client = AsyncClient::new(
            fixture(0),
            3,
            42,
            TransportPolicy {
                retry: RetryPolicy::default(),
                window: 4,
                queue_cap: 1024,
                shed: true,
                adaptive: None,
            },
        );
        let tickets: Vec<Ticket> = reqs.iter().map(|r| client.submit(*r)).collect();
        let resolved = client.drain();
        assert_eq!(resolved.len(), reqs.len());
        for ((ticket, got), want) in resolved.iter().zip(&blocking) {
            let idx = tickets.iter().position(|t| t == ticket).unwrap();
            assert_eq!(got.retries, blocking[idx].retries, "request {idx}");
            assert_eq!(got.timeouts, blocking[idx].timeouts);
            assert_eq!(got.drops, blocking[idx].drops);
            assert_eq!(got.degraded, blocking[idx].degraded);
            assert_eq!(got.failed, blocking[idx].failed);
            let got_ids: Vec<u64> = got.response.pois.iter().map(|(p, _)| p.poi_id).collect();
            let want_ids: Vec<u64> = blocking[idx]
                .response
                .pois
                .iter()
                .map(|(p, _)| p.poi_id)
                .collect();
            assert_eq!(got_ids, want_ids, "request {idx}");
            let _ = want;
        }
    }

    #[test]
    fn shed_is_terminal_for_the_ladder() {
        // Window 1, queue 1: a burst of 6 sheds most of itself, and shed
        // submissions resolve failed without retries.
        let mut client = AsyncClient::new(
            server(),
            1,
            3,
            TransportPolicy {
                retry: RetryPolicy::default(),
                window: 1,
                queue_cap: 1,
                shed: true,
                adaptive: None,
            },
        );
        for r in requests(6) {
            client.submit(r);
        }
        let resolved = client.drain();
        assert_eq!(resolved.len(), 6);
        let shed: Vec<_> = resolved.iter().filter(|(_, o)| o.shed > 0).collect();
        assert_eq!(shed.len(), 4, "2 admitted (1 in flight + 1 queued), 4 shed");
        for (_, o) in &shed {
            assert!(o.failed);
            assert_eq!(o.retries, 0, "shed is terminal, not retried");
            assert!(o.response.pois.is_empty());
        }
        assert_eq!(client.stats().shed, 4);
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut t = Transport::new(server(), 1, 5, policy(1, 64)).with_mean_service_ms(10.0);
        for r in requests(16) {
            t.enqueue(r);
        }
        t.drain();
        let s = t.stats();
        assert_eq!(s.completed, 16);
        assert!(s.latency_sum_ms > 0.0);
        assert!(s.mean_latency_ms() > 0.0);
        // Window 1 serializes the lane: later requests queue, so the p99
        // (bucket edge) dominates the p50.
        assert!(s.p99_latency_ms() >= s.p50_latency_ms());
        assert!(s.p50_latency_ms() > 0.0);
    }

    #[test]
    fn request_id_newtype_round_trips() {
        let id = RequestId::from_index(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(u64::from(id), 7);
        assert_eq!(RequestId::from(7u64), id);
        assert_eq!(id.to_string(), "7");
    }

    /// A backend that records dispatch order and answers instantly — the
    /// probe/residual scheduling oracle.
    struct Recorder {
        order: std::cell::RefCell<Vec<u64>>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                order: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl SpatialService for Recorder {
        fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
            batch
                .iter()
                .map(|r| {
                    self.order.borrow_mut().push(r.id.raw());
                    ServerReply {
                        id: r.id,
                        status: ReplyStatus::Ok,
                        response: Default::default(),
                        latency_ms: 1.0,
                    }
                })
                .collect()
        }

        fn poi_count(&self) -> usize {
            0
        }
    }

    /// A backend that times out every attempt.
    struct AlwaysTimesOut;

    impl SpatialService for AlwaysTimesOut {
        fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
            batch
                .iter()
                .map(|r| ServerReply {
                    id: r.id,
                    status: ReplyStatus::TimedOut,
                    response: Default::default(),
                    latency_ms: 2.0,
                })
                .collect()
        }

        fn poi_count(&self) -> usize {
            0
        }
    }

    fn adaptive_policy(a: AdaptivePolicy, queue_cap: usize) -> TransportPolicy {
        TransportPolicy {
            retry: RetryPolicy::NONE,
            window: a.start_window(),
            queue_cap,
            shed: true,
            adaptive: Some(a),
        }
    }

    #[test]
    fn healthy_completions_grow_the_window_to_the_cap() {
        let a = AdaptivePolicy {
            window_min: 1,
            window_start: 1,
            window_max: 8,
            latency_target_ms: 1e9,
            ..AdaptivePolicy::default()
        };
        let mut t = Transport::new(server(), 1, 3, adaptive_policy(a, 64));
        for r in requests(32) {
            t.enqueue(r);
        }
        t.drain();
        assert_eq!(t.lane_windows(), vec![8], "32 healthy Oks converge to max");
        assert_eq!(t.stats().window_min, 1);
        assert_eq!(t.stats().window_max, 8);
        assert_eq!(t.stats().window_final, 8);
        assert_eq!(t.stats().window_grows, 7);
        assert_eq!(t.stats().window_shrinks, 0);
        assert_eq!(t.stats().priority_inversions, 0);
    }

    #[test]
    fn timeouts_shrink_the_window_to_the_floor() {
        let a = AdaptivePolicy {
            window_min: 1,
            window_start: 8,
            window_max: 8,
            ..AdaptivePolicy::default()
        };
        let mut t = Transport::new(AlwaysTimesOut, 1, 3, adaptive_policy(a, 64));
        for r in requests(32) {
            t.enqueue(r);
        }
        t.drain();
        assert_eq!(t.lane_windows(), vec![1], "timeouts halve 8 → 4 → 2 → 1");
        assert_eq!(t.stats().window_min, 1);
        assert!(t.stats().window_shrinks >= 3);
        assert_eq!(t.stats().window_grows, 0);
    }

    #[test]
    fn a_shed_burst_shrinks_once_per_congestion_epoch() {
        let a = AdaptivePolicy {
            window_min: 1,
            window_start: 4,
            window_max: 4,
            latency_target_ms: 0.0,
            ..AdaptivePolicy::default()
        };
        let mut t = Transport::new(server(), 1, 5, adaptive_policy(a, 1));
        // 12 same-instant enqueues: 4 dispatch, 1 queues, 7 shed — all at
        // virtual time 0, so exactly one multiplicative decrease fires.
        for r in requests(12) {
            t.enqueue(r);
        }
        assert_eq!(t.stats().shed, 7);
        assert_eq!(t.stats().window_shrinks, 1, "one shrink per epoch");
        assert_eq!(t.lane_windows(), vec![2]);
        assert_eq!(t.stats().window_min, 2);
        t.drain();
    }

    #[test]
    fn clamped_adaptive_is_bit_identical_to_static() {
        let run = |adaptive: Option<AdaptivePolicy>| {
            let mut t = Transport::new(
                server(),
                2,
                17,
                TransportPolicy {
                    retry: RetryPolicy::NONE,
                    window: 3,
                    queue_cap: 4,
                    shed: true,
                    adaptive,
                },
            );
            for r in requests(40) {
                t.enqueue(r);
            }
            let done: Vec<(u64, u64, u64)> = t
                .drain()
                .iter()
                .map(|(ticket, r)| (ticket.seq(), r.id.raw(), r.latency_ms.to_bits()))
                .collect();
            (done, t.stats().clone())
        };
        let (static_done, static_stats) = run(None);
        let (clamped_done, clamped_stats) = run(Some(AdaptivePolicy::clamped(3)));
        assert_eq!(static_done, clamped_done);
        assert_eq!(static_stats, clamped_stats);
    }

    #[test]
    fn probes_yield_to_residuals_until_they_age() {
        // Strict priority: a queued residual passes an older queued probe.
        let a = AdaptivePolicy {
            window_min: 1,
            window_start: 1,
            window_max: 1,
            ..AdaptivePolicy::default()
        };
        let mut t =
            Transport::new(Recorder::new(), 1, 9, adaptive_policy(a, 64)).with_mean_service_ms(0.0);
        t.enqueue_prioritized(requests(3)[0], Priority::Residual); // id 0: dispatches
        t.enqueue_prioritized(requests(3)[1], Priority::Probe); // id 1: queued probe
        t.enqueue_prioritized(requests(3)[2], Priority::Residual); // id 2: queued residual
        t.drain();
        assert_eq!(
            *t.inner().order.borrow(),
            vec![0, 2, 1],
            "the residual passes the earlier-queued probe"
        );
        assert_eq!(t.stats().priority_inversions, 0);
        assert_eq!(t.stats().aged_promotions, 0);

        // Aging: with a zero aging bound the probe is promoted instead.
        let aged = AdaptivePolicy {
            probe_aging_ms: 0.0,
            ..a
        };
        let mut t = Transport::new(Recorder::new(), 1, 9, adaptive_policy(aged, 64))
            .with_mean_service_ms(0.0);
        t.enqueue_prioritized(requests(3)[0], Priority::Residual);
        t.enqueue_prioritized(requests(3)[1], Priority::Probe);
        t.enqueue_prioritized(requests(3)[2], Priority::Residual);
        t.drain();
        assert_eq!(
            *t.inner().order.borrow(),
            vec![0, 1, 2],
            "an aged probe is promoted ahead of the residual"
        );
        assert!(t.stats().aged_promotions >= 1);
        assert_eq!(t.stats().priority_inversions, 0);
    }

    #[test]
    fn empty_budget_denies_retries_exactly_once_per_ladder() {
        let a = AdaptivePolicy {
            retry_tokens: 1,
            retry_cap: 1,
            retry_refill: 0,
            ..AdaptivePolicy::default()
        };
        let mut client = AsyncClient::new(
            AlwaysTimesOut,
            1,
            3,
            TransportPolicy {
                retry: RetryPolicy::default(),
                window: 4,
                queue_cap: 64,
                shed: true,
                adaptive: Some(a),
            },
        );
        for r in requests(4) {
            client.submit(r);
        }
        let resolved = client.drain();
        assert_eq!(resolved.len(), 4);
        let denied: u32 = resolved.iter().map(|(_, o)| o.retries_denied).sum();
        let retried: u32 = resolved.iter().map(|(_, o)| o.retries).sum();
        assert_eq!(retried, 1, "one token granted exactly one retry");
        assert_eq!(denied, 4, "every ladder eventually hits the empty bucket");
        assert_eq!(client.retries_denied(), 4);
        for (_, o) in &resolved {
            assert!(o.failed, "every ladder against AlwaysTimesOut fails");
            assert!(o.retries_denied <= 1, "a denial is terminal — counted once");
        }
    }
}
