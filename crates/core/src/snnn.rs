//! Algorithm 2: the Sharing-based Network distance Nearest Neighbor
//! (SNNN) query (Section 3.4).
//!
//! SNNN extends IER (Incremental Euclidean Restriction): run SENN for the
//! `k` Euclidean NNs, compute their target-metric distances with the
//! [`DistanceModel`], and keep pulling the next Euclidean NN (peers first,
//! then server) while its Euclidean distance is within the current k-th
//! target distance — sound because `ED <= ND` (the Euclidean lower-bound
//! property, part of the [`DistanceModel`] contract).
//!
//! The expansion loop is a generic driver over any [`DistanceModel`]:
//! `senn_network::NetworkDistance` wraps A\*/Dijkstra for the road-network
//! metric, while the degenerate [`crate::distance::Euclidean`] model makes
//! the driver collapse to plain SENN. Every SENN round runs through the
//! same staged pipeline ([`crate::pipeline`]) as Algorithm 1, and all
//! rounds fold into one [`QueryTrace`].

use std::borrow::Borrow;

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::Point;

use crate::distance::{DistanceModel, LowerBoundOracle, NeverPrune};
use crate::pipeline::QueryContext;
use crate::senn::SennEngine;
use crate::service::SpatialService;
use crate::trace::QueryTrace;

/// Configuration of the SNNN search.
#[derive(Clone, Copy, Debug)]
pub struct SnnnConfig {
    /// Safety cap on the number of extra Euclidean NNs pulled beyond `k`.
    /// When the cap ends the expansion before the distance bound confirms
    /// the answer, the outcome's trace carries
    /// [`QueryTrace::cap_hit`] — the results may be inexact.
    pub max_expansion: usize,
}

impl Default for SnnnConfig {
    fn default() -> Self {
        SnnnConfig { max_expansion: 256 }
    }
}

/// One SNNN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnnnNeighbor {
    /// The POI.
    pub poi: CachedNn,
    /// Network (target-metric) distance from the query point.
    pub network_dist: f64,
    /// Euclidean distance from the query point.
    pub euclid_dist: f64,
}

/// The outcome of an SNNN query.
#[derive(Clone, Debug)]
pub struct SnnnOutcome {
    /// The `k` network-nearest POIs, ascending by network distance.
    pub results: Vec<SnnnNeighbor>,
    /// The unified trace of every SENN round: per-round resolutions,
    /// total server accesses, stage timings and the expansion
    /// [`QueryTrace::cap_hit`] flag.
    pub trace: QueryTrace,
}

impl SnnnOutcome {
    /// Number of SENN invocations performed (1 + expansions).
    pub fn senn_calls(&self) -> usize {
        self.trace.senn_rounds()
    }
}

/// The ranking/termination state machine of one SNNN expansion,
/// factored out of [`snnn_query_with`] so batch drivers (the simulator's
/// network mode) that serve each Euclidean round through their own
/// channel — deferred residual batches, retry policies — share the exact
/// expansion logic with the library driver instead of re-implementing it.
///
/// Protocol: [`SnnnExpansion::begin`] with the initial `k`-NN round, then
/// while [`SnnnExpansion::needs_round`] run a SENN round asking
/// [`SnnnExpansion::next_k`] Euclidean NNs and [`SnnnExpansion::offer`]
/// its results. The driver decides the round budget; when it stops while
/// [`SnnnExpansion::cap_hit`] is true, the answer is unconfirmed and the
/// outcome's trace must say so.
#[derive(Clone, Debug)]
pub struct SnnnExpansion {
    query: Point,
    k: usize,
    results: Vec<SnnnNeighbor>,
    /// Euclidean rounds offered so far (round `i` asks `k + i` NNs).
    rounds: usize,
    /// True once no further round can change the results.
    finished: bool,
    /// True when the distance bound (or POI exhaustion) confirmed the
    /// answer — the opposite of a cap/abort truncation.
    confirmed: bool,
    /// Lower-bound oracle consultations performed so far.
    lb_evals: u64,
    /// Exact model evaluations skipped because the lower bound already
    /// exceeded the k-th network distance.
    model_evals_saved: u64,
    /// When enabled ([`SnnnExpansion::record_skips`]), every skipped
    /// candidate as `(poi_id, lower_bound)` — the conformance suite
    /// audits that each bound genuinely exceeded the final k-th distance.
    skip_log: Option<Vec<(u64, f64)>>,
}

impl SnnnExpansion {
    /// Ranks the initial Euclidean `k`-NN round under the target metric.
    /// When the world holds fewer than `k` POIs the expansion is already
    /// finished (and confirmed: there is nothing left to pull).
    pub fn begin<M: DistanceModel>(
        query: Point,
        k: usize,
        initial: &[crate::heap::HeapEntry],
        model: &mut M,
    ) -> Self {
        let mut results: Vec<SnnnNeighbor> = initial
            .iter()
            .map(|e| SnnnNeighbor {
                poi: e.poi,
                network_dist: model
                    .distance(query, e.poi.position)
                    .unwrap_or(f64::INFINITY),
                euclid_dist: e.dist,
            })
            .collect();
        results.sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());
        let exhausted = results.len() < k;
        SnnnExpansion {
            query,
            k,
            results,
            rounds: 0,
            finished: exhausted,
            confirmed: exhausted,
            lb_evals: 0,
            model_evals_saved: 0,
            skip_log: None,
        }
    }

    /// Enables the skip audit log consumed by the conformance suite.
    pub fn record_skips(&mut self) {
        self.skip_log = Some(Vec::new());
    }

    /// The audited skips as `(poi_id, lower_bound)` pairs (empty unless
    /// [`SnnnExpansion::record_skips`] was enabled before the rounds ran).
    pub fn skipped(&self) -> &[(u64, f64)] {
        self.skip_log.as_deref().unwrap_or(&[])
    }

    /// Lower-bound oracle consultations performed so far. Identical
    /// across oracles for the same query stream — the candidate sequence
    /// never depends on the oracle, only on the (oracle-invariant)
    /// result set.
    pub fn lb_evals(&self) -> u64 {
        self.lb_evals
    }

    /// Exact model evaluations the oracle's bounds made unnecessary.
    pub fn model_evals_saved(&self) -> u64 {
        self.model_evals_saved
    }

    /// True while another Euclidean round could still change the answer.
    pub fn needs_round(&self) -> bool {
        !self.finished
    }

    /// The `k'` the next Euclidean round must ask for.
    pub fn next_k(&self) -> usize {
        self.k + self.rounds + 1
    }

    /// Offers the results of the round that asked [`SnnnExpansion::next_k`]
    /// NNs: either the round's last NN confirms the distance bound (or the
    /// world ran out of POIs) and the expansion finishes, or the new
    /// candidate is ranked into the result set.
    ///
    /// Equivalent to [`SnnnExpansion::offer_pruned`] under the vacuous
    /// [`NeverPrune`] oracle: every candidate is evaluated exactly.
    pub fn offer<M: DistanceModel>(
        &mut self,
        round_results: &[crate::heap::HeapEntry],
        model: &mut M,
    ) {
        self.offer_pruned(round_results, model, &mut NeverPrune);
    }

    /// [`SnnnExpansion::offer`] with bound-driven pruning: before paying
    /// for an exact model evaluation the candidate's lower bound is
    /// consulted, and when `lb >= s_bound` (the current k-th network
    /// distance) the evaluation is skipped — the exact distance `nd`
    /// satisfies `nd >= lb >= s_bound`, so the replacement test
    /// `nd < s_bound` could never pass. Skipping therefore changes no
    /// result, no round count and no termination decision: pruned and
    /// unpruned expansion are observationally identical except for the
    /// [`SnnnExpansion::lb_evals`] / [`SnnnExpansion::model_evals_saved`]
    /// counters (proven in `tests/expansion_pruning.rs`).
    pub fn offer_pruned<M: DistanceModel, O: LowerBoundOracle>(
        &mut self,
        round_results: &[crate::heap::HeapEntry],
        model: &mut M,
        oracle: &mut O,
    ) {
        if self.finished {
            return;
        }
        self.rounds += 1;
        let target = self.k + self.rounds;
        let s_bound = self.results[self.k - 1].network_dist;
        if round_results.len() < target {
            // The world has no more POIs.
            self.finished = true;
            self.confirmed = true;
            return;
        }
        let next = round_results[target - 1];
        if next.dist > s_bound {
            // The Euclidean lower bound exceeds the k-th target distance.
            self.finished = true;
            self.confirmed = true;
            return;
        }
        if self.results.iter().any(|r| r.poi.poi_id == next.poi.poi_id) {
            return; // already ranked (ties can reorder across calls)
        }
        self.lb_evals += 1;
        let lb = oracle.lower_bound(self.query, next.poi.position);
        if lb >= s_bound {
            // The bound alone rules the candidate out of the top k.
            self.model_evals_saved += 1;
            if let Some(log) = &mut self.skip_log {
                log.push((next.poi.poi_id, lb));
            }
            return;
        }
        let nd = model
            .distance(self.query, next.poi.position)
            .unwrap_or(f64::INFINITY);
        if nd < s_bound {
            self.results[self.k - 1] = SnnnNeighbor {
                poi: next.poi,
                network_dist: nd,
                euclid_dist: next.dist,
            };
            self.results
                .sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());
        }
    }

    /// Ends the expansion without confirmation — for drivers whose round
    /// channel failed (e.g. a residual request that exhausted every
    /// attempt). [`SnnnExpansion::cap_hit`] stays true: the answer is the
    /// best ranking seen, but it is unconfirmed.
    pub fn abort(&mut self) {
        self.finished = true;
    }

    /// True when the expansion ended (or would end, if the driver stops
    /// here) without the distance bound confirming the answer.
    pub fn cap_hit(&self) -> bool {
        !self.confirmed
    }

    /// Euclidean rounds offered so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The current ranking, ascending by target-metric distance.
    pub fn results(&self) -> &[SnnnNeighbor] {
        &self.results
    }

    /// Consumes the expansion into its final ranking.
    pub fn into_results(self) -> Vec<SnnnNeighbor> {
        self.results
    }
}

/// Runs Algorithm 2 with a fresh [`QueryContext`].
pub fn snnn_query<B: Borrow<CacheEntry>, M: DistanceModel>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    config: SnnnConfig,
) -> SnnnOutcome {
    snnn_query_with(
        engine,
        query,
        k,
        peers,
        server,
        model,
        config,
        &mut QueryContext::new(),
    )
}

/// Runs Algorithm 2 against a caller-owned [`QueryContext`] (the
/// allocation-reusing batch entry point).
///
/// `model` supplies the target metric; it must respect the Euclidean
/// lower-bound property (see [`DistanceModel`]). Every candidate is
/// evaluated exactly; use [`snnn_query_pruned_with`] to skip evaluations
/// an admissible lower bound already rules out.
#[allow(clippy::too_many_arguments)]
pub fn snnn_query_with<B: Borrow<CacheEntry>, M: DistanceModel>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    config: SnnnConfig,
    ctx: &mut QueryContext,
) -> SnnnOutcome {
    snnn_query_pruned_with(
        engine,
        query,
        k,
        peers,
        server,
        model,
        &mut NeverPrune,
        config,
        ctx,
    )
}

/// Runs Algorithm 2 with bound-driven pruning and a fresh
/// [`QueryContext`]: `oracle` must lower-bound `model` (see
/// [`LowerBoundOracle`]); candidates whose bound already exceeds the
/// current k-th network distance are never evaluated exactly.
#[allow(clippy::too_many_arguments)]
pub fn snnn_query_pruned<B: Borrow<CacheEntry>, M: DistanceModel, O: LowerBoundOracle>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    oracle: &mut O,
    config: SnnnConfig,
) -> SnnnOutcome {
    snnn_query_pruned_with(
        engine,
        query,
        k,
        peers,
        server,
        model,
        oracle,
        config,
        &mut QueryContext::new(),
    )
}

/// [`snnn_query_pruned`] against a caller-owned [`QueryContext`]. The
/// outcome's trace carries the pruning counters
/// ([`QueryTrace::lb_evals`] / [`QueryTrace::model_evals_saved`]).
#[allow(clippy::too_many_arguments)]
pub fn snnn_query_pruned_with<B: Borrow<CacheEntry>, M: DistanceModel, O: LowerBoundOracle>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    oracle: &mut O,
    config: SnnnConfig,
    ctx: &mut QueryContext,
) -> SnnnOutcome {
    let mut trace = QueryTrace::new();

    // Step 1: the k Euclidean NNs via SENN, ranked by the target metric.
    let initial = engine.query_with(query, k, peers, server, ctx);
    trace.absorb(&initial.trace);
    let mut expansion = SnnnExpansion::begin(query, k, &initial.results, model);

    if !expansion.needs_round() {
        // Fewer than k POIs exist at all: done, no expansion to truncate.
        return SnnnOutcome {
            results: expansion.into_results(),
            trace,
        };
    }

    // Step 2: incremental Euclidean expansion until the next Euclidean NN
    // falls beyond the target-distance search bound. Unless the state
    // machine confirms that bound, the cap truncated the search.
    while expansion.needs_round() && expansion.rounds() < config.max_expansion {
        let expanded = engine.query_with(query, expansion.next_k(), peers, server, ctx);
        trace.absorb(&expanded.trace);
        expansion.offer_pruned(&expanded.results, model, oracle);
    }
    trace.cap_hit = expansion.cap_hit();
    trace.lb_evals = expansion.lb_evals();
    trace.model_evals_saved = expansion.model_evals_saved();

    SnnnOutcome {
        results: expansion.into_results(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::senn::{Resolution, SennConfig};
    use crate::server::RTreeServer;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Manhattan distance is a valid target metric: it dominates the
    /// Euclidean distance and models a dense grid of streets.
    struct Manhattan;
    impl DistanceModel for Manhattan {
        fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
            Some((p.x - q.x).abs() + (p.y - q.y).abs())
        }
    }

    fn brute_network_knn(pois: &[Point], q: Point, k: usize) -> Vec<(f64, usize)> {
        let mut nd = Manhattan;
        let mut v: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (nd.distance(q, *p).unwrap(), i))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn snnn_matches_brute_force_manhattan() {
        let mut rng = Rng(0x5151 | 1);
        for trial in 0..30 {
            let n = 15 + (rng.next() * 80.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 6.0) as usize;
            let engine = SennEngine::default();
            let out = snnn_query::<CacheEntry, _>(
                &engine,
                q,
                k,
                &[],
                &server,
                &mut Manhattan,
                SnnnConfig::default(),
            );
            let want = brute_network_knn(&pois, q, k);
            assert_eq!(out.results.len(), k.min(n), "trial {trial}");
            assert!(!out.trace.cap_hit, "trial {trial}: expansion truncated");
            for (r, (wd, _)) in out.results.iter().zip(&want) {
                assert!(
                    (r.network_dist - wd).abs() < 1e-9,
                    "trial {trial}: got {} want {}",
                    r.network_dist,
                    wd
                );
            }
        }
    }

    #[test]
    fn euclidean_model_degenerates_to_senn() {
        // With ND == ED the first SENN call is already the answer and one
        // expansion call suffices to confirm the bound.
        let pois: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(10.0, 0.0);
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Euclidean,
            SnnnConfig::default(),
        );
        let mut dists: Vec<f64> = pois.iter().map(|p| q.dist(*p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (r, want) in out.results.iter().zip(&dists) {
            assert!((r.network_dist - want).abs() < 1e-9);
        }
        // The SENN answer under the same engine agrees rank by rank.
        let senn = engine.query::<CacheEntry>(q, 3, &[], &server);
        for (s, r) in senn.results.iter().zip(&out.results) {
            assert_eq!(s.poi.poi_id, r.poi.poi_id);
        }
        assert!(out.senn_calls() >= 2);
        assert!(!out.trace.cap_hit);
    }

    #[test]
    fn unreachable_pois_rank_last() {
        let pois = [
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        // POI 0 is unreachable over the "network".
        struct Holey;
        impl DistanceModel for Holey {
            fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
                if p == Point::new(1.0, 0.0) {
                    None
                } else {
                    Some(q.dist(p) * 1.5)
                }
            }
        }
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            2,
            &[],
            &server,
            &mut Holey,
            SnnnConfig::default(),
        );
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.results[0].poi.poi_id, 1);
        assert_eq!(out.results[1].poi.poi_id, 2);
    }

    #[test]
    fn fewer_pois_than_k() {
        let pois = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            5,
            &[],
            &server,
            &mut Manhattan,
            SnnnConfig::default(),
        );
        assert_eq!(out.results.len(), 2);
        assert!(!out.trace.cap_hit, "no expansion ran, nothing truncated");
    }

    #[test]
    fn expansion_cap_is_flagged() {
        // A tight cap ends the expansion before the bound is confirmed —
        // the trace must say so (the satellite bugfix: silent truncation).
        let mut rng = Rng(0xcab | 1);
        let pois: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(50.0, 50.0);
        let engine = SennEngine::default();
        // An adversarial metric that inflates distances heavily keeps the
        // search bound far out, so a 1-step cap must truncate.
        struct Inflated;
        impl DistanceModel for Inflated {
            fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
                Some(q.dist(p) * 50.0 + 1000.0)
            }
        }
        let capped = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Inflated,
            SnnnConfig { max_expansion: 1 },
        );
        assert!(capped.trace.cap_hit, "1-step cap must be reported");
        let uncapped = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Inflated,
            SnnnConfig::default(),
        );
        assert!(!uncapped.trace.cap_hit);
    }

    #[test]
    fn peers_reduce_server_traffic_for_snnn() {
        // A collocated peer with a large cache answers the Euclidean parts
        // without the server.
        let mut rng = Rng(0x999 | 1);
        let pois: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.next() * 40.0, rng.next() * 40.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(20.0, 20.0);
        // Honest peer cache: 30 nearest POIs of a point right next to q.
        let loc = Point::new(20.1, 20.0);
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (loc.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let peer = CacheEntry::from_sorted(
            loc,
            by_d.iter()
                .take(30)
                .map(|&(_, i)| (i as u64, pois[i]))
                .collect(),
        );
        let engine = SennEngine::new(SennConfig::default());
        let out = snnn_query(
            &engine,
            q,
            3,
            std::slice::from_ref(&peer),
            &server,
            &mut Manhattan,
            SnnnConfig::default(),
        );
        let want = brute_network_knn(&pois, q, 3);
        for (r, (wd, _)) in out.results.iter().zip(&want) {
            assert!((r.network_dist - wd).abs() < 1e-9);
        }
        assert!(
            out.trace
                .resolutions
                .iter()
                .any(|r| *r != Resolution::Server),
            "at least some SENN calls should be peer-resolved"
        );
    }
}
