//! Algorithm 2: the Sharing-based Network distance Nearest Neighbor
//! (SNNN) query (Section 3.4).
//!
//! SNNN extends IER (Incremental Euclidean Restriction): run SENN for the
//! `k` Euclidean NNs, compute their network distances on the host's local
//! modeling graph, and keep pulling the next Euclidean NN (peers first,
//! then server) while its Euclidean distance is within the current k-th
//! network distance — sound because `ED <= ND` (the Euclidean lower-bound
//! property).
//!
//! The network-distance kernel is injected as a closure so the algorithm
//! stays independent of the graph representation; `senn-sim` wires it to
//! `senn-network`'s A\* search. The closure must respect the lower-bound
//! property (`nd(p) >= ED(query, p)`), which every real road network does.

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::Point;

use crate::senn::{Resolution, SennEngine};
use crate::server::SpatialServer;

/// Configuration of the SNNN search.
#[derive(Clone, Copy, Debug)]
pub struct SnnnConfig {
    /// Safety cap on the number of extra Euclidean NNs pulled beyond `k`.
    pub max_expansion: usize,
}

impl Default for SnnnConfig {
    fn default() -> Self {
        SnnnConfig { max_expansion: 256 }
    }
}

/// One SNNN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnnnNeighbor {
    /// The POI.
    pub poi: CachedNn,
    /// Network distance from the query point.
    pub network_dist: f64,
    /// Euclidean distance from the query point.
    pub euclid_dist: f64,
}

/// The outcome of an SNNN query.
#[derive(Clone, Debug)]
pub struct SnnnOutcome {
    /// The `k` network-nearest POIs, ascending by network distance.
    pub results: Vec<SnnnNeighbor>,
    /// Number of SENN invocations performed (1 + expansions).
    pub senn_calls: usize,
    /// Total server node accesses across all SENN calls.
    pub server_accesses: u64,
    /// Resolution of each SENN call, in order.
    pub resolutions: Vec<Resolution>,
}

/// Runs Algorithm 2.
///
/// `network_dist(p)` returns the network distance from the query point to
/// a POI at `p`, or `None` when unreachable (treated as infinitely far).
pub fn snnn_query<F>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[CacheEntry],
    server: &dyn SpatialServer,
    network_dist: F,
    config: SnnnConfig,
) -> SnnnOutcome
where
    F: Fn(Point) -> Option<f64>,
{
    let mut senn_calls = 0usize;
    let mut server_accesses = 0u64;
    let mut resolutions = Vec::new();

    let mut run_senn = |kk: usize| {
        senn_calls += 1;
        let out = engine.query(query, kk, peers, server);
        server_accesses += out.server_accesses.unwrap_or(0);
        resolutions.push(out.resolution);
        out
    };

    // Step 1: the k Euclidean NNs via SENN, ranked by network distance.
    let initial = run_senn(k);
    let mut results: Vec<SnnnNeighbor> = initial
        .results
        .iter()
        .map(|e| SnnnNeighbor {
            poi: e.poi,
            network_dist: network_dist(e.poi.position).unwrap_or(f64::INFINITY),
            euclid_dist: e.dist,
        })
        .collect();
    results.sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());

    if results.len() < k {
        // Fewer than k POIs exist at all: done.
        return SnnnOutcome {
            results,
            senn_calls,
            server_accesses,
            resolutions,
        };
    }

    // Step 2: incremental Euclidean expansion until the next Euclidean NN
    // falls beyond the network-distance search bound.
    for i in 1..=config.max_expansion {
        let s_bound = results[k - 1].network_dist;
        if !s_bound.is_finite() {
            // Some current candidates are unreachable: any POI can improve.
            // Fall through with an infinite bound (expansion continues
            // until POIs run out or the cap hits).
        }
        let expanded = run_senn(k + i);
        if expanded.results.len() < k + i {
            break; // the world has no more POIs
        }
        let next = expanded.results[k + i - 1];
        if next.dist > s_bound {
            break; // Euclidean lower bound exceeds the k-th network dist
        }
        if results.iter().any(|r| r.poi.poi_id == next.poi.poi_id) {
            continue; // already ranked (ties can reorder across calls)
        }
        let nd = network_dist(next.poi.position).unwrap_or(f64::INFINITY);
        if nd < s_bound {
            results[k - 1] = SnnnNeighbor {
                poi: next.poi,
                network_dist: nd,
                euclid_dist: next.dist,
            };
            results.sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());
        }
    }

    SnnnOutcome {
        results,
        senn_calls,
        server_accesses,
        resolutions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senn::SennConfig;
    use crate::server::RTreeServer;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Manhattan distance is a valid "network distance": it dominates the
    /// Euclidean distance and models a dense grid of streets.
    fn manhattan(q: Point) -> impl Fn(Point) -> Option<f64> {
        move |p: Point| Some((p.x - q.x).abs() + (p.y - q.y).abs())
    }

    fn brute_network_knn(pois: &[Point], q: Point, k: usize) -> Vec<(f64, usize)> {
        let nd = manhattan(q);
        let mut v: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (nd(*p).unwrap(), i))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn snnn_matches_brute_force_manhattan() {
        let mut rng = Rng(0x5151 | 1);
        for trial in 0..30 {
            let n = 15 + (rng.next() * 80.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 6.0) as usize;
            let engine = SennEngine::default();
            let out = snnn_query(
                &engine,
                q,
                k,
                &[],
                &server,
                manhattan(q),
                SnnnConfig::default(),
            );
            let want = brute_network_knn(&pois, q, k);
            assert_eq!(out.results.len(), k.min(n), "trial {trial}");
            for (r, (wd, _)) in out.results.iter().zip(&want) {
                assert!(
                    (r.network_dist - wd).abs() < 1e-9,
                    "trial {trial}: got {} want {}",
                    r.network_dist,
                    wd
                );
            }
        }
    }

    #[test]
    fn euclidean_equals_network_degenerates_to_senn() {
        // With ND == ED the first SENN call is already the answer and one
        // expansion call suffices to confirm the bound.
        let pois: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(10.0, 0.0);
        let engine = SennEngine::default();
        let out = snnn_query(
            &engine,
            q,
            3,
            &[],
            &server,
            |p| Some(q.dist(p)),
            SnnnConfig::default(),
        );
        let mut dists: Vec<f64> = pois.iter().map(|p| q.dist(*p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (r, want) in out.results.iter().zip(&dists) {
            assert!((r.network_dist - want).abs() < 1e-9);
        }
        assert!(out.senn_calls >= 2);
    }

    #[test]
    fn unreachable_pois_rank_last() {
        let pois = [
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        // POI 0 is unreachable over the "network".
        let nd = move |p: Point| {
            if p == Point::new(1.0, 0.0) {
                None
            } else {
                Some(q.dist(p) * 1.5)
            }
        };
        let engine = SennEngine::default();
        let out = snnn_query(&engine, q, 2, &[], &server, nd, SnnnConfig::default());
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.results[0].poi.poi_id, 1);
        assert_eq!(out.results[1].poi.poi_id, 2);
    }

    #[test]
    fn fewer_pois_than_k() {
        let pois = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        let engine = SennEngine::default();
        let out = snnn_query(
            &engine,
            q,
            5,
            &[],
            &server,
            manhattan(q),
            SnnnConfig::default(),
        );
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn peers_reduce_server_traffic_for_snnn() {
        // A collocated peer with a large cache answers the Euclidean parts
        // without the server.
        let mut rng = Rng(0x999 | 1);
        let pois: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.next() * 40.0, rng.next() * 40.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(20.0, 20.0);
        // Honest peer cache: 30 nearest POIs of a point right next to q.
        let loc = Point::new(20.1, 20.0);
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (loc.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let peer = CacheEntry::from_sorted(
            loc,
            by_d.iter()
                .take(30)
                .map(|&(_, i)| (i as u64, pois[i]))
                .collect(),
        );
        let engine = SennEngine::new(SennConfig::default());
        let out = snnn_query(
            &engine,
            q,
            3,
            std::slice::from_ref(&peer),
            &server,
            manhattan(q),
            SnnnConfig::default(),
        );
        let want = brute_network_knn(&pois, q, 3);
        for (r, (wd, _)) in out.results.iter().zip(&want) {
            assert!((r.network_dist - wd).abs() < 1e-9);
        }
        assert!(
            out.resolutions.iter().any(|r| *r != Resolution::Server),
            "at least some SENN calls should be peer-resolved"
        );
    }
}
