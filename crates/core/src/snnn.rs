//! Algorithm 2: the Sharing-based Network distance Nearest Neighbor
//! (SNNN) query (Section 3.4).
//!
//! SNNN extends IER (Incremental Euclidean Restriction): run SENN for the
//! `k` Euclidean NNs, compute their target-metric distances with the
//! [`DistanceModel`], and keep pulling the next Euclidean NN (peers first,
//! then server) while its Euclidean distance is within the current k-th
//! target distance — sound because `ED <= ND` (the Euclidean lower-bound
//! property, part of the [`DistanceModel`] contract).
//!
//! The expansion loop is a generic driver over any [`DistanceModel`]:
//! `senn_network::NetworkDistance` wraps A\*/Dijkstra for the road-network
//! metric, while the degenerate [`crate::distance::Euclidean`] model makes
//! the driver collapse to plain SENN. Every SENN round runs through the
//! same staged pipeline ([`crate::pipeline`]) as Algorithm 1, and all
//! rounds fold into one [`QueryTrace`].

use std::borrow::Borrow;

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::Point;

use crate::distance::DistanceModel;
use crate::pipeline::QueryContext;
use crate::senn::SennEngine;
use crate::service::SpatialService;
use crate::trace::QueryTrace;

/// Configuration of the SNNN search.
#[derive(Clone, Copy, Debug)]
pub struct SnnnConfig {
    /// Safety cap on the number of extra Euclidean NNs pulled beyond `k`.
    /// When the cap ends the expansion before the distance bound confirms
    /// the answer, the outcome's trace carries
    /// [`QueryTrace::cap_hit`] — the results may be inexact.
    pub max_expansion: usize,
}

impl Default for SnnnConfig {
    fn default() -> Self {
        SnnnConfig { max_expansion: 256 }
    }
}

/// One SNNN result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnnnNeighbor {
    /// The POI.
    pub poi: CachedNn,
    /// Network (target-metric) distance from the query point.
    pub network_dist: f64,
    /// Euclidean distance from the query point.
    pub euclid_dist: f64,
}

/// The outcome of an SNNN query.
#[derive(Clone, Debug)]
pub struct SnnnOutcome {
    /// The `k` network-nearest POIs, ascending by network distance.
    pub results: Vec<SnnnNeighbor>,
    /// The unified trace of every SENN round: per-round resolutions,
    /// total server accesses, stage timings and the expansion
    /// [`QueryTrace::cap_hit`] flag.
    pub trace: QueryTrace,
}

impl SnnnOutcome {
    /// Number of SENN invocations performed (1 + expansions).
    pub fn senn_calls(&self) -> usize {
        self.trace.senn_rounds()
    }
}

/// Runs Algorithm 2 with a fresh [`QueryContext`].
pub fn snnn_query<B: Borrow<CacheEntry>, M: DistanceModel>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    config: SnnnConfig,
) -> SnnnOutcome {
    snnn_query_with(
        engine,
        query,
        k,
        peers,
        server,
        model,
        config,
        &mut QueryContext::new(),
    )
}

/// Runs Algorithm 2 against a caller-owned [`QueryContext`] (the
/// allocation-reusing batch entry point).
///
/// `model` supplies the target metric; it must respect the Euclidean
/// lower-bound property (see [`DistanceModel`]).
#[allow(clippy::too_many_arguments)]
pub fn snnn_query_with<B: Borrow<CacheEntry>, M: DistanceModel>(
    engine: &SennEngine,
    query: Point,
    k: usize,
    peers: &[B],
    server: &dyn SpatialService,
    model: &mut M,
    config: SnnnConfig,
    ctx: &mut QueryContext,
) -> SnnnOutcome {
    let mut trace = QueryTrace::new();

    // Step 1: the k Euclidean NNs via SENN, ranked by the target metric.
    let initial = engine.query_with(query, k, peers, server, ctx);
    trace.absorb(&initial.trace);
    let mut results: Vec<SnnnNeighbor> = initial
        .results
        .iter()
        .map(|e| SnnnNeighbor {
            poi: e.poi,
            network_dist: model
                .distance(query, e.poi.position)
                .unwrap_or(f64::INFINITY),
            euclid_dist: e.dist,
        })
        .collect();
    results.sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());

    if results.len() < k {
        // Fewer than k POIs exist at all: done, no expansion to truncate.
        return SnnnOutcome { results, trace };
    }

    // Step 2: incremental Euclidean expansion until the next Euclidean NN
    // falls beyond the target-distance search bound. Unless one of the
    // break conditions confirms that bound, the cap truncated the search.
    let mut cap_hit = true;
    for i in 1..=config.max_expansion {
        let s_bound = results[k - 1].network_dist;
        if !s_bound.is_finite() {
            // Some current candidates are unreachable: any POI can improve.
            // Fall through with an infinite bound (expansion continues
            // until POIs run out or the cap hits).
        }
        let expanded = engine.query_with(query, k + i, peers, server, ctx);
        trace.absorb(&expanded.trace);
        if expanded.results.len() < k + i {
            cap_hit = false;
            break; // the world has no more POIs
        }
        let next = expanded.results[k + i - 1];
        if next.dist > s_bound {
            cap_hit = false;
            break; // Euclidean lower bound exceeds the k-th target dist
        }
        if results.iter().any(|r| r.poi.poi_id == next.poi.poi_id) {
            continue; // already ranked (ties can reorder across calls)
        }
        let nd = model
            .distance(query, next.poi.position)
            .unwrap_or(f64::INFINITY);
        if nd < s_bound {
            results[k - 1] = SnnnNeighbor {
                poi: next.poi,
                network_dist: nd,
                euclid_dist: next.dist,
            };
            results.sort_by(|a, b| a.network_dist.partial_cmp(&b.network_dist).unwrap());
        }
    }
    trace.cap_hit = cap_hit;

    SnnnOutcome { results, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::senn::{Resolution, SennConfig};
    use crate::server::RTreeServer;

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Manhattan distance is a valid target metric: it dominates the
    /// Euclidean distance and models a dense grid of streets.
    struct Manhattan;
    impl DistanceModel for Manhattan {
        fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
            Some((p.x - q.x).abs() + (p.y - q.y).abs())
        }
    }

    fn brute_network_knn(pois: &[Point], q: Point, k: usize) -> Vec<(f64, usize)> {
        let mut nd = Manhattan;
        let mut v: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (nd.distance(q, *p).unwrap(), i))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn snnn_matches_brute_force_manhattan() {
        let mut rng = Rng(0x5151 | 1);
        for trial in 0..30 {
            let n = 15 + (rng.next() * 80.0) as usize;
            let pois: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
                .collect();
            let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
            let q = Point::new(rng.next() * 100.0, rng.next() * 100.0);
            let k = 1 + (rng.next() * 6.0) as usize;
            let engine = SennEngine::default();
            let out = snnn_query::<CacheEntry, _>(
                &engine,
                q,
                k,
                &[],
                &server,
                &mut Manhattan,
                SnnnConfig::default(),
            );
            let want = brute_network_knn(&pois, q, k);
            assert_eq!(out.results.len(), k.min(n), "trial {trial}");
            assert!(!out.trace.cap_hit, "trial {trial}: expansion truncated");
            for (r, (wd, _)) in out.results.iter().zip(&want) {
                assert!(
                    (r.network_dist - wd).abs() < 1e-9,
                    "trial {trial}: got {} want {}",
                    r.network_dist,
                    wd
                );
            }
        }
    }

    #[test]
    fn euclidean_model_degenerates_to_senn() {
        // With ND == ED the first SENN call is already the answer and one
        // expansion call suffices to confirm the bound.
        let pois: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 3.0, 0.0)).collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(10.0, 0.0);
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Euclidean,
            SnnnConfig::default(),
        );
        let mut dists: Vec<f64> = pois.iter().map(|p| q.dist(*p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (r, want) in out.results.iter().zip(&dists) {
            assert!((r.network_dist - want).abs() < 1e-9);
        }
        // The SENN answer under the same engine agrees rank by rank.
        let senn = engine.query::<CacheEntry>(q, 3, &[], &server);
        for (s, r) in senn.results.iter().zip(&out.results) {
            assert_eq!(s.poi.poi_id, r.poi.poi_id);
        }
        assert!(out.senn_calls() >= 2);
        assert!(!out.trace.cap_hit);
    }

    #[test]
    fn unreachable_pois_rank_last() {
        let pois = [
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        // POI 0 is unreachable over the "network".
        struct Holey;
        impl DistanceModel for Holey {
            fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
                if p == Point::new(1.0, 0.0) {
                    None
                } else {
                    Some(q.dist(p) * 1.5)
                }
            }
        }
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            2,
            &[],
            &server,
            &mut Holey,
            SnnnConfig::default(),
        );
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.results[0].poi.poi_id, 1);
        assert_eq!(out.results[1].poi.poi_id, 2);
    }

    #[test]
    fn fewer_pois_than_k() {
        let pois = [Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::ORIGIN;
        let engine = SennEngine::default();
        let out = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            5,
            &[],
            &server,
            &mut Manhattan,
            SnnnConfig::default(),
        );
        assert_eq!(out.results.len(), 2);
        assert!(!out.trace.cap_hit, "no expansion ran, nothing truncated");
    }

    #[test]
    fn expansion_cap_is_flagged() {
        // A tight cap ends the expansion before the bound is confirmed —
        // the trace must say so (the satellite bugfix: silent truncation).
        let mut rng = Rng(0xcab | 1);
        let pois: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.next() * 100.0, rng.next() * 100.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(50.0, 50.0);
        let engine = SennEngine::default();
        // An adversarial metric that inflates distances heavily keeps the
        // search bound far out, so a 1-step cap must truncate.
        struct Inflated;
        impl DistanceModel for Inflated {
            fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
                Some(q.dist(p) * 50.0 + 1000.0)
            }
        }
        let capped = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Inflated,
            SnnnConfig { max_expansion: 1 },
        );
        assert!(capped.trace.cap_hit, "1-step cap must be reported");
        let uncapped = snnn_query::<CacheEntry, _>(
            &engine,
            q,
            3,
            &[],
            &server,
            &mut Inflated,
            SnnnConfig::default(),
        );
        assert!(!uncapped.trace.cap_hit);
    }

    #[test]
    fn peers_reduce_server_traffic_for_snnn() {
        // A collocated peer with a large cache answers the Euclidean parts
        // without the server.
        let mut rng = Rng(0x999 | 1);
        let pois: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.next() * 40.0, rng.next() * 40.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        let q = Point::new(20.0, 20.0);
        // Honest peer cache: 30 nearest POIs of a point right next to q.
        let loc = Point::new(20.1, 20.0);
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (loc.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let peer = CacheEntry::from_sorted(
            loc,
            by_d.iter()
                .take(30)
                .map(|&(_, i)| (i as u64, pois[i]))
                .collect(),
        );
        let engine = SennEngine::new(SennConfig::default());
        let out = snnn_query(
            &engine,
            q,
            3,
            std::slice::from_ref(&peer),
            &server,
            &mut Manhattan,
            SnnnConfig::default(),
        );
        let want = brute_network_knn(&pois, q, 3);
        for (r, (wd, _)) in out.results.iter().zip(&want) {
            assert!((r.network_dist - wd).abs() < 1e-9);
        }
        assert!(
            out.trace
                .resolutions
                .iter()
                .any(|r| *r != Resolution::Server),
            "at least some SENN calls should be peer-resolved"
        );
    }
}
