//! Continuous kNN queries from a moving host (k-NNMP, multi-step search).
//!
//! The paper's motivating scenario is a car repeatedly asking for its
//! nearest gas stations while driving. Between stops, the host's *own*
//! most recent cached result is a peer cache at distance δ = how far the
//! host has moved — so the same SENN verification answers the re-query
//! locally until the host out-drives its cache (the multi-step reuse idea
//! of Song & Roussopoulos discussed in the paper's related work).
//!
//! [`validity_radius`] gives a closed-form guarantee in the spirit of Tao
//! et al.'s split points: starting from a cache with `c >= k` certain NNs,
//! any re-query issued within `(r - d_k) / 2` of the cached location is
//! certain to be answerable from the cache alone — `r` the cache's
//! certain-area radius, `d_k` the distance to its k-th entry.

use senn_cache::CacheEntry;
use senn_geom::Point;

use crate::senn::{Resolution, SennEngine, SennOutcome};
use crate::service::SpatialService;

/// Maximum displacement from the cached query location within which a
/// fresh kNN query is *guaranteed* to verify from this cache alone.
///
/// Derivation: at displacement `δ`, the k-th candidate's distance is at
/// most `d_k + δ` (triangle inequality), and Lemma 3.2 needs
/// `dist + δ <= r`; `d_k + 2δ <= r` suffices, i.e. `δ <= (r - d_k) / 2`.
/// Returns 0 when the cache holds fewer than `k` entries.
pub fn validity_radius(cache: &CacheEntry, k: usize) -> f64 {
    if cache.len() < k || k == 0 {
        return 0.0;
    }
    let r = cache.farthest_distance();
    let d_k = cache.query_location.dist(cache.neighbors[k - 1].position);
    ((r - d_k) / 2.0).max(0.0)
}

/// Statistics of a continuous query session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContinuousStats {
    /// Queries issued so far.
    pub queries: u64,
    /// Queries answered without the server (own cache and/or peers).
    pub local: u64,
    /// Queries that contacted the server.
    pub server: u64,
}

/// A moving host's continuous kNN session: each call to
/// [`ContinuousKnn::query`] reuses the previous answer as a peer cache.
///
/// ```
/// use senn_core::{ContinuousKnn, RTreeServer, SennEngine};
/// use senn_core::senn::SennConfig;
/// use senn_geom::Point;
///
/// let pois: Vec<(u64, Point)> =
///     (0..50).map(|i| (i, Point::new((i % 10) as f64 * 40.0, (i / 10) as f64 * 40.0))).collect();
/// let server = RTreeServer::new(pois);
/// let engine = SennEngine::new(SennConfig { server_fetch: 12, ..Default::default() });
/// let mut session = ContinuousKnn::new(engine, 2);
/// session.query(Point::new(100.0, 100.0), &[], &server); // server round-trip
/// session.query(Point::new(103.0, 100.0), &[], &server); // reused locally
/// assert_eq!(session.stats().server, 1);
/// assert_eq!(session.stats().local, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ContinuousKnn {
    engine: SennEngine,
    k: usize,
    cache: Option<CacheEntry>,
    stats: ContinuousStats,
}

impl ContinuousKnn {
    /// Creates a session. The engine's `server_fetch` (cache capacity)
    /// controls how much look-ahead each server round-trip buys.
    pub fn new(engine: SennEngine, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        ContinuousKnn {
            engine,
            k,
            cache: None,
            stats: ContinuousStats::default(),
        }
    }

    /// The rolling own-cache entry, if any.
    pub fn cache(&self) -> Option<&CacheEntry> {
        self.cache.as_ref()
    }

    /// Session statistics.
    pub fn stats(&self) -> ContinuousStats {
        self.stats
    }

    /// Guaranteed-local radius around the last query position: within it,
    /// the next [`Self::query`] will not contact the server.
    pub fn guaranteed_radius(&self) -> f64 {
        self.cache
            .as_ref()
            .map_or(0.0, |c| validity_radius(c, self.k))
    }

    /// Issues the kNN query at `position`, using the rolling own cache
    /// plus any `extra_peers` in radio range, falling back to `server`.
    pub fn query(
        &mut self,
        position: Point,
        extra_peers: &[CacheEntry],
        server: &dyn SpatialService,
    ) -> SennOutcome {
        let mut peers: Vec<CacheEntry> = Vec::with_capacity(extra_peers.len() + 1);
        if let Some(own) = &self.cache {
            peers.push(own.clone());
        }
        peers.extend_from_slice(extra_peers);
        let out = self.engine.query(position, self.k, &peers, server);
        self.stats.queries += 1;
        match out.resolution() {
            Resolution::Server => self.stats.server += 1,
            _ => self.stats.local += 1,
        }
        // Roll the cache forward with everything certain we now know.
        let cacheable: Vec<_> = out.cacheable().iter().map(|e| e.poi).collect();
        if !cacheable.is_empty() {
            self.cache = Some(CacheEntry::new(position, cacheable));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::senn::SennConfig;
    use crate::server::RTreeServer;
    use senn_cache::CachedNn;

    fn world(n: usize, side: f64, seed: u64) -> (Vec<Point>, RTreeServer) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pois: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * side, next() * side))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        (pois, server)
    }

    #[test]
    fn validity_radius_formula() {
        // Cache at origin: NNs at 2, 4, 10 → for k=1: (10-2)/2 = 4.
        let cache = CacheEntry::from_sorted(
            Point::ORIGIN,
            vec![
                (0, Point::new(2.0, 0.0)),
                (1, Point::new(0.0, 4.0)),
                (2, Point::new(10.0, 0.0)),
            ],
        );
        assert_eq!(validity_radius(&cache, 1), 4.0);
        assert_eq!(validity_radius(&cache, 2), 3.0);
        assert_eq!(validity_radius(&cache, 3), 0.0); // k-th IS the boundary
        assert_eq!(validity_radius(&cache, 4), 0.0); // cache too small
    }

    #[test]
    fn queries_within_validity_radius_never_hit_server() {
        let (pois, server) = world(100, 1000.0, 5);
        let engine = SennEngine::new(SennConfig {
            server_fetch: 15,
            ..Default::default()
        });
        let mut session = ContinuousKnn::new(engine, 3);
        let start = Point::new(500.0, 500.0);
        session.query(start, &[], &server); // seeds the cache (server)
        assert_eq!(session.stats().server, 1);
        let radius = session.guaranteed_radius();
        assert!(radius > 0.0, "15-deep cache must buy some slack");
        // Probe positions strictly inside the guaranteed radius.
        for i in 0..16 {
            let th = std::f64::consts::TAU * i as f64 / 16.0;
            let p = Point::new(
                start.x + radius * 0.95 * th.cos(),
                start.y + radius * 0.95 * th.sin(),
            );
            let mut probe = session.clone();
            let out = probe.query(p, &[], &server);
            assert_ne!(
                out.resolution(),
                Resolution::Server,
                "query at {p:?} inside the validity radius hit the server"
            );
        }
        let _ = pois;
    }

    #[test]
    fn drive_along_line_amortizes_server_contacts() {
        let (_, server) = world(300, 2000.0, 9);
        let engine = SennEngine::new(SennConfig {
            server_fetch: 20,
            ..Default::default()
        });
        let mut session = ContinuousKnn::new(engine, 3);
        // 200 steps of 5 m: a 1 km drive with a query every 5 m.
        for i in 0..200 {
            let p = Point::new(500.0 + i as f64 * 5.0, 1000.0);
            session.query(p, &[], &server);
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 200);
        assert!(
            stats.server < 40,
            "multi-step reuse should answer most re-queries locally ({} server hits)",
            stats.server
        );
        assert_eq!(stats.local + stats.server, stats.queries);
    }

    #[test]
    fn results_always_correct_while_moving() {
        let (pois, server) = world(120, 800.0, 21);
        let engine = SennEngine::new(SennConfig {
            server_fetch: 12,
            ..Default::default()
        });
        let mut session = ContinuousKnn::new(engine, 4);
        for i in 0..60 {
            let p = Point::new(100.0 + i as f64 * 10.0, 400.0 + (i % 7) as f64 * 15.0);
            let out = session.query(p, &[], &server);
            let mut want: Vec<f64> = pois.iter().map(|t| p.dist(*t)).collect();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(out.results.len(), 4);
            for (r, w) in out.results.iter().zip(&want) {
                assert!((r.dist - w).abs() < 1e-9, "step {i}: {} vs {}", r.dist, w);
            }
        }
    }

    #[test]
    fn empty_world_stays_sane() {
        let server = RTreeServer::new(Vec::<(u64, Point)>::new());
        let engine = SennEngine::default();
        let mut session = ContinuousKnn::new(engine, 2);
        let out = session.query(Point::ORIGIN, &[], &server);
        assert!(out.results.is_empty());
        assert_eq!(session.guaranteed_radius(), 0.0);
        let _ = CachedNn {
            poi_id: 0,
            position: Point::ORIGIN,
        };
    }
}
