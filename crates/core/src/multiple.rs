//! `kNN_multiple`: multi-peer NN verification (Section 3.2.2, Lemma 3.8).
//!
//! When no single peer can verify a candidate, the certain areas of *all*
//! peers are merged into the certain region `R_c`; a candidate `n_i` is
//! certain iff the circle around the querier through `n_i` is fully
//! covered by `R_c`.
//!
//! The region can be represented two ways (see `senn-geom`):
//! the paper's polygonization (inscribed polygons, conservative) or the
//! exact disk-union arrangement (extension / ablation oracle). Both are
//! monotone in the candidate's distance, so verification walks candidates
//! in ascending distance and stops at the first failure.

use std::borrow::Borrow;

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::{Circle, DiskRegion, Point, PolygonRegion};

use crate::heap::ResultHeap;

/// How the certain region `R_c` is represented.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionMethod {
    /// Inscribed-polygon approximation with the given vertex count — the
    /// paper's polygonization + MapOverlay approach.
    Polygonized {
        /// Vertex count of each inscribed polygon.
        vertices: usize,
    },
    /// Exact circle-arc arrangement (extension).
    Exact,
}

impl Default for RegionMethod {
    fn default() -> Self {
        RegionMethod::Polygonized {
            vertices: senn_geom::polygon::DEFAULT_POLYGONIZATION_VERTICES,
        }
    }
}

/// The merged certain region of a set of peers.
pub enum CertainRegion {
    /// The paper's polygonized representation.
    Polygonized(PolygonRegion),
    /// The exact disk-union representation (extension).
    Exact(DiskRegion),
}

impl CertainRegion {
    /// Builds `R_c` from every peer's certain-area disk (center: cached
    /// query location, radius: distance to the farthest cached NN).
    pub fn build<B: Borrow<CacheEntry>>(peers: &[B], method: RegionMethod) -> Self {
        let mut circles = Vec::new();
        collect_circles(peers.iter().map(|p| p.borrow()), &mut circles);
        CertainRegion::from_circles(&circles, method)
    }

    /// Builds `R_c` from pre-collected certain-area circles (the buffered
    /// entry point used by [`crate::pipeline::QueryContext`]).
    pub fn from_circles(circles: &[Circle], method: RegionMethod) -> Self {
        match method {
            RegionMethod::Polygonized { vertices } => {
                CertainRegion::Polygonized(PolygonRegion::from_circles(circles, vertices))
            }
            RegionMethod::Exact => CertainRegion::Exact(DiskRegion::from_circles(circles)),
        }
    }

    /// Lemma 3.8's test: is the circle centered at the query through the
    /// candidate fully covered by the region?
    pub fn covers_candidate(&self, query: Point, dist: f64) -> bool {
        let c = Circle::new(query, dist);
        match self {
            CertainRegion::Polygonized(r) => r.covers_circle(&c),
            CertainRegion::Exact(r) => r.covers_circle(&c),
        }
    }

    /// Number of disks/polygons in the region.
    pub fn len(&self) -> usize {
        match self {
            CertainRegion::Polygonized(r) => r.len(),
            CertainRegion::Exact(r) => r.len(),
        }
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Collects every non-empty peer's certain-area circle (center: cached
/// query location, radius: distance to the farthest cached NN) into a
/// reusable buffer, preserving peer order.
pub fn collect_circles<'a>(peers: impl Iterator<Item = &'a CacheEntry>, circles: &mut Vec<Circle>) {
    circles.clear();
    circles.extend(
        peers
            .filter(|p| !p.is_empty())
            .map(|p| Circle::new(p.query_location, p.farthest_distance())),
    );
}

/// Collects every cached POI of every peer as a `(distance, poi)`
/// candidate into a reusable buffer, deduplicated by POI id (first
/// occurrence wins — positions of the same POI agree across honest
/// caches), then sorts ascending by distance to the querier.
///
/// `seen` is *not* cleared here: callers may pre-seed it with POI ids to
/// exclude (e.g. already-ranked results).
pub fn collect_candidates<'a>(
    query: Point,
    peers: impl Iterator<Item = &'a CacheEntry>,
    candidates: &mut Vec<(f64, CachedNn)>,
    seen: &mut std::collections::HashSet<u64>,
) {
    candidates.clear();
    for peer in peers {
        for nn in &peer.neighbors {
            if seen.insert(nn.poi_id) {
                candidates.push((query.dist(nn.position), *nn));
            }
        }
    }
    candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

/// The Lemma 3.8 verification walk: candidates (pre-sorted ascending by
/// distance) are certified against `R_c` until the first failure —
/// coverage is monotone in the radius, so once one candidate fails, all
/// farther candidates fail too. Returns the number of new certain entries.
pub fn verify_candidates(
    query: Point,
    region: &CertainRegion,
    candidates: &[(f64, CachedNn)],
    heap: &mut ResultHeap,
) -> usize {
    let mut new_certain = 0;
    let mut verifying = true;
    for &(dist, poi) in candidates {
        if verifying && region.covers_candidate(query, dist) {
            let before = heap.certain_count();
            heap.insert_certain(poi, dist);
            if heap.certain_count() > before {
                new_certain += 1;
            }
            if heap.is_certain_complete() {
                break;
            }
        } else {
            verifying = false;
            heap.insert_uncertain(poi, dist);
        }
    }
    new_certain
}

/// Runs the multi-peer verification: collects every cached POI of every
/// peer as a candidate, sorts ascending by distance to the querier, and
/// verifies each against `R_c` until the first failure (coverage is
/// monotone in the radius). Returns the number of new certain entries.
///
/// Convenience wrapper over [`collect_circles`] + [`collect_candidates`] +
/// [`verify_candidates`] with fresh buffers; the staged pipeline
/// (`crate::pipeline`) calls the pieces with reusable scratch instead.
pub fn knn_multiple<B: Borrow<CacheEntry>>(
    query: Point,
    peers: &[B],
    method: RegionMethod,
    heap: &mut ResultHeap,
) -> usize {
    if peers.is_empty() {
        return 0;
    }
    let region = CertainRegion::build(peers, method);
    if region.is_empty() {
        return 0;
    }
    let mut candidates: Vec<(f64, CachedNn)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    collect_candidates(
        query,
        peers.iter().map(|p| p.borrow()),
        &mut candidates,
        &mut seen,
    );
    verify_candidates(query, &region, &candidates, heap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(loc: Point, pois: &[(u64, f64, f64)]) -> CacheEntry {
        CacheEntry::new(
            loc,
            pois.iter()
                .map(|&(id, x, y)| CachedNn {
                    poi_id: id,
                    position: Point::new(x, y),
                })
                .collect(),
        )
    }

    /// The Figure 7 scenario: a candidate verifiable only by merging the
    /// certain areas of two peers.
    fn figure_7_world() -> (Point, Vec<CacheEntry>, u64) {
        let q = Point::new(0.0, 0.0);
        // Peer P3 to the left, P4 to the right; the candidate n sits above
        // the querier where the two disks overlap.
        let candidate = (100u64, 0.0, 0.8);
        let p3 = entry(
            Point::new(-0.7, 0.0),
            &[candidate, (101, -1.0, -0.9), (102, -2.05, 0.0)], // radius ≈ 1.35
        );
        let p4 = entry(
            Point::new(0.7, 0.0),
            &[candidate, (103, 1.0, -0.9), (104, 2.05, 0.0)], // radius ≈ 1.35
        );
        (q, vec![p3, p4], candidate.0)
    }

    #[test]
    fn single_peer_cannot_verify_figure_7() {
        let (q, peers, cand) = figure_7_world();
        for peer in &peers {
            let mut heap = ResultHeap::new(1);
            crate::single::knn_single(q, peer, &mut heap);
            assert!(
                heap.certain().iter().all(|e| e.poi.poi_id != cand),
                "single-peer verification should fail for the Fig. 7 candidate"
            );
        }
    }

    #[test]
    fn merged_region_verifies_figure_7() {
        let (q, peers, cand) = figure_7_world();
        for method in [
            RegionMethod::Exact,
            RegionMethod::Polygonized { vertices: 48 },
        ] {
            let mut heap = ResultHeap::new(1);
            let added = knn_multiple(q, &peers, method, &mut heap);
            assert!(added >= 1, "{method:?} failed to verify");
            assert_eq!(heap.certain()[0].poi.poi_id, cand);
        }
    }

    #[test]
    fn polygonized_is_no_more_permissive_than_exact() {
        // On a randomized family of worlds, whatever the polygonized region
        // certifies, the exact region certifies too.
        let mut s = 0x5eedu64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..40 {
            let q = Point::new(next() * 10.0, next() * 10.0);
            let peers: Vec<CacheEntry> = (0..3)
                .map(|pi| {
                    let loc = Point::new(next() * 10.0, next() * 10.0);
                    let pois: Vec<(u64, f64, f64)> = (0..3)
                        .map(|j| {
                            (
                                (pi * 10 + j) as u64,
                                loc.x + next() * 6.0 - 3.0,
                                loc.y + next() * 6.0 - 3.0,
                            )
                        })
                        .collect();
                    entry(loc, &pois)
                })
                .collect();
            let mut heap_poly = ResultHeap::new(5);
            let mut heap_exact = ResultHeap::new(5);
            knn_multiple(
                q,
                &peers,
                RegionMethod::Polygonized { vertices: 24 },
                &mut heap_poly,
            );
            knn_multiple(q, &peers, RegionMethod::Exact, &mut heap_exact);
            for e in heap_poly.certain() {
                assert!(
                    heap_exact
                        .certain()
                        .iter()
                        .any(|x| x.poi.poi_id == e.poi.poi_id),
                    "polygonized certified {} which exact did not",
                    e.poi.poi_id
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let mut heap = ResultHeap::new(2);
        assert_eq!(
            knn_multiple::<CacheEntry>(Point::ORIGIN, &[], RegionMethod::default(), &mut heap),
            0
        );
        let empty_peer = entry(Point::ORIGIN, &[]);
        assert_eq!(
            knn_multiple(
                Point::ORIGIN,
                &[empty_peer],
                RegionMethod::default(),
                &mut heap
            ),
            0
        );
        assert!(heap.is_empty());
    }

    #[test]
    fn subsumes_single_peer_verification() {
        // With one peer, multi-peer verification must verify exactly what
        // Lemma 3.2 verifies (the region is that peer's single disk).
        let q = Point::new(0.5, 0.0);
        let peer = entry(
            Point::ORIGIN,
            &[(1, 0.6, 0.0), (2, 0.0, 1.5), (3, 2.0, 0.0)],
        );
        let mut heap_single = ResultHeap::new(3);
        crate::single::knn_single(q, &peer, &mut heap_single);
        let mut heap_multi = ResultHeap::new(3);
        knn_multiple(
            q,
            std::slice::from_ref(&peer),
            RegionMethod::Exact,
            &mut heap_multi,
        );
        let ids =
            |h: &ResultHeap| -> Vec<u64> { h.certain().iter().map(|e| e.poi.poi_id).collect() };
        assert_eq!(ids(&heap_single), ids(&heap_multi));
    }
}
