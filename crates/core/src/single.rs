//! `kNN_single`: single-peer NN verification (Section 3.2.1).
//!
//! Peers are processed in ascending order of their cached query location's
//! distance to the querier (Heuristic 3.3); each peer's cached NNs are
//! classified with Lemma 3.2 and folded into the result heap `H`.

use std::borrow::Borrow;

use senn_cache::CacheEntry;
use senn_geom::Point;

use crate::heap::ResultHeap;
use crate::verify::{classify_entry, Certainty};

/// Sorts peer cache entries by the distance of their cached query location
/// to `query` — Heuristic 3.3. Closer cached locations are likelier to
/// yield adjacent POIs, so processing them first fills `H` faster.
///
/// Accepts owned entries or references (`&mut [CacheEntry]`,
/// `&mut [&CacheEntry]`), so callers holding borrowed peer caches can sort
/// without cloning.
pub fn sort_peers_by_query_location<B: Borrow<CacheEntry>>(query: Point, peers: &mut [B]) {
    peers.sort_by(|a, b| {
        query
            .dist_sq(a.borrow().query_location)
            .partial_cmp(&query.dist_sq(b.borrow().query_location))
            .unwrap()
    });
}

/// Runs the single-peer verification of one peer's cache entry against the
/// heap. Returns the number of *new* certain entries contributed.
pub fn knn_single(query: Point, entry: &CacheEntry, heap: &mut ResultHeap) -> usize {
    let mut new_certain = 0;
    for (idx, dist, certainty) in classify_entry(query, entry) {
        let poi = entry.neighbors[idx];
        match certainty {
            Certainty::Certain => {
                let before = heap.certain_count();
                heap.insert_certain(poi, dist);
                if heap.certain_count() > before {
                    new_certain += 1;
                }
            }
            Certainty::Uncertain => heap.insert_uncertain(poi, dist),
        }
    }
    new_certain
}

/// Runs `kNN_single` across all peers (pre-sorted per Heuristic 3.3),
/// stopping early once `k` certain NNs are verified. Returns true when the
/// query was fully answered.
pub fn knn_single_all<B: Borrow<CacheEntry>>(
    query: Point,
    peers: &[B],
    heap: &mut ResultHeap,
) -> bool {
    for entry in peers {
        knn_single(query, entry.borrow(), heap);
        if heap.is_certain_complete() {
            return true;
        }
    }
    heap.is_certain_complete()
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_cache::CachedNn;

    fn entry(loc: Point, pois: &[(u64, f64, f64)]) -> CacheEntry {
        CacheEntry::new(
            loc,
            pois.iter()
                .map(|&(id, x, y)| CachedNn {
                    poi_id: id,
                    position: Point::new(x, y),
                })
                .collect(),
        )
    }

    #[test]
    fn heuristic_sorts_by_cached_location() {
        let q = Point::ORIGIN;
        let mut peers = vec![
            entry(Point::new(10.0, 0.0), &[(1, 10.0, 1.0)]),
            entry(Point::new(1.0, 0.0), &[(2, 1.0, 1.0)]),
            entry(Point::new(5.0, 0.0), &[(3, 5.0, 1.0)]),
        ];
        sort_peers_by_query_location(q, &mut peers);
        let order: Vec<f64> = peers.iter().map(|p| p.query_location.x).collect();
        assert_eq!(order, vec![1.0, 5.0, 10.0]);
    }

    #[test]
    fn figure_6_example_two_certain_two_uncertain() {
        // Mirrors Fig. 6 / Table 1: peer P1 close to Q verifies two of its
        // three cached NNs; peer P2 farther away contributes only
        // uncertain candidates.
        let q = Point::new(0.0, 0.0);
        let p1 = entry(
            Point::new(1.0, 0.0),
            &[(11, 1.0, 1.0), (12, 0.0, 2.0), (13, 4.0, 0.0)],
        );
        // P1's radius = dist((1,0),(4,0)) = 3. delta = 1.
        // n11 at dist sqrt(2) from Q: sqrt(2)+1 <= 3 certain.
        // n12 at dist 2: 2+1 <= 3 certain.
        // n13 at dist 4: 4+1 > 3 uncertain.
        let p2 = entry(Point::new(8.0, 0.0), &[(21, 7.0, 0.0), (22, 9.5, 0.0)]);
        // P2's radius = 1.5, delta = 8: nothing verifiable.
        let mut heap = ResultHeap::new(4);
        let done = knn_single_all(q, &[p1, p2], &mut heap);
        assert!(!done);
        assert_eq!(heap.certain_count(), 2);
        assert_eq!(heap.len(), 4);
        let ids: Vec<u64> = heap.entries().iter().map(|e| e.poi.poi_id).collect();
        assert_eq!(ids[0], 11);
        assert_eq!(ids[1], 12);
        assert!(ids[2..].contains(&13));
    }

    #[test]
    fn early_exit_once_complete() {
        let q = Point::ORIGIN;
        let collocated = entry(Point::ORIGIN, &[(1, 1.0, 0.0), (2, 2.0, 0.0)]);
        let far = entry(Point::new(50.0, 0.0), &[(3, 49.0, 0.0)]);
        let mut heap = ResultHeap::new(2);
        assert!(knn_single_all(q, &[collocated, far], &mut heap));
        assert!(heap.is_certain_complete());
        assert!(!heap.contains(3), "never processed the second peer");
    }

    #[test]
    fn counts_only_new_certains() {
        let q = Point::ORIGIN;
        let e = entry(Point::ORIGIN, &[(1, 1.0, 0.0), (2, 2.0, 0.0)]);
        let mut heap = ResultHeap::new(5);
        assert_eq!(knn_single(q, &e, &mut heap), 2);
        // Same entry again: everything is a duplicate.
        assert_eq!(knn_single(q, &e, &mut heap), 0);
    }
}
