#![warn(missing_docs)]
//! # senn-core
//!
//! The paper's primary contribution: **sharing-based nearest-neighbor
//! queries** (Section 3). A mobile host `Q` first tries to answer its kNN
//! query from the cached results of peers in radio range, *locally
//! verifying* which candidate POIs are guaranteed (certain) answers, and
//! only contacts the remote spatial database for whatever remains — carrying
//! pruning bounds that shrink the server-side R\*-tree search.
//!
//! Components, mapped to the paper:
//!
//! | Module | Paper |
//! |---|---|
//! | [`verify`] | Lemmas 3.1–3.7: single-peer certainty and rank rules |
//! | [`heap`] | the result heap `H` (Table 1) and its six states (§3.3) |
//! | [`single`] | `kNN_single` — single-peer verification (§3.2.1) |
//! | [`multiple`] | `kNN_multiple` — multi-peer certain region `R_c` (§3.2.2, Lemma 3.8) |
//! | [`bounds`] | branch-expanding upper/lower bounds (§3.3) |
//! | [`pipeline`] | the staged kernel: PeerProbe → SingleVerify → MultiVerify → ServerResidual |
//! | [`distance`] | the [`DistanceModel`] target-metric seam (Euclidean here, network in `senn-network`) |
//! | [`trace`] | the unified [`QueryTrace`] outcome (attribution + accounting + stage timings) |
//! | [`senn`] | Algorithm 1 — the SENN driver over the staged kernel |
//! | [`snnn`] | Algorithm 2 — the SNNN/IER driver, generic over [`DistanceModel`] (§3.4) |
//! | [`server`] | the spatial-database interface plus an R\*-tree adapter |
//!
//! The crate is pure logic: peers are passed in as [`PeerCacheEntry`]
//! values, the database as a [`SpatialServer`] implementation; the
//! simulator (`senn-sim`) wires both to real moving hosts.

pub mod bounds;
pub mod continuous;
pub mod distance;
pub mod heap;
pub mod multiple;
pub mod pipeline;
pub mod range;
pub mod senn;
pub mod server;
pub mod single;
pub mod snnn;
pub mod trace;
pub mod verify;

pub use continuous::{validity_radius, ContinuousKnn, ContinuousStats};
pub use distance::{DistanceModel, Euclidean};
pub use heap::{HeapEntry, HeapState, ResultHeap};
pub use pipeline::{QueryContext, VerifyScratch};
pub use range::{RangeOutcome, RangeServer};
pub use senn::{SennConfig, SennEngine, SennOutcome};
pub use senn_cache::{CacheEntry as PeerCacheEntry, CachedNn};
pub use senn_rtree::SearchBounds;
pub use server::{RTreeServer, ServerResponse, SpatialServer};
pub use snnn::{snnn_query, snnn_query_with, SnnnConfig, SnnnNeighbor, SnnnOutcome};
pub use trace::{QueryTrace, Resolution, Stage, STAGE_COUNT, STAGE_NAMES};
