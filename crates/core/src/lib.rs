#![warn(missing_docs)]
//! # senn-core
//!
//! The paper's primary contribution: **sharing-based nearest-neighbor
//! queries** (Section 3). A mobile host `Q` first tries to answer its kNN
//! query from the cached results of peers in radio range, *locally
//! verifying* which candidate POIs are guaranteed (certain) answers, and
//! only contacts the remote spatial database for whatever remains — carrying
//! pruning bounds that shrink the server-side R\*-tree search.
//!
//! Components, mapped to the paper:
//!
//! | Module | Paper |
//! |---|---|
//! | [`verify`] | Lemmas 3.1–3.7: single-peer certainty and rank rules |
//! | [`heap`] | the result heap `H` (Table 1) and its six states (§3.3) |
//! | [`single`] | `kNN_single` — single-peer verification (§3.2.1) |
//! | [`multiple`] | `kNN_multiple` — multi-peer certain region `R_c` (§3.2.2, Lemma 3.8) |
//! | [`bounds`] | branch-expanding upper/lower bounds (§3.3) |
//! | [`pipeline`] | the staged kernel: PeerProbe → SingleVerify → MultiVerify → ServerResidual |
//! | [`distance`] | the [`DistanceModel`] target-metric seam (Euclidean here, network in `senn-network`) |
//! | [`trace`] | the unified [`QueryTrace`] outcome (attribution + accounting + stage timings) |
//! | [`senn`] | Algorithm 1 — the SENN driver over the staged kernel |
//! | [`snnn`] | Algorithm 2 — the SNNN/IER driver, generic over [`DistanceModel`] (§3.4) |
//! | [`shared_expansion`] | batch-shared Dijkstra frontiers: one settle sweep per query group |
//! | [`rknn`] | reverse-kNN ("which hosts rank me top-k?") over the service seam |
//! | [`service`] | the batched request/reply service API |
//! | [`transport`] | the event-driven async transport (virtual clock, admission control) and the retry/degradation client |
//! | [`server`] | the R\*-tree reference backend of the service seam (§4.4) |
//!
//! The crate is pure logic: peers are passed in as [`PeerCacheEntry`]
//! values, the database as a [`SpatialService`] implementation; the
//! simulator (`senn-sim`) wires both to real moving hosts, and the
//! `senn-server` crate provides a sharded, fault-injectable backend.

pub mod bounds;
pub mod continuous;
pub mod distance;
pub mod heap;
pub mod multiple;
pub mod pipeline;
pub mod range;
pub mod rknn;
pub mod senn;
pub mod server;
pub mod service;
pub mod shared_expansion;
pub mod single;
pub mod snnn;
pub mod trace;
pub mod transport;
pub mod verify;

pub use continuous::{validity_radius, ContinuousKnn, ContinuousStats};
pub use distance::{DistanceModel, Euclidean, EuclideanBound, LowerBoundOracle, NeverPrune};
pub use heap::{HeapEntry, HeapState, ResultHeap};
pub use pipeline::{QueryContext, VerifyScratch};
pub use range::{RangeOutcome, RangeServer};
pub use rknn::{
    rknn_batch, rknn_bruteforce, RknnBatch, RknnHost, RknnOutcome, RknnQuery, RknnStats,
};
pub use senn::{SennConfig, SennEngine, SennOutcome};
pub use senn_cache::{CacheEntry as PeerCacheEntry, CachedNn};
pub use senn_rtree::SearchBounds;
pub use server::{RTreeServer, ServerResponse};
pub use service::{ReplyStatus, RequestOutcome, ServerReply, ServerRequest, SpatialService};
pub use shared_expansion::{FrontierPool, FrontierProbe, SharedFrontier, SharedStats};
pub use snnn::{
    snnn_query, snnn_query_pruned, snnn_query_pruned_with, snnn_query_with, SnnnConfig,
    SnnnExpansion, SnnnNeighbor, SnnnOutcome,
};
pub use trace::{QueryTrace, Resolution, Stage, STAGE_COUNT, STAGE_NAMES};
pub use transport::{
    submit_budgeted, submit_with_retry, AdaptivePolicy, AsyncClient, AsyncService, Priority,
    RequestId, RetryBudget, RetryPolicy, Ticket, Transport, TransportPolicy, TransportStats,
};

/// One-stop imports for typical users of the crate: the engines, the
/// service seam and the message/outcome types they exchange.
///
/// ```
/// use senn_core::prelude::*;
///
/// let server = RTreeServer::new((0..5).map(|i| (i, senn_geom::Point::new(i as f64, 0.0))));
/// let out = SennEngine::default().query::<PeerCacheEntry>(
///     senn_geom::Point::new(2.2, 0.0),
///     2,
///     &[],
///     &server,
/// );
/// assert_eq!(out.results[0].poi.poi_id, 2);
/// ```
pub mod prelude {
    pub use crate::distance::{
        DistanceModel, Euclidean, EuclideanBound, LowerBoundOracle, NeverPrune,
    };
    pub use crate::heap::{HeapEntry, HeapState};
    pub use crate::pipeline::QueryContext;
    pub use crate::rknn::{
        rknn_batch, rknn_bruteforce, RknnBatch, RknnHost, RknnOutcome, RknnQuery, RknnStats,
    };
    pub use crate::senn::{SennConfig, SennEngine, SennOutcome};
    pub use crate::server::{RTreeServer, ServerResponse};
    pub use crate::service::{
        ReplyStatus, RequestOutcome, ServerReply, ServerRequest, SpatialService,
    };
    pub use crate::shared_expansion::{FrontierPool, FrontierProbe, SharedFrontier, SharedStats};
    pub use crate::snnn::{
        snnn_query, snnn_query_pruned, snnn_query_pruned_with, snnn_query_with, SnnnConfig,
        SnnnNeighbor, SnnnOutcome,
    };
    pub use crate::trace::{QueryTrace, Resolution};
    pub use crate::transport::{
        AdaptivePolicy, AsyncClient, AsyncService, Priority, RequestId, RetryBudget, RetryPolicy,
        Ticket, Transport, TransportPolicy, TransportStats,
    };
    pub use senn_cache::{CacheEntry as PeerCacheEntry, CachedNn};
    pub use senn_rtree::SearchBounds;
}
