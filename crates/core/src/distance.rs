//! The distance-model seam between SENN and SNNN.
//!
//! SENN's verification lemmas are intrinsically Euclidean — they reason
//! about circles around cached query locations — so the four pipeline
//! stages always rank candidates by Euclidean distance. What varies
//! between Algorithm 1 and Algorithm 2 is the *target metric* the caller
//! actually wants answers under: SENN wants the Euclidean ranking itself,
//! SNNN wants network distances and uses the Euclidean ranking only as a
//! lower-bounding expansion order (IER). [`DistanceModel`] abstracts that
//! target metric: plugging in [`Euclidean`] makes the SNNN driver collapse
//! to plain SENN, plugging in a road-network model (see
//! `senn_network::NetworkDistance`) yields Algorithm 2.

use senn_geom::Point;

/// A target distance metric for the staged query pipeline.
///
/// Implementations take `&mut self` so they can own reusable search
/// scratch (e.g. a Dijkstra state between A\* calls).
///
/// # Contract
///
/// The model must dominate the Euclidean distance:
/// `distance(query, p) >= query.dist(p)` whenever it returns `Some` —
/// the Euclidean lower-bound property (`ED <= ND`) that makes IER's
/// incremental expansion sound. Every physical road network satisfies it.
pub trait DistanceModel {
    /// Distance from `query` to a POI at `p` under the model's metric, or
    /// `None` when `p` is unreachable (treated as infinitely far).
    fn distance(&mut self, query: Point, p: Point) -> Option<f64>;
}

/// The identity model: the target metric *is* the Euclidean distance.
///
/// Under this model the SNNN driver degenerates to SENN — the first
/// Euclidean round is already the answer and a single expansion round
/// confirms the bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl DistanceModel for Euclidean {
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        Some(query.dist(p))
    }
}

/// A cheap admissible lower bound on a [`DistanceModel`]'s metric.
///
/// SNNN expansion consults the oracle before paying for an exact model
/// evaluation: when the bound already exceeds the current k-th network
/// distance the candidate cannot enter the result set, so the exact call
/// is skipped (see `SnnnExpansion::offer_pruned`).
///
/// # Contract
///
/// `lower_bound(query, p) <= model.distance(query, p)` for every
/// reachable `p` under the model the oracle is paired with. An oracle
/// may be arbitrarily loose — [`NeverPrune`] returns `-inf` and disables
/// pruning entirely — but must never overestimate, or pruning would drop
/// true neighbors.
pub trait LowerBoundOracle {
    /// A lower bound on the paired model's `distance(query, p)`.
    /// Unreachable `p` may return any finite value (the exact evaluation,
    /// if reached, still reports unreachability).
    fn lower_bound(&mut self, query: Point, p: Point) -> f64;
}

/// The free-flow Euclidean bound: admissible for every [`DistanceModel`]
/// by the trait's `ED <= ND` contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct EuclideanBound;

impl LowerBoundOracle for EuclideanBound {
    fn lower_bound(&mut self, query: Point, p: Point) -> f64 {
        query.dist(p)
    }
}

/// The vacuous oracle: `-inf` bounds never exceed anything, so pruned
/// expansion degenerates to the unpruned PR-4 path (every candidate is
/// evaluated exactly). Useful as the experimental control.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverPrune;

impl LowerBoundOracle for NeverPrune {
    fn lower_bound(&mut self, _query: Point, _p: Point) -> f64 {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_the_identity_model() {
        let mut m = Euclidean;
        let q = Point::new(1.0, 2.0);
        let p = Point::new(4.0, 6.0);
        assert_eq!(m.distance(q, p), Some(5.0));
        assert_eq!(m.distance(q, q), Some(0.0));
    }

    #[test]
    fn euclidean_bound_is_tight_for_the_euclidean_model() {
        let mut m = Euclidean;
        let mut b = EuclideanBound;
        let q = Point::new(1.0, 2.0);
        for p in [Point::new(4.0, 6.0), Point::new(-3.0, 0.5), q] {
            let exact = m.distance(q, p).unwrap();
            let lb = b.lower_bound(q, p);
            assert!(lb <= exact);
            assert_eq!(lb, exact, "for Euclidean the free-flow bound is exact");
        }
    }

    #[test]
    fn never_prune_bounds_below_everything() {
        let mut b = NeverPrune;
        let q = Point::new(0.0, 0.0);
        assert_eq!(b.lower_bound(q, q), f64::NEG_INFINITY);
        assert!(b.lower_bound(q, Point::new(9.0, 9.0)) < 0.0);
    }
}
