//! The distance-model seam between SENN and SNNN.
//!
//! SENN's verification lemmas are intrinsically Euclidean — they reason
//! about circles around cached query locations — so the four pipeline
//! stages always rank candidates by Euclidean distance. What varies
//! between Algorithm 1 and Algorithm 2 is the *target metric* the caller
//! actually wants answers under: SENN wants the Euclidean ranking itself,
//! SNNN wants network distances and uses the Euclidean ranking only as a
//! lower-bounding expansion order (IER). [`DistanceModel`] abstracts that
//! target metric: plugging in [`Euclidean`] makes the SNNN driver collapse
//! to plain SENN, plugging in a road-network model (see
//! `senn_network::NetworkDistance`) yields Algorithm 2.

use senn_geom::Point;

/// A target distance metric for the staged query pipeline.
///
/// Implementations take `&mut self` so they can own reusable search
/// scratch (e.g. a Dijkstra state between A\* calls).
///
/// # Contract
///
/// The model must dominate the Euclidean distance:
/// `distance(query, p) >= query.dist(p)` whenever it returns `Some` —
/// the Euclidean lower-bound property (`ED <= ND`) that makes IER's
/// incremental expansion sound. Every physical road network satisfies it.
pub trait DistanceModel {
    /// Distance from `query` to a POI at `p` under the model's metric, or
    /// `None` when `p` is unreachable (treated as infinitely far).
    fn distance(&mut self, query: Point, p: Point) -> Option<f64>;
}

/// The identity model: the target metric *is* the Euclidean distance.
///
/// Under this model the SNNN driver degenerates to SENN — the first
/// Euclidean round is already the answer and a single expansion round
/// confirms the bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl DistanceModel for Euclidean {
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        Some(query.dist(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_the_identity_model() {
        let mut m = Euclidean;
        let q = Point::new(1.0, 2.0);
        let p = Point::new(4.0, 6.0);
        assert_eq!(m.distance(q, p), Some(5.0));
        assert_eq!(m.distance(q, q), Some(0.0));
    }
}
