//! Sharing-based **range queries** — the extension the paper names as
//! future work ("we plan to extend our work to investigate other types of
//! spatial queries, such as range and spatial join searches").
//!
//! A circular range query `(Q, r)` asks for *every* POI within distance
//! `r` of `Q`. The peer-verification argument carries over directly:
//!
//! * If the query disk is covered by a single peer's certain-area disk
//!   (`δ + r <= Dist(P, n_k)`, the range analogue of Lemma 3.2), that
//!   peer's cache enumerates every POI in the query disk.
//! * Otherwise, if the query disk is covered by the merged certain region
//!   `R_c` (the Lemma 3.8 coverage test with the query disk in place of
//!   the candidate circle), the union of the peer caches enumerates every
//!   POI in it.
//! * Otherwise the query goes to the server's R\*-tree disk search.

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::{Circle, Point};

use crate::multiple::CertainRegion;
use crate::senn::{Resolution, SennEngine};
use crate::service::SpatialService;

/// Result of a sharing-based range query.
#[derive(Clone, Debug)]
pub struct RangeOutcome {
    /// Every POI within the radius, ascending by distance.
    pub results: Vec<(CachedNn, f64)>,
    /// How the query was resolved (`SinglePeer`, `MultiPeer` or `Server`).
    pub resolution: Resolution,
    /// Page accesses of the server search, when one happened.
    pub server_accesses: Option<u64>,
}

/// A server capable of circular range queries.
pub trait RangeServer {
    /// Every POI within `radius` of `center`, plus page accesses.
    fn range(&self, center: Point, radius: f64) -> (Vec<(CachedNn, f64)>, u64);
}

impl RangeServer for crate::server::RTreeServer {
    fn range(&self, center: Point, radius: f64) -> (Vec<(CachedNn, f64)>, u64) {
        let (hits, accesses) = self.tree().within_radius(center, radius);
        let mut out: Vec<(CachedNn, f64)> = hits
            .into_iter()
            .map(|(p, id)| {
                (
                    CachedNn {
                        poi_id: *id,
                        position: p,
                    },
                    center.dist(p),
                )
            })
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        (out, accesses)
    }
}

impl SennEngine {
    /// Runs a sharing-based circular range query: peers first (single-peer
    /// disk containment, then the merged certain region), server fallback.
    pub fn range_query<S>(
        &self,
        query: Point,
        radius: f64,
        peers: &[CacheEntry],
        server: &S,
    ) -> RangeOutcome
    where
        S: SpatialService + RangeServer,
    {
        assert!(radius >= 0.0, "range radius must be non-negative");
        let usable: Vec<&CacheEntry> = peers.iter().filter(|p| !p.is_empty()).collect();

        // Single peer: δ + r <= Dist(P, n_k).
        let single = usable
            .iter()
            .find(|p| query.dist(p.query_location) + radius <= p.farthest_distance());
        if let Some(peer) = single {
            return RangeOutcome {
                results: collect_in_radius(query, radius, std::slice::from_ref(*peer)),
                resolution: Resolution::SinglePeer,
                server_accesses: None,
            };
        }

        // Multi peer: the query disk covered by R_c.
        if !usable.is_empty() {
            let owned: Vec<CacheEntry> = usable.iter().map(|p| (*p).clone()).collect();
            let region = CertainRegion::build(&owned, self.config().region_method);
            if !region.is_empty() && {
                let disk = Circle::new(query, radius);
                match &region {
                    CertainRegion::Polygonized(r) => r.covers_circle(&disk),
                    CertainRegion::Exact(r) => r.covers_circle(&disk),
                }
            } {
                return RangeOutcome {
                    results: collect_in_radius(query, radius, &owned),
                    resolution: Resolution::MultiPeer,
                    server_accesses: None,
                };
            }
        }

        let (results, accesses) = server.range(query, radius);
        RangeOutcome {
            results,
            resolution: Resolution::Server,
            server_accesses: Some(accesses),
        }
    }
}

/// All distinct cached POIs within `radius` of `query`, ascending.
fn collect_in_radius(
    query: Point,
    radius: f64,
    peers: &[impl std::borrow::Borrow<CacheEntry>],
) -> Vec<(CachedNn, f64)> {
    let mut seen = std::collections::HashSet::new();
    let mut out: Vec<(CachedNn, f64)> = Vec::new();
    for peer in peers {
        for nn in &peer.borrow().neighbors {
            let d = query.dist(nn.position);
            if d <= radius && seen.insert(nn.poi_id) {
                out.push((*nn, d));
            }
        }
    }
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;

    fn world() -> (Vec<Point>, RTreeServer) {
        let mut s = 0xbeefu64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pois: Vec<Point> = (0..80)
            .map(|_| Point::new(next() * 200.0, next() * 200.0))
            .collect();
        let server = RTreeServer::new(pois.iter().enumerate().map(|(i, p)| (i as u64, *p)));
        (pois, server)
    }

    fn honest_peer(loc: Point, pois: &[Point], cache_k: usize) -> CacheEntry {
        let mut by_d: Vec<(f64, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, p)| (loc.dist(*p), i))
            .collect();
        by_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        CacheEntry::from_sorted(
            loc,
            by_d.iter()
                .take(cache_k)
                .map(|&(_, i)| (i as u64, pois[i]))
                .collect(),
        )
    }

    fn brute(pois: &[Point], q: Point, r: f64) -> Vec<u64> {
        let mut ids: Vec<u64> = pois
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist(**p) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn ids(out: &RangeOutcome) -> Vec<u64> {
        let mut v: Vec<u64> = out.results.iter().map(|(n, _)| n.poi_id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_peer_answers_small_ranges() {
        let (pois, server) = world();
        let q = Point::new(100.0, 100.0);
        let peer = honest_peer(Point::new(102.0, 101.0), &pois, 20);
        let engine = SennEngine::default();
        let r = peer.farthest_distance() - q.dist(peer.query_location) - 1.0;
        assert!(r > 0.0, "scenario needs a usable radius");
        let out = engine.range_query(q, r, std::slice::from_ref(&peer), &server);
        assert_eq!(out.resolution, Resolution::SinglePeer);
        assert_eq!(ids(&out), brute(&pois, q, r));
        // Results sorted ascending.
        for w in out.results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn multi_peer_covers_wider_ranges() {
        let (pois, server) = world();
        let q = Point::new(100.0, 100.0);
        // Two peers straddling the querier; neither alone covers r.
        let p1 = honest_peer(Point::new(80.0, 100.0), &pois, 25);
        let p2 = honest_peer(Point::new(120.0, 100.0), &pois, 25);
        let engine = SennEngine::default();
        // Pick a radius between the single-peer limit and the union limit.
        let single_limit = [&p1, &p2]
            .iter()
            .map(|p| p.farthest_distance() - q.dist(p.query_location))
            .fold(f64::MIN, f64::max);
        let r = single_limit + 3.0;
        let out = engine.range_query(q, r, &[p1, p2], &server);
        if out.resolution != Resolution::Server {
            assert_eq!(out.resolution, Resolution::MultiPeer);
            assert_eq!(
                ids(&out),
                brute(&pois, q, r),
                "multi-peer answer incomplete"
            );
        }
    }

    #[test]
    fn server_fallback_matches_brute_force() {
        let (pois, server) = world();
        let engine = SennEngine::default();
        let q = Point::new(50.0, 150.0);
        let out = engine.range_query(q, 60.0, &[], &server);
        assert_eq!(out.resolution, Resolution::Server);
        assert!(out.server_accesses.unwrap() > 0);
        assert_eq!(ids(&out), brute(&pois, q, 60.0));
    }

    #[test]
    fn randomized_range_queries_always_exact() {
        let (pois, server) = world();
        let engine = SennEngine::default();
        let mut s = 0x1234u64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..100 {
            let q = Point::new(next() * 200.0, next() * 200.0);
            let r = next() * 80.0;
            let peers: Vec<CacheEntry> = (0..3)
                .map(|_| {
                    let loc = Point::new(next() * 200.0, next() * 200.0);
                    honest_peer(loc, &pois, 5 + (next() * 20.0) as usize)
                })
                .collect();
            let out = engine.range_query(q, r, &peers, &server);
            assert_eq!(
                ids(&out),
                brute(&pois, q, r),
                "resolution {:?}",
                out.resolution
            );
        }
    }

    #[test]
    fn zero_radius() {
        let (pois, server) = world();
        let engine = SennEngine::default();
        let q = pois[0];
        let out = engine.range_query(q, 0.0, &[], &server);
        assert!(ids(&out).contains(&0));
    }
}
