//! Deriving the branch-expanding pruning bounds from the heap state
//! (Section 3.3).
//!
//! | State | Heap contents | Bounds |
//! |---|---|---|
//! | 1 | full, mixed | upper + lower |
//! | 2 | full, only uncertain | upper only |
//! | 3 | not full, mixed | lower only |
//! | 4 | not full, only certain | lower only |
//! | 5 | not full, only uncertain | none |
//! | 6 | empty | none |

use senn_rtree::SearchBounds;

use crate::heap::{HeapState, ResultHeap};

/// Computes the pruning bounds a mobile host forwards to the server for
/// the residual kNN query, per the state table of Section 3.3.
pub fn bounds_from_heap(heap: &ResultHeap) -> SearchBounds {
    match heap.state() {
        HeapState::FullMixed => SearchBounds {
            upper: heap.worst_distance(),
            lower: heap.last_certain_distance(),
        },
        HeapState::FullUncertain => SearchBounds {
            upper: heap.worst_distance(),
            lower: None,
        },
        HeapState::PartialMixed | HeapState::PartialCertain => SearchBounds {
            upper: None,
            lower: heap.last_certain_distance(),
        },
        HeapState::PartialUncertain | HeapState::Empty => SearchBounds::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_cache::CachedNn;
    use senn_geom::Point;

    fn nn(id: u64) -> CachedNn {
        CachedNn {
            poi_id: id,
            position: Point::new(id as f64, 0.0),
        }
    }

    #[test]
    fn state1_full_mixed_both_bounds() {
        let mut h = ResultHeap::new(2);
        h.insert_certain(nn(1), 1.0);
        h.insert_uncertain(nn(2), 3.0);
        let b = bounds_from_heap(&h);
        assert_eq!(b.upper, Some(3.0));
        assert_eq!(b.lower, Some(1.0));
    }

    #[test]
    fn state2_full_uncertain_upper_only() {
        let mut h = ResultHeap::new(2);
        h.insert_uncertain(nn(1), 1.0);
        h.insert_uncertain(nn(2), 3.0);
        let b = bounds_from_heap(&h);
        assert_eq!(b.upper, Some(3.0));
        assert_eq!(b.lower, None);
    }

    #[test]
    fn state3_partial_mixed_lower_only() {
        let mut h = ResultHeap::new(5);
        h.insert_certain(nn(1), 1.0);
        h.insert_uncertain(nn(2), 3.0);
        let b = bounds_from_heap(&h);
        assert_eq!(b.upper, None);
        assert_eq!(b.lower, Some(1.0));
    }

    #[test]
    fn state4_partial_certain_lower_only() {
        let mut h = ResultHeap::new(5);
        h.insert_certain(nn(1), 1.0);
        h.insert_certain(nn(2), 2.0);
        let b = bounds_from_heap(&h);
        assert_eq!(b.upper, None);
        assert_eq!(b.lower, Some(2.0));
    }

    #[test]
    fn states5_6_no_bounds() {
        let mut h = ResultHeap::new(5);
        assert!(bounds_from_heap(&h).is_none()); // state 6
        h.insert_uncertain(nn(1), 1.0);
        assert!(bounds_from_heap(&h).is_none()); // state 5
    }
}
