//! The R\*-tree-backed reference implementation of the batched
//! [`SpatialService`] seam.
//!
//! When peer verification cannot complete a query, the mobile host
//! forwards it (with any pruning bounds) over the point-to-point channel.
//! The server runs EINN — the incremental best-first search extended with
//! the bounds (Section 3.3) — and reports its node accesses so the
//! simulator can compute the page access rate (PAR).
//!
//! [`RTreeServer`] is the trivial single-shard backend: one tree, requests
//! of a batch served one after another on the calling thread. The sharded,
//! fan-out backend lives in the `senn-server` crate behind the same trait.

use senn_cache::CachedNn;
use senn_geom::Point;
use senn_rtree::RStarTree;

use crate::service::{ServerReply, ServerRequest, SpatialService};

/// Result of one server-side kNN search.
#[derive(Clone, Debug, Default)]
pub struct ServerResponse {
    /// POIs in ascending distance. Under a lower bound, POIs strictly
    /// inside the verified circle are omitted (the client already holds
    /// them); the boundary POI itself is re-reported and deduplicated by
    /// the client.
    pub pois: Vec<(CachedNn, f64)>,
    /// R\*-tree node accesses the search performed.
    pub node_accesses: u64,
}

/// A [`SpatialService`] backed by a single [`RStarTree`] whose payloads
/// are POI identifiers — the trivial 1-shard implementation.
pub struct RTreeServer {
    tree: RStarTree<u64>,
}

impl RTreeServer {
    /// Builds the server from `(id, position)` POIs via STR bulk loading.
    pub fn new(pois: impl IntoIterator<Item = (u64, Point)>) -> Self {
        let items: Vec<(Point, u64)> = pois.into_iter().map(|(id, p)| (p, id)).collect();
        RTreeServer {
            tree: RStarTree::bulk_load(items),
        }
    }

    /// Access to the underlying tree (e.g. for integrity checks).
    pub fn tree(&self) -> &RStarTree<u64> {
        &self.tree
    }

    /// Answers one request of a batch.
    pub(crate) fn serve(&self, request: &ServerRequest) -> ServerResponse {
        let mut it = self.tree.nn_iter_bounded(request.query, request.bounds);
        let pois: Vec<(CachedNn, f64)> = it
            .by_ref()
            .take(request.count)
            .map(|n| {
                (
                    CachedNn {
                        poi_id: *n.value,
                        position: n.point,
                    },
                    n.dist,
                )
            })
            .collect();
        ServerResponse {
            pois,
            node_accesses: it.page_accesses(),
        }
    }

    /// Answers one query directly against the truth index — a
    /// measurement probe (ground-truth grading, expansion baselines), not
    /// service traffic. Residual queries go through
    /// [`SpatialService::submit`] (possibly behind retry/transport
    /// layers); this inherent method deliberately bypasses them.
    pub fn knn_one(
        &self,
        query: Point,
        count: usize,
        bounds: senn_rtree::SearchBounds,
    ) -> ServerResponse {
        self.serve(&ServerRequest {
            id: crate::transport::RequestId::new(0),
            query,
            count,
            bounds,
            full_count: count,
        })
    }

    /// Moves POI `id` from `old_pos` to `new_pos` (e.g. a gas station
    /// closing here and opening there). Returns false — and leaves the
    /// tree untouched — when no such POI was indexed at `old_pos`.
    pub fn relocate(&mut self, id: u64, old_pos: Point, new_pos: Point) -> bool {
        if self.tree.remove(old_pos, |v| *v == id).is_none() {
            return false;
        }
        self.tree.insert(new_pos, id);
        true
    }
}

impl SpatialService for RTreeServer {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        batch
            .iter()
            .map(|r| ServerReply::ok(r.id, self.serve(r)))
            .collect()
    }

    fn poi_count(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_rtree::SearchBounds;

    fn server(n: usize) -> (RTreeServer, Vec<Point>) {
        let mut s = 0xfeedu64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        (
            RTreeServer::new(pts.iter().enumerate().map(|(i, p)| (i as u64, *p))),
            pts,
        )
    }

    #[test]
    fn knn_one_returns_sorted_results() {
        let (srv, pts) = server(200);
        let q = Point::new(50.0, 50.0);
        let resp = srv.knn_one(q, 5, SearchBounds::NONE);
        assert_eq!(resp.pois.len(), 5);
        assert!(resp.node_accesses > 0);
        for w in resp.pois.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // First result is the true NN.
        let best = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
        assert!((resp.pois[0].1 - best).abs() < 1e-9);
        assert_eq!(srv.poi_count(), 200);
    }

    #[test]
    fn batch_replies_in_request_order_with_ids() {
        let (srv, _) = server(100);
        let batch: Vec<ServerRequest> = (0..8)
            .map(|i| {
                ServerRequest::plain(
                    100 + i,
                    Point::new(i as f64 * 11.0, 50.0),
                    1 + i as usize % 3,
                )
            })
            .collect();
        let replies = srv.submit(&batch);
        assert_eq!(replies.len(), batch.len());
        for (req, reply) in batch.iter().zip(&replies) {
            assert_eq!(reply.id, req.id);
            assert_eq!(reply.response.pois.len(), req.count);
            // Each reply equals the one-shot answer for its request.
            let solo = srv.knn_one(req.query, req.count, req.bounds);
            assert_eq!(reply.response.pois, solo.pois);
        }
    }

    #[test]
    fn empty_server() {
        let srv = RTreeServer::new(vec![]);
        let resp = srv.knn_one(Point::ORIGIN, 3, SearchBounds::NONE);
        assert!(resp.pois.is_empty());
        assert_eq!(srv.poi_count(), 0);
    }

    #[test]
    fn relocate_moves_poi_and_truth_follows() {
        let mut srv = RTreeServer::new(vec![
            (0, Point::new(10.0, 10.0)),
            (1, Point::new(90.0, 90.0)),
        ]);
        assert!(srv.relocate(0, Point::new(10.0, 10.0), Point::new(80.0, 80.0)));
        let resp = srv.knn_one(Point::new(85.0, 85.0), 2, SearchBounds::NONE);
        assert_eq!(resp.pois[0].0.poi_id, 1);
        assert_eq!(resp.pois[1].0.poi_id, 0);
        assert_eq!(resp.pois[1].0.position, Point::new(80.0, 80.0));
        assert_eq!(srv.poi_count(), 2);
    }

    /// Regression (satellite): a stale `old_pos` must fail the relocate
    /// *and* leave the tree untouched — no phantom remove, no insert.
    #[test]
    fn relocate_with_stale_old_pos_is_a_noop() {
        let pois = vec![(0u64, Point::new(10.0, 10.0)), (1, Point::new(20.0, 20.0))];
        let mut srv = RTreeServer::new(pois.clone());
        // Wrong position for id 0 (e.g. a second relocation raced ahead).
        assert!(!srv.relocate(0, Point::new(11.0, 10.0), Point::new(50.0, 50.0)));
        // Wrong id at a real position.
        assert!(!srv.relocate(7, Point::new(10.0, 10.0), Point::new(50.0, 50.0)));
        assert_eq!(srv.poi_count(), 2);
        let resp = srv.knn_one(Point::ORIGIN, 2, SearchBounds::NONE);
        let mut got: Vec<(u64, Point)> = resp
            .pois
            .iter()
            .map(|(c, _)| (c.poi_id, c.position))
            .collect();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got, pois, "tree contents changed on a failed relocate");
    }

    /// Regression (satellite): under a lower bound the boundary POI is
    /// re-reported (it defines the verified circle), POIs strictly inside
    /// are omitted, and the client-side merge dedupes the re-report.
    #[test]
    fn lower_bound_rereports_boundary_and_omits_interior() {
        let srv = RTreeServer::new(vec![
            (0, Point::new(1.0, 0.0)), // strictly inside the circle
            (1, Point::new(3.0, 0.0)), // the boundary POI (defines lb)
            (2, Point::new(5.0, 0.0)),
            (3, Point::new(9.0, 0.0)),
        ]);
        let bounds = SearchBounds {
            upper: None,
            lower: Some(3.0),
        };
        let resp = srv.knn_one(Point::ORIGIN, 3, bounds);
        let ids: Vec<u64> = resp.pois.iter().map(|(c, _)| c.poi_id).collect();
        assert_eq!(
            ids,
            vec![1, 2, 3],
            "boundary POI re-reported, interior POI omitted"
        );
    }
}
