//! The remote spatial-database interface and an R\*-tree-backed
//! implementation.
//!
//! When peer verification cannot complete a query, the mobile host
//! forwards it (with any pruning bounds) over the point-to-point channel.
//! The server runs EINN — the incremental best-first search extended with
//! the bounds (Section 3.3) — and reports its node accesses so the
//! simulator can compute the page access rate (PAR).

use senn_cache::CachedNn;
use senn_geom::Point;
use senn_rtree::{RStarTree, SearchBounds};

/// Result of a server-side kNN call.
#[derive(Clone, Debug, Default)]
pub struct ServerResponse {
    /// POIs in ascending distance. Under a lower bound, POIs strictly
    /// inside the verified circle are omitted (the client already holds
    /// them); the boundary POI itself is re-reported and deduplicated by
    /// the client.
    pub pois: Vec<(CachedNn, f64)>,
    /// R\*-tree node accesses the search performed.
    pub node_accesses: u64,
}

/// A remote spatial database answering kNN queries.
pub trait SpatialServer {
    /// Returns up to `count` nearest POIs under the given pruning bounds.
    fn knn(&self, query: Point, count: usize, bounds: SearchBounds) -> ServerResponse;

    /// Total number of POIs the server indexes.
    fn poi_count(&self) -> usize;
}

/// A [`SpatialServer`] backed by an [`RStarTree`] whose payloads are POI
/// identifiers.
pub struct RTreeServer {
    tree: RStarTree<u64>,
}

impl RTreeServer {
    /// Builds the server from `(id, position)` POIs via STR bulk loading.
    pub fn new(pois: impl IntoIterator<Item = (u64, Point)>) -> Self {
        let items: Vec<(Point, u64)> = pois.into_iter().map(|(id, p)| (p, id)).collect();
        RTreeServer {
            tree: RStarTree::bulk_load(items),
        }
    }

    /// Access to the underlying tree (e.g. for integrity checks).
    pub fn tree(&self) -> &RStarTree<u64> {
        &self.tree
    }

    /// Moves POI `id` from `old_pos` to `new_pos` (e.g. a gas station
    /// closing here and opening there). Returns false when no such POI
    /// was indexed at `old_pos`.
    pub fn relocate(&mut self, id: u64, old_pos: Point, new_pos: Point) -> bool {
        if self.tree.remove(old_pos, |v| *v == id).is_none() {
            return false;
        }
        self.tree.insert(new_pos, id);
        true
    }
}

impl SpatialServer for RTreeServer {
    fn knn(&self, query: Point, count: usize, bounds: SearchBounds) -> ServerResponse {
        let mut it = self.tree.nn_iter_bounded(query, bounds);
        let pois: Vec<(CachedNn, f64)> = it
            .by_ref()
            .take(count)
            .map(|n| {
                (
                    CachedNn {
                        poi_id: *n.value,
                        position: n.point,
                    },
                    n.dist,
                )
            })
            .collect();
        ServerResponse {
            pois,
            node_accesses: it.page_accesses(),
        }
    }

    fn poi_count(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: usize) -> (RTreeServer, Vec<Point>) {
        let mut s = 0xfeedu64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        (
            RTreeServer::new(pts.iter().enumerate().map(|(i, p)| (i as u64, *p))),
            pts,
        )
    }

    #[test]
    fn knn_returns_sorted_results() {
        let (srv, pts) = server(200);
        let q = Point::new(50.0, 50.0);
        let resp = srv.knn(q, 5, SearchBounds::NONE);
        assert_eq!(resp.pois.len(), 5);
        assert!(resp.node_accesses > 0);
        for w in resp.pois.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // First result is the true NN.
        let best = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
        assert!((resp.pois[0].1 - best).abs() < 1e-9);
        assert_eq!(srv.poi_count(), 200);
    }

    #[test]
    fn empty_server() {
        let srv = RTreeServer::new(vec![]);
        let resp = srv.knn(Point::ORIGIN, 3, SearchBounds::NONE);
        assert!(resp.pois.is_empty());
        assert_eq!(srv.poi_count(), 0);
    }
}
