//! The unified query trace: attribution, server accounting and per-stage
//! timing shared by SENN and SNNN outcomes.
//!
//! Every query — one SENN round or an SNNN expansion of many rounds —
//! produces a single [`QueryTrace`] that records how each round was
//! resolved, how many server node accesses it cost, whether the SNNN
//! expansion cap truncated the search, and how much wall time each of the
//! four pipeline stages consumed. `senn-sim` folds traces directly into
//! its metrics; benchmarks read the stage timings.

/// How a SENN round was resolved — the attribution behind the paper's
/// "queries solved by single-peer / multi-peer / server" percentages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// All `k` NNs verified by sequential single-peer verification.
    SinglePeer,
    /// Completed only by the merged multi-peer certain region.
    MultiPeer,
    /// `H` was full and the host accepted the uncertain answer set.
    AcceptedUncertain,
    /// The residual query went to the spatial database server.
    Server,
    /// Peer phases ran but did not complete, and no server was consulted
    /// (only produced by peers-only queries).
    Unresolved,
}

/// The four stages of the query pipeline, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Stage 0: gather, filter and sort the peer caches (Heuristic 3.3).
    PeerProbe,
    /// Stage 1: `kNN_single` — per-peer verification (§3.2.1).
    SingleVerify,
    /// Stage 2: `kNN_multiple` — merged certain region `R_c` (§3.2.2).
    MultiVerify,
    /// Stage 3: residual server query with EINN bounds (§3.3).
    ServerResidual,
}

/// Number of pipeline stages.
pub const STAGE_COUNT: usize = 4;

/// Stage names, indexed like [`QueryTrace::stage_nanos`] — stable
/// identifiers for benchmark output.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "peer_probe",
    "single_verify",
    "multi_verify",
    "server_residual",
];

impl Stage {
    /// Index of the stage into [`QueryTrace::stage_nanos`].
    pub fn index(self) -> usize {
        match self {
            Stage::PeerProbe => 0,
            Stage::SingleVerify => 1,
            Stage::MultiVerify => 2,
            Stage::ServerResidual => 3,
        }
    }

    /// Stable display name of the stage.
    pub fn name(self) -> &'static str {
        STAGE_NAMES[self.index()]
    }
}

/// Unified outcome trace of a query (SENN: one round; SNNN: the initial
/// round plus every expansion round).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryTrace {
    /// Resolution of each SENN round, in order. A plain SENN query has
    /// exactly one entry.
    pub resolutions: Vec<Resolution>,
    /// Total server node accesses across all rounds (`0` when the server
    /// was never contacted).
    pub server_accesses: u64,
    /// True when the server answered at least one round.
    pub server_contacted: bool,
    /// True when SNNN's `max_expansion` cap ended the incremental
    /// expansion before the network-distance bound confirmed the answer —
    /// the results may be inexact (see `SnnnConfig::max_expansion`).
    pub cap_hit: bool,
    /// Re-submissions the retry layer performed for this query's residual
    /// requests (degraded attempts included; `0` when every attempt
    /// succeeded first time or the server was never needed).
    pub server_retries: u32,
    /// Residual-request attempts that ended in a timeout.
    pub server_timeouts: u32,
    /// Residual-request attempts the service (or network) dropped.
    pub server_drops: u32,
    /// Residual requests the transport's admission control refused
    /// (`ReplyStatus::Shed`) — terminal refusals under overload, `0` on
    /// the blocking path or an uncongested transport.
    pub server_shed: u32,
    /// Residual retries the token-bucket budget refused
    /// (`RequestOutcome::retries_denied`) — terminal, `0` whenever the
    /// budget is unlimited (adaptive transport control off).
    pub server_retries_denied: u32,
    /// True when at least one residual answer came from the degraded
    /// (unpruned) fallback of `submit_with_retry`.
    pub server_degraded: bool,
    /// True when a residual request exhausted every attempt and the query
    /// fell back to whatever the peers verified locally.
    pub server_failed: bool,
    /// Lower-bound oracle consultations the SNNN expansion performed
    /// (`0` for plain SENN and for expansions that never reached the
    /// candidate stage).
    pub lb_evals: u64,
    /// Exact model distance evaluations the expansion skipped because an
    /// admissible lower bound already exceeded the k-th network distance.
    pub model_evals_saved: u64,
    /// Node settlements the batch-shared frontier avoided for this query
    /// versus a fresh per-call search (`senn_core::shared_expansion`) —
    /// `0` whenever `SimConfig::shared_expansion` is off. Observation
    /// only: the counter never feeds back into any pruning decision, so
    /// it is the *only* trace field allowed to differ between the shared
    /// and per-query expansion paths.
    pub shared_settles_saved: u64,
    /// Wall-clock nanoseconds spent per stage (observation only; never
    /// fed back into any algorithmic decision).
    pub stage_nanos: [u64; STAGE_COUNT],
    /// Number of times each stage ran.
    pub stage_calls: [u64; STAGE_COUNT],
}

impl QueryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Clears the trace for reuse, keeping the `resolutions` allocation.
    pub fn reset(&mut self) {
        self.resolutions.clear();
        self.server_accesses = 0;
        self.server_contacted = false;
        self.cap_hit = false;
        self.server_retries = 0;
        self.server_timeouts = 0;
        self.server_drops = 0;
        self.server_shed = 0;
        self.server_retries_denied = 0;
        self.server_degraded = false;
        self.server_failed = false;
        self.lb_evals = 0;
        self.model_evals_saved = 0;
        self.shared_settles_saved = 0;
        self.stage_nanos = [0; STAGE_COUNT];
        self.stage_calls = [0; STAGE_COUNT];
    }

    /// Number of SENN rounds folded into this trace.
    pub fn senn_rounds(&self) -> usize {
        self.resolutions.len()
    }

    /// The resolution of the *first* round — what the paper attributes
    /// (SNNN's expansion rounds ask ever-larger `k`; the initial kNN round
    /// is the query). [`Resolution::Unresolved`] for an empty trace.
    pub fn resolution(&self) -> Resolution {
        self.resolutions
            .first()
            .copied()
            .unwrap_or(Resolution::Unresolved)
    }

    /// Records a finished stage invocation.
    pub fn record_stage(&mut self, stage: Stage, nanos: u64) {
        let i = stage.index();
        self.stage_nanos[i] += nanos;
        self.stage_calls[i] += 1;
    }

    /// Folds another round's trace into this one (SNNN expansion).
    pub fn absorb(&mut self, round: &QueryTrace) {
        self.resolutions.extend_from_slice(&round.resolutions);
        self.server_accesses += round.server_accesses;
        self.server_contacted |= round.server_contacted;
        self.cap_hit |= round.cap_hit;
        self.server_retries += round.server_retries;
        self.server_timeouts += round.server_timeouts;
        self.server_drops += round.server_drops;
        self.server_shed += round.server_shed;
        self.server_retries_denied += round.server_retries_denied;
        self.server_degraded |= round.server_degraded;
        self.server_failed |= round.server_failed;
        self.lb_evals += round.lb_evals;
        self.model_evals_saved += round.model_evals_saved;
        self.shared_settles_saved += round.shared_settles_saved;
        for i in 0..STAGE_COUNT {
            self.stage_nanos[i] += round.stage_nanos[i];
            self.stage_calls[i] += round.stage_calls[i];
        }
    }

    /// Attributes the retry layer's disposition of one residual request
    /// (a `senn_core::service::RequestOutcome`) to this query.
    pub fn record_service_outcome(&mut self, outcome: &crate::service::RequestOutcome) {
        self.server_retries += outcome.retries;
        self.server_timeouts += outcome.timeouts;
        self.server_drops += outcome.drops;
        self.server_shed += outcome.shed;
        self.server_retries_denied += outcome.retries_denied;
        self.server_degraded |= outcome.degraded;
        self.server_failed |= outcome.failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_unresolved() {
        let t = QueryTrace::new();
        assert_eq!(t.resolution(), Resolution::Unresolved);
        assert_eq!(t.senn_rounds(), 0);
        assert!(!t.server_contacted);
        assert!(!t.cap_hit);
    }

    #[test]
    fn absorb_accumulates_rounds() {
        let mut total = QueryTrace::new();
        let mut a = QueryTrace::new();
        a.resolutions.push(Resolution::SinglePeer);
        a.record_stage(Stage::PeerProbe, 10);
        let mut b = QueryTrace::new();
        b.resolutions.push(Resolution::Server);
        b.server_accesses = 7;
        b.server_contacted = true;
        b.lb_evals = 5;
        b.model_evals_saved = 2;
        b.shared_settles_saved = 9;
        b.record_stage(Stage::ServerResidual, 20);
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.senn_rounds(), 2);
        assert_eq!(total.resolution(), Resolution::SinglePeer);
        assert_eq!(total.server_accesses, 7);
        assert!(total.server_contacted);
        assert_eq!(total.lb_evals, 5);
        assert_eq!(total.model_evals_saved, 2);
        assert_eq!(total.shared_settles_saved, 9);
        assert_eq!(total.stage_calls, [1, 0, 0, 1]);
        assert_eq!(total.stage_nanos, [10, 0, 0, 20]);
    }

    #[test]
    fn stage_names_line_up() {
        for (i, stage) in [
            Stage::PeerProbe,
            Stage::SingleVerify,
            Stage::MultiVerify,
            Stage::ServerResidual,
        ]
        .into_iter()
        .enumerate()
        {
            assert_eq!(stage.index(), i);
            assert_eq!(stage.name(), STAGE_NAMES[i]);
        }
    }

    #[test]
    fn reset_keeps_nothing() {
        let mut t = QueryTrace::new();
        t.resolutions.push(Resolution::Server);
        t.server_accesses = 3;
        t.server_contacted = true;
        t.cap_hit = true;
        t.server_retries = 2;
        t.server_timeouts = 1;
        t.server_drops = 1;
        t.server_shed = 1;
        t.server_retries_denied = 1;
        t.server_degraded = true;
        t.server_failed = true;
        t.lb_evals = 4;
        t.model_evals_saved = 2;
        t.shared_settles_saved = 6;
        t.record_stage(Stage::MultiVerify, 5);
        t.reset();
        assert_eq!(t, QueryTrace::new());
    }

    #[test]
    fn service_outcome_attribution_accumulates() {
        use crate::service::RequestOutcome;
        let mut t = QueryTrace::new();
        t.record_service_outcome(&RequestOutcome {
            retries: 2,
            timeouts: 1,
            drops: 1,
            degraded: true,
            ..Default::default()
        });
        t.record_service_outcome(&RequestOutcome {
            retries: 1,
            timeouts: 1,
            failed: true,
            ..Default::default()
        });
        t.record_service_outcome(&RequestOutcome {
            shed: 1,
            failed: true,
            ..Default::default()
        });
        t.record_service_outcome(&RequestOutcome {
            retries_denied: 1,
            failed: true,
            ..Default::default()
        });
        assert_eq!(t.server_retries, 3);
        assert_eq!(t.server_timeouts, 2);
        assert_eq!(t.server_drops, 1);
        assert_eq!(t.server_shed, 1);
        assert_eq!(t.server_retries_denied, 1);
        assert!(t.server_degraded && t.server_failed);
        // Absorption carries the attribution along.
        let mut total = QueryTrace::new();
        total.absorb(&t);
        assert_eq!(total.server_retries, 3);
        assert_eq!(total.server_retries_denied, 1);
        assert!(total.server_degraded && total.server_failed);
    }
}
