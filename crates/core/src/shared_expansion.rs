//! Batch-shared frontier expansion: one resumable Dijkstra frontier per
//! group of co-located queries, settling each graph node **at most once
//! per group** instead of once per (query, candidate) distance call.
//!
//! PR 5 coalesced the expand pass's service *submissions* into one batch
//! per interval; the searches behind them still ran independently — every
//! `DistanceModel::distance` call re-settled the same neighborhood around
//! the query's snap node. BRkNN-light-style sharing (PAPERS.md) exploits
//! that co-located queries anchor at the *same* snap node: a single
//! frontier expanded once serves every member's candidate re-ranking.
//!
//! The module is deliberately graph-free, like the rest of `senn-core`:
//! [`SharedFrontier`] asks the caller for a node's out-edges through a
//! closure, so `senn-network` can drive it over plain edge lengths or
//! time-dependent congestion weights without this crate depending on the
//! road-network representation. The contract is that the **same weight
//! closure** backs every call against one frontier — the frontier caches
//! settled distances, so changing weights mid-group would corrupt them.
//!
//! ## Bit-identity
//!
//! A resumable Dijkstra pause/continue never changes which relaxations
//! reach a node before it settles: nodes still settle in globally
//! non-decreasing distance order, and a node's final distance is the
//! same `d(parent) + w` fold a fresh one-shot search computes. On unique
//! shortest paths (the generic jittered networks the generator emits)
//! that fold is bit-identical to the per-query A\*/ALT/CH models, which
//! accumulate the identical prefix sums along the identical parent chain
//! — the same argument the CH oracle's `lb.to_bits() == exact.to_bits()`
//! suite already leans on. The *only* observable difference the shared
//! path is allowed is the [`SharedStats`] accounting itself
//! (`QueryTrace::shared_settles_saved`).
//!
//! ## Accounting
//!
//! Every probe records what a *fresh* search for the same target would
//! have settled (`solo_settles`: the target's settle rank + 1, or the
//! whole reachable component when the target is unreachable) against
//! what the shared frontier actually settled (`new_settles`). The
//! difference — summed in [`SharedStats::saved`] — is the work sharing
//! avoided, and the justification the equivalence suite demands for
//! every skipped settlement.

use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Unsettled marker in [`SharedFrontier`]'s rank column.
const UNSETTLED: u32 = u32::MAX;

/// Heap entry of the shared frontier: min-ordered by tentative distance.
#[derive(Clone, Copy, Debug)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest
        // tentative distance first (ties broken by node id for a total
        // order).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// What one [`SharedFrontier::probe`] observed: the distance (if the
/// target is reachable), what a fresh one-shot search would have settled,
/// and what this probe actually settled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierProbe {
    /// Network distance from the frontier's origin to the target, or
    /// `None` when the target is unreachable from the origin.
    pub dist: Option<f64>,
    /// Settlements a fresh search for this target would have performed:
    /// the target's settle rank + 1, or the size of the origin's whole
    /// reachable component for an unreachable target.
    pub solo_settles: u64,
    /// Nodes this probe newly settled (`0` when the target was already
    /// settled by an earlier probe of the same frontier).
    pub new_settles: u64,
}

/// One resumable Dijkstra frontier anchored at a single origin node.
///
/// The frontier never forgets: every settled node keeps its distance and
/// its settle *rank* (0-based global settle order), so a later probe for
/// an already-covered target costs zero settlements and still knows what
/// a fresh search would have paid.
#[derive(Clone, Debug)]
pub struct SharedFrontier {
    origin: u32,
    dist: Vec<f64>,
    rank: Vec<u32>,
    heap: BinaryHeap<HeapItem>,
    settled: u64,
    exhausted: bool,
}

impl SharedFrontier {
    /// A fresh frontier at `origin` over a graph of `node_count` nodes.
    pub fn new(origin: u32, node_count: usize) -> Self {
        assert!(
            (origin as usize) < node_count,
            "frontier origin {origin} out of range for {node_count} nodes"
        );
        let mut f = SharedFrontier {
            origin,
            dist: vec![f64::INFINITY; node_count],
            rank: vec![UNSETTLED; node_count],
            heap: BinaryHeap::new(),
            settled: 0,
            exhausted: false,
        };
        f.dist[origin as usize] = 0.0;
        f.heap.push(HeapItem {
            dist: 0.0,
            node: origin,
        });
        f
    }

    /// The anchor node every distance is measured from.
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Nodes settled so far across all probes of this frontier.
    pub fn settle_count(&self) -> u64 {
        self.settled
    }

    /// Distance to `target`, resuming the frontier as far as needed.
    ///
    /// `neighbors(node, relax)` must call `relax(to, weight)` once per
    /// out-edge of `node`, with the same weights on every invocation.
    pub fn probe<F>(&mut self, target: u32, mut neighbors: F) -> FrontierProbe
    where
        F: FnMut(u32, &mut dyn FnMut(u32, f64)),
    {
        let t = target as usize;
        if self.rank[t] != UNSETTLED {
            return FrontierProbe {
                dist: Some(self.dist[t]),
                solo_settles: self.rank[t] as u64 + 1,
                new_settles: 0,
            };
        }
        if self.exhausted {
            return FrontierProbe {
                dist: None,
                solo_settles: self.settled,
                new_settles: 0,
            };
        }
        let before = self.settled;
        while let Some(item) = self.heap.pop() {
            let n = item.node as usize;
            if self.rank[n] != UNSETTLED {
                continue; // stale heap entry of an already-settled node
            }
            self.rank[n] = self.settled as u32;
            self.settled += 1;
            let d = item.dist;
            let dist = &mut self.dist;
            let heap = &mut self.heap;
            neighbors(item.node, &mut |to, w| {
                let nd = d + w;
                if nd < dist[to as usize] {
                    dist[to as usize] = nd;
                    heap.push(HeapItem { dist: nd, node: to });
                }
            });
            if item.node == target {
                return FrontierProbe {
                    dist: Some(self.dist[t]),
                    solo_settles: self.rank[t] as u64 + 1,
                    new_settles: self.settled - before,
                };
            }
        }
        // Heap drained without reaching the target: the origin's whole
        // reachable component is settled, and a fresh search would have
        // settled all of it before giving up too.
        self.exhausted = true;
        FrontierProbe {
            dist: None,
            solo_settles: self.settled,
            new_settles: self.settled - before,
        }
    }
}

/// Cumulative accounting across every frontier of a [`FrontierPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Frontiers created — one per distinct origin (query group).
    pub groups: u64,
    /// Distance probes answered.
    pub probes: u64,
    /// Settlements the per-query path would have performed (sum of
    /// per-probe `solo_settles`).
    pub solo_settles: u64,
    /// Settlements the shared frontiers actually performed.
    pub settles: u64,
}

impl SharedStats {
    /// Settlements sharing avoided: `solo_settles - settles`. Each probe
    /// contributes `solo - new >= 0` (a resumed frontier never settles a
    /// node a fresh search for the same target would have skipped), so
    /// the subtraction cannot underflow.
    pub fn saved(&self) -> u64 {
        self.solo_settles - self.settles
    }

    /// How many times fewer nodes the shared frontiers settled than the
    /// per-query searches would have (`>= 1.0`; `1.0` when nothing ran).
    pub fn saved_ratio(&self) -> f64 {
        if self.settles == 0 {
            if self.solo_settles == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.solo_settles as f64 / self.settles as f64
        }
    }
}

/// A batch-scoped cache of [`SharedFrontier`]s keyed by origin node.
///
/// The expand pass interleaves queries with different snap anchors, so
/// the pool keeps one frontier per distinct origin alive for the length
/// of the batch; queries (and candidates) anchored at the same node reuse
/// it. The pool only ever *looks up* by key — no iteration order leaks
/// into results.
#[derive(Debug, Default)]
pub struct FrontierPool {
    node_count: usize,
    frontiers: HashMap<u32, SharedFrontier>,
    stats: SharedStats,
}

impl FrontierPool {
    /// An empty pool over a graph of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        FrontierPool {
            node_count,
            frontiers: HashMap::new(),
            stats: SharedStats::default(),
        }
    }

    /// Distance from `origin` to `target`, sharing the frontier with
    /// every earlier probe from the same origin. `neighbors` must present
    /// the same weighted graph on every call into one pool.
    pub fn distance<F>(&mut self, origin: u32, target: u32, neighbors: F) -> Option<f64>
    where
        F: FnMut(u32, &mut dyn FnMut(u32, f64)),
    {
        let node_count = self.node_count;
        let stats = &mut self.stats;
        let frontier = self.frontiers.entry(origin).or_insert_with(|| {
            stats.groups += 1;
            SharedFrontier::new(origin, node_count)
        });
        let probe = frontier.probe(target, neighbors);
        stats.probes += 1;
        stats.solo_settles += probe.solo_settles;
        stats.settles += probe.new_settles;
        probe.dist
    }

    /// Cumulative accounting so far.
    pub fn stats(&self) -> SharedStats {
        self.stats
    }

    /// Number of live frontiers (distinct origins probed).
    pub fn group_count(&self) -> usize {
        self.frontiers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny weighted digraph as adjacency lists, plus a reference
    /// one-shot Dijkstra to compare the frontier against.
    struct Graph {
        adj: Vec<Vec<(u32, f64)>>,
    }

    impl Graph {
        fn line(weights: &[f64]) -> Graph {
            // 0 -w0-> 1 -w1-> 2 ... (and back, symmetric)
            let n = weights.len() + 1;
            let mut adj = vec![Vec::new(); n];
            for (i, &w) in weights.iter().enumerate() {
                adj[i].push((i as u32 + 1, w));
                adj[i + 1].push((i as u32, w));
            }
            Graph { adj }
        }

        fn neighbors(&self) -> impl FnMut(u32, &mut dyn FnMut(u32, f64)) + '_ {
            |node, relax| {
                for &(to, w) in &self.adj[node as usize] {
                    relax(to, w);
                }
            }
        }

        /// Fresh one-shot Dijkstra with early exit — what the per-query
        /// model pays per distance call. Returns (dist, settles).
        fn solo(&self, from: u32, to: u32) -> (Option<f64>, u64) {
            let mut f = SharedFrontier::new(from, self.adj.len());
            let p = f.probe(to, self.neighbors());
            (p.dist, p.new_settles)
        }
    }

    #[test]
    fn resumed_probes_match_fresh_searches_bit_for_bit() {
        let g = Graph::line(&[1.5, 0.25, 3.0, 0.125, 2.0]);
        let mut f = SharedFrontier::new(0, 6);
        // Probe far-to-near and near-to-far interleaved; every answer must
        // equal a fresh search's bits.
        for &t in &[4u32, 1, 5, 2, 0, 3] {
            let shared = f.probe(t, g.neighbors());
            let (solo, _) = g.solo(0, t);
            match (shared.dist, solo) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "target {t}"),
                (a, b) => assert_eq!(a, b, "target {t}"),
            }
        }
    }

    #[test]
    fn accounting_justifies_every_skip() {
        let g = Graph::line(&[1.0, 1.0, 1.0, 1.0]);
        let mut pool = FrontierPool::new(5);
        // Two co-located queries probing overlapping candidate sets.
        for &t in &[3u32, 4, 3, 1, 4, 2] {
            let d = pool.distance(0, t, g.neighbors());
            assert_eq!(d, Some(t as f64));
        }
        let s = pool.stats();
        assert_eq!(s.groups, 1);
        assert_eq!(s.probes, 6);
        // A fresh search per probe settles rank+1 nodes: 4+5+4+2+5+3 = 23.
        assert_eq!(s.solo_settles, 23);
        // The shared frontier settles each of the 5 nodes exactly once.
        assert_eq!(s.settles, 5);
        assert_eq!(s.saved(), 18);
        assert!((s.saved_ratio() - 23.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn repeat_probe_costs_no_settlements() {
        let g = Graph::line(&[2.0, 2.0]);
        let mut f = SharedFrontier::new(0, 3);
        let first = f.probe(2, g.neighbors());
        assert_eq!(first.new_settles, 3);
        assert_eq!(first.solo_settles, 3);
        let again = f.probe(2, g.neighbors());
        assert_eq!(again.new_settles, 0);
        assert_eq!(again.solo_settles, 3);
        assert_eq!(again.dist, first.dist);
    }

    #[test]
    fn unreachable_target_counts_the_whole_component() {
        // Two disconnected line segments: 0-1 and 2-3.
        let mut adj = vec![Vec::new(); 4];
        adj[0].push((1u32, 1.0));
        adj[1].push((0u32, 1.0));
        adj[2].push((3u32, 1.0));
        adj[3].push((2u32, 1.0));
        let g = Graph { adj };
        let mut pool = FrontierPool::new(4);
        assert_eq!(pool.distance(0, 3, g.neighbors()), None);
        let s = pool.stats();
        // Both the solo and the shared search exhaust {0, 1}.
        assert_eq!(s.solo_settles, 2);
        assert_eq!(s.settles, 2);
        assert_eq!(s.saved(), 0);
        // A second unreachable probe is free but still "solo-costs" the
        // component sweep.
        assert_eq!(pool.distance(0, 2, g.neighbors()), None);
        let s = pool.stats();
        assert_eq!(s.solo_settles, 4);
        assert_eq!(s.settles, 2);
        assert_eq!(s.saved(), 2);
    }

    #[test]
    fn distinct_origins_get_distinct_frontiers() {
        let g = Graph::line(&[1.0, 1.0, 1.0]);
        let mut pool = FrontierPool::new(4);
        assert_eq!(pool.distance(0, 3, g.neighbors()), Some(3.0));
        assert_eq!(pool.distance(3, 0, g.neighbors()), Some(3.0));
        assert_eq!(pool.group_count(), 2);
        assert_eq!(pool.stats().groups, 2);
    }
}
