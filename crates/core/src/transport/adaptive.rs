//! Adaptive transport control: AIMD in-flight windows, priority classes
//! and shed-aware retry budgets for the event-driven [`Transport`].
//!
//! The static [`TransportPolicy`] fixes the per-lane in-flight window and
//! runs an unconditional retry ladder. Under a flash crowd that is the
//! wrong shape twice over: a window sized for the steady state either
//! starves the uplink when the channel is healthy or floods it when the
//! server sheds, and retries burn uplink slots exactly when the admission
//! edge is refusing work. Setting [`TransportPolicy::adaptive`] replaces
//! both fixed choices with feedback controllers — classic AIMD for the
//! windows, a token bucket for the retries — driven **only by the virtual
//! clock and the keyed event schedule**, so every trajectory remains a
//! pure function of `(seed, request ids, enqueue order)`:
//!
//! * **AIMD windows.** Each lane starts at
//!   [`AdaptivePolicy::window_start`]. A completion that arrives `Ok`
//!   with end-to-end virtual latency at or under
//!   [`AdaptivePolicy::latency_target_ms`] grows the lane's window
//!   additively (+1). A `TimedOut` completion, or a shed at the lane's
//!   admission edge, shrinks it multiplicatively
//!   (`window × shrink_num / shrink_den`). The window is always clamped
//!   to `[window_min, window_max]`. Because growth/shrink decisions fire
//!   inside the `(completion time, ticket)`-ordered event loop, the whole
//!   trajectory is invariant to poll granularity, worker-thread count and
//!   backend shard layout.
//! * **Priority classes.** Admission takes a [`Priority`]: `Residual`
//!   batches (the paper's server-bound remainder traffic, which feeds the
//!   peer caches) dispatch strictly ahead of `Probe` traffic (cold-start
//!   warming, speculative prefetch). Starvation is bounded by aging: a
//!   probe that has waited [`AdaptivePolicy::probe_aging_ms`] on the
//!   virtual clock is promoted ahead of younger residuals. The dequeue
//!   rule is deterministic, so `TransportStats::priority_inversions`
//!   (a probe dispatched ahead of a waiting residual *without* aging
//!   justification) must stay zero — tests assert it.
//! * **Retry budgets.** A [`RetryBudget`] token bucket replaces the
//!   unconditional ladder: every re-submission (pruned retry or degraded
//!   attempt) debits one token; an empty bucket denies the retry and the
//!   ladder resolves `failed` with
//!   [`RequestOutcome::retries_denied`](crate::service::RequestOutcome)
//!   counted exactly once. The bucket refills per whole virtual interval,
//!   and observed `Shed` replies cancel refill tokens one-for-one — the
//!   budget *tightens under shed pressure*, backing the client off
//!   exactly when the admission edge signals overload.
//!
//! [`Transport`]: crate::transport::Transport
//! [`TransportPolicy`]: crate::transport::TransportPolicy
//! [`TransportPolicy::adaptive`]: crate::transport::TransportPolicy

/// Priority class of one admitted request. `Residual` is the default
/// everywhere a class is not stated explicitly, so static callers see no
/// behavioral change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Residual server-bound batch traffic — the latency-critical class
    /// (its answers populate the peer caches the paper's sharing wins
    /// come from). Dispatches strictly first.
    #[default]
    Residual,
    /// Cold-start probes / speculative warming — dispatches only when no
    /// residual is waiting, or after aging past
    /// [`AdaptivePolicy::probe_aging_ms`].
    Probe,
}

/// Knobs of the adaptive controller. Attach via
/// [`TransportPolicy::adaptive`](crate::transport::TransportPolicy);
/// `None` keeps the exact static behavior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptivePolicy {
    /// Lower clamp of every lane's in-flight window (≥ 1).
    pub window_min: usize,
    /// Initial per-lane window, clamped into `[window_min, window_max]`.
    pub window_start: usize,
    /// Upper clamp of every lane's in-flight window.
    pub window_max: usize,
    /// Additive growth fires only for `Ok` completions whose end-to-end
    /// virtual latency (enqueue → completion) is at or under this target.
    pub latency_target_ms: f64,
    /// Multiplicative-decrease numerator: on shed/timeout the lane window
    /// becomes `max(window_min, window × shrink_num / shrink_den)`.
    pub shrink_num: u32,
    /// Multiplicative-decrease denominator (≥ 1, and > `shrink_num` for a
    /// genuine decrease).
    pub shrink_den: u32,
    /// Virtual age at which a waiting [`Priority::Probe`] is promoted
    /// ahead of residual traffic (starvation bound).
    pub probe_aging_ms: f64,
    /// Initial retry-budget tokens.
    pub retry_tokens: u64,
    /// Retry-budget capacity (the bucket never holds more).
    pub retry_cap: u64,
    /// Tokens granted per whole virtual refill interval — minus one per
    /// `Shed` observed during that interval (floored at zero).
    pub retry_refill: u64,
    /// Virtual refill interval, milliseconds.
    pub retry_interval_ms: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            window_min: 1,
            window_start: 4,
            window_max: 32,
            latency_target_ms: 250.0,
            shrink_num: 1,
            shrink_den: 2,
            probe_aging_ms: 400.0,
            retry_tokens: 16,
            retry_cap: 32,
            retry_refill: 8,
            retry_interval_ms: 100.0,
        }
    }
}

impl AdaptivePolicy {
    /// A degenerate controller pinned to a fixed window with an unlimited
    /// retry budget: `min = start = max = window`, no refill needed. With
    /// this policy the adaptive path must be bit-identical to the static
    /// policy with the same `window` — the identity the golden tests pin.
    pub fn clamped(window: usize) -> Self {
        AdaptivePolicy {
            window_min: window,
            window_start: window,
            window_max: window,
            retry_tokens: u64::MAX,
            retry_cap: u64::MAX,
            retry_refill: 0,
            ..AdaptivePolicy::default()
        }
    }

    /// The initial per-lane window (start clamped into the band).
    pub(crate) fn start_window(&self) -> usize {
        self.window_start.clamp(self.window_min, self.window_max)
    }

    /// Additive increase, clamped at `window_max`.
    pub(crate) fn grown(&self, window: usize) -> usize {
        (window + 1).min(self.window_max)
    }

    /// Multiplicative decrease, clamped at `window_min`. Integer
    /// arithmetic keeps the trajectory exactly reproducible.
    pub(crate) fn shrunk(&self, window: usize) -> usize {
        let den = self.shrink_den.max(1) as usize;
        (window * self.shrink_num as usize / den).max(self.window_min)
    }
}

/// A shed-aware token-bucket retry budget on the virtual clock.
///
/// Tokens are debited one per re-submission ([`try_debit`]) and granted
/// [`AdaptivePolicy::retry_refill`] per whole elapsed virtual interval
/// ([`advance_to`]) — except that every `Shed` observed since the last
/// refill ([`note_shed`]) cancels one grant token, so sustained shed
/// pressure starves the bucket and the ladder stops feeding the overload.
/// Token counts are unsigned by construction: the budget can reach zero
/// but never go negative.
///
/// [`try_debit`]: RetryBudget::try_debit
/// [`advance_to`]: RetryBudget::advance_to
/// [`note_shed`]: RetryBudget::note_shed
#[derive(Clone, Debug, PartialEq)]
pub struct RetryBudget {
    tokens: u64,
    cap: u64,
    refill: u64,
    interval_ms: f64,
    /// Start of the current (not yet granted) refill interval.
    anchor_ms: f64,
    /// Sheds observed since the last grant; each cancels one refill token.
    shed_pressure: u64,
    /// Retries refused because the bucket was empty.
    denied: u64,
    unlimited: bool,
}

impl RetryBudget {
    /// A bucket that always grants — the static ladder's behavior. Used
    /// whenever [`TransportPolicy::adaptive`] is `None`, so the budgeted
    /// code path is bit-identical to the historical one.
    ///
    /// [`TransportPolicy::adaptive`]: crate::transport::TransportPolicy
    pub fn unlimited() -> Self {
        RetryBudget {
            tokens: u64::MAX,
            cap: u64::MAX,
            refill: 0,
            interval_ms: f64::INFINITY,
            anchor_ms: 0.0,
            shed_pressure: 0,
            denied: 0,
            unlimited: true,
        }
    }

    /// The bucket described by `policy`, anchored at virtual time zero.
    pub fn from_policy(policy: &AdaptivePolicy) -> Self {
        RetryBudget {
            tokens: policy.retry_tokens.min(policy.retry_cap),
            cap: policy.retry_cap,
            refill: policy.retry_refill,
            interval_ms: policy.retry_interval_ms,
            anchor_ms: 0.0,
            shed_pressure: 0,
            denied: 0,
            unlimited: false,
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Retries refused so far (lifetime).
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Grants refills for every whole virtual interval elapsed up to
    /// `now_ms`. The first pending interval pays the accumulated shed
    /// pressure; later (pressure-free) intervals grant in one saturating
    /// step, so the walk is O(1) regardless of the gap.
    pub fn advance_to(&mut self, now_ms: f64) {
        if self.unlimited || self.interval_ms <= 0.0 || !self.interval_ms.is_finite() {
            return;
        }
        if !now_ms.is_finite() || now_ms < self.anchor_ms + self.interval_ms {
            return;
        }
        let intervals = ((now_ms - self.anchor_ms) / self.interval_ms).floor();
        let k = if intervals >= u64::MAX as f64 {
            u64::MAX
        } else {
            intervals as u64
        };
        self.anchor_ms += intervals * self.interval_ms;
        // First interval: refill minus the shed pressure seen before it.
        let first = self.refill.saturating_sub(self.shed_pressure);
        self.shed_pressure = 0;
        self.tokens = self.tokens.saturating_add(first).min(self.cap);
        // Remaining intervals carry no pressure: grant saturates at cap.
        if k > 1 && self.refill > 0 {
            let rest = (k - 1).saturating_mul(self.refill);
            self.tokens = self.tokens.saturating_add(rest).min(self.cap);
        }
    }

    /// Records one observed `Shed` reply: the next refill grants one
    /// token fewer (floored at zero).
    pub fn note_shed(&mut self) {
        if !self.unlimited {
            self.shed_pressure = self.shed_pressure.saturating_add(1);
        }
    }

    /// Takes one token for a re-submission. Returns `false` — and counts
    /// the denial — when the bucket is empty. The unlimited bucket always
    /// grants without decrementing.
    pub fn try_debit(&mut self) -> bool {
        if self.unlimited {
            return true;
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_a_sane_aimd_band() {
        let p = AdaptivePolicy::default();
        assert!(p.window_min >= 1);
        assert!(p.window_min <= p.window_start && p.window_start <= p.window_max);
        assert!(p.shrink_num < p.shrink_den);
        assert_eq!(p.start_window(), p.window_start);
    }

    #[test]
    fn grow_and_shrink_stay_clamped() {
        let p = AdaptivePolicy {
            window_min: 2,
            window_start: 3,
            window_max: 5,
            ..AdaptivePolicy::default()
        };
        assert_eq!(p.grown(5), 5, "growth clamps at window_max");
        assert_eq!(p.grown(3), 4);
        assert_eq!(p.shrunk(5), 2, "5/2 = 2 at the floor");
        assert_eq!(p.shrunk(2), 2, "shrink clamps at window_min");
    }

    #[test]
    fn clamped_policy_pins_the_window_and_never_denies() {
        let p = AdaptivePolicy::clamped(4);
        assert_eq!(p.start_window(), 4);
        assert_eq!(p.grown(4), 4);
        assert_eq!(p.shrunk(4), 4);
        let mut b = RetryBudget::from_policy(&p);
        for _ in 0..10_000 {
            assert!(b.try_debit());
        }
        assert_eq!(b.denied(), 0);
    }

    #[test]
    fn unlimited_budget_never_decrements() {
        let mut b = RetryBudget::unlimited();
        for _ in 0..1000 {
            assert!(b.try_debit());
        }
        assert_eq!(b.tokens(), u64::MAX);
        assert_eq!(b.denied(), 0);
        b.note_shed();
        b.advance_to(1e12);
        assert_eq!(b.tokens(), u64::MAX);
    }

    #[test]
    fn bucket_refills_per_whole_interval_and_caps() {
        let p = AdaptivePolicy {
            retry_tokens: 0,
            retry_cap: 10,
            retry_refill: 4,
            retry_interval_ms: 100.0,
            ..AdaptivePolicy::default()
        };
        let mut b = RetryBudget::from_policy(&p);
        assert!(!b.try_debit(), "empty bucket denies");
        assert_eq!(b.denied(), 1);
        b.advance_to(99.9);
        assert_eq!(b.tokens(), 0, "no whole interval elapsed");
        b.advance_to(100.0);
        assert_eq!(b.tokens(), 4, "one interval grants one refill");
        b.advance_to(1e6);
        assert_eq!(b.tokens(), 10, "grants saturate at the cap");
    }

    #[test]
    fn shed_pressure_cancels_refill_tokens() {
        let p = AdaptivePolicy {
            retry_tokens: 0,
            retry_cap: 100,
            retry_refill: 3,
            retry_interval_ms: 100.0,
            ..AdaptivePolicy::default()
        };
        let mut b = RetryBudget::from_policy(&p);
        b.note_shed();
        b.note_shed();
        b.advance_to(100.0);
        assert_eq!(b.tokens(), 1, "2 sheds cancel 2 of the 3 refill tokens");
        // Pressure beyond the refill floors the grant at zero and does
        // not carry over once granted.
        b.note_shed();
        b.note_shed();
        b.note_shed();
        b.note_shed();
        b.advance_to(200.0);
        assert_eq!(b.tokens(), 1, "4 sheds floor the grant at zero");
        b.advance_to(300.0);
        assert_eq!(b.tokens(), 4, "pressure is consumed by its interval");
    }

    #[test]
    fn advance_is_order_of_one_for_huge_gaps() {
        let p = AdaptivePolicy {
            retry_tokens: 0,
            retry_cap: 7,
            retry_refill: 1,
            retry_interval_ms: 0.001,
            ..AdaptivePolicy::default()
        };
        let mut b = RetryBudget::from_policy(&p);
        b.advance_to(1e15); // ~1e18 intervals: must not loop
        assert_eq!(b.tokens(), 7);
    }
}
