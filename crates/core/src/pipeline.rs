//! The staged query pipeline and its reusable [`QueryContext`].
//!
//! Algorithm 1 decomposes into four explicit stages, run in order by the
//! [`crate::SennEngine`] driver:
//!
//! ```text
//! PeerProbe ──► SingleVerify ──► MultiVerify ──► ServerResidual
//!  (§3.1,         (§3.2.1,         (§3.2.2,        (§3.3, EINN
//!   Heur. 3.3)     Lemma 3.2)       Lemma 3.8)      bounds)
//! ```
//!
//! Each stage is an ordinary function over a [`QueryContext`], so it can
//! be exercised (and timed) in isolation. The context owns *all* per-query
//! scratch — the result heap `H`, the sorted peer-order buffer, and the
//! region/candidate buffers of the multi-peer stage — so batch drivers
//! (`senn-par` workers, the simulator) allocate one context per thread and
//! reuse it across every query instead of allocating per query.
//!
//! ## Ownership rules
//!
//! * A context may be reused across queries, engines, `k`s and peer sets:
//!   [`QueryContext::begin`] re-arms every buffer, and nothing observable
//!   leaks from one query into the next (property-tested).
//! * Stage functions borrow the context mutably and communicate only
//!   through it (heap, order) and their return values — no hidden state.
//! * The context never borrows peer data: peers are addressed through
//!   `u32` indices into the caller's slice, which keeps the context
//!   `'static` and storable in worker structs.

use std::borrow::Borrow;
use std::collections::HashSet;

use senn_cache::{CacheEntry, CachedNn};
use senn_geom::{Circle, Point};
use senn_rtree::SearchBounds;

use crate::heap::{HeapEntry, ResultHeap};
use crate::multiple::{
    collect_candidates, collect_circles, verify_candidates, CertainRegion, RegionMethod,
};
use crate::server::ServerResponse;
use crate::service::{ReplyStatus, ServerRequest, SpatialService};
use crate::single::knn_single;
use crate::trace::QueryTrace;
use crate::transport::RequestId;

/// Reusable scratch of the multi-peer verification stage (and the cache
/// extension walk): candidate list, dedup set and certain-area circles.
#[derive(Debug, Default)]
pub struct VerifyScratch {
    /// `(distance, poi)` candidates, ascending by distance after
    /// collection.
    pub candidates: Vec<(f64, CachedNn)>,
    /// POI-id dedup set for candidate collection.
    pub seen: HashSet<u64>,
    /// Certain-area circles feeding the region build.
    pub circles: Vec<Circle>,
}

/// All per-query scratch of the staged pipeline. Create once per worker,
/// reuse for every query (see the module docs for the ownership rules).
#[derive(Debug)]
pub struct QueryContext {
    /// The result heap `H` (Table 1), re-armed by [`Self::begin`].
    pub heap: ResultHeap,
    /// Indices of the non-empty peers, sorted by cached-query-location
    /// distance (Heuristic 3.3) after [`peer_probe`].
    pub order: Vec<u32>,
    /// Buffers of the multi-peer stage and the cache-extension walk.
    pub verify: VerifyScratch,
    /// The trace of the query in flight, taken by the driver on finish.
    pub trace: QueryTrace,
}

impl Default for QueryContext {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryContext {
    /// A fresh context (buffers are sized on first use).
    pub fn new() -> Self {
        QueryContext {
            heap: ResultHeap::new(1),
            order: Vec::new(),
            verify: VerifyScratch::default(),
            trace: QueryTrace::new(),
        }
    }

    /// Re-arms every buffer for a new query with the given `k`.
    pub fn begin(&mut self, k: usize) {
        self.heap.reset(k);
        self.order.clear();
        self.trace.reset();
    }
}

/// **Stage 0 — PeerProbe**: filters out peers with empty caches and sorts
/// the rest by the distance of their cached query location to the querier
/// (Heuristic 3.3: closer cached locations are likelier to yield adjacent
/// POIs, so processing them first fills `H` faster). The resulting order
/// lives in `ctx.order`; the stable sort makes the order — and therefore
/// every downstream stage — deterministic.
pub fn peer_probe<B: Borrow<CacheEntry>>(ctx: &mut QueryContext, query: Point, peers: &[B]) {
    ctx.order.extend(
        peers
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let entry: &CacheEntry = (*p).borrow();
                !entry.is_empty()
            })
            .map(|(i, _)| i as u32),
    );
    ctx.order.sort_by(|&a, &b| {
        query
            .dist_sq(peers[a as usize].borrow().query_location)
            .partial_cmp(&query.dist_sq(peers[b as usize].borrow().query_location))
            .unwrap()
    });
}

/// **Stage 1 — SingleVerify**: runs `kNN_single` (Lemma 3.2) over the
/// probed peers in order, folding certain and uncertain candidates into
/// `H` and stopping early once `k` certain NNs are verified. Returns true
/// when the query is fully answered.
pub fn single_verify<B: Borrow<CacheEntry>>(
    ctx: &mut QueryContext,
    query: Point,
    peers: &[B],
) -> bool {
    for &i in &ctx.order {
        knn_single(query, peers[i as usize].borrow(), &mut ctx.heap);
        if ctx.heap.is_certain_complete() {
            return true;
        }
    }
    ctx.heap.is_certain_complete()
}

/// **Stage 2 — MultiVerify**: merges the certain areas of all probed peers
/// into the certain region `R_c` and verifies the deduplicated candidates
/// against it (Lemma 3.8), walking ascending by distance until the first
/// failure. Returns true when the query is fully answered.
pub fn multi_verify<B: Borrow<CacheEntry>>(
    ctx: &mut QueryContext,
    query: Point,
    peers: &[B],
    method: RegionMethod,
) -> bool {
    if ctx.order.is_empty() {
        return false;
    }
    let scratch = &mut ctx.verify;
    collect_circles(
        ctx.order.iter().map(|&i| peers[i as usize].borrow()),
        &mut scratch.circles,
    );
    let region = CertainRegion::from_circles(&scratch.circles, method);
    if region.is_empty() {
        return false;
    }
    scratch.seen.clear();
    collect_candidates(
        query,
        ctx.order.iter().map(|&i| peers[i as usize].borrow()),
        &mut scratch.candidates,
        &mut scratch.seen,
    );
    verify_candidates(query, &region, &scratch.candidates, &mut ctx.heap);
    ctx.heap.is_certain_complete()
}

/// What **Stage 3 — ServerResidual** produced.
pub struct ServerResidual {
    /// The complete certain answer: peer-verified certains below the lower
    /// bound merged with the authoritative server response, ascending by
    /// distance, truncated to `k`.
    pub results: Vec<HeapEntry>,
    /// Over-fetched certain NNs beyond `k` (cache refill material).
    pub extra_certain: Vec<HeapEntry>,
    /// R\*-tree node accesses of the server search.
    pub node_accesses: u64,
}

/// Builds the wire request of **Stage 3 — ServerResidual** from the heap
/// state after the peer stages, without contacting any service.
///
/// With a lower bound `lb` the server will skip POIs strictly inside the
/// verified circle — exactly the certain entries below `lb` — so the
/// request only asks for the residual `k - strictly_below`. `server_fetch`
/// over-fetches for the cache-refill policy; because the branch-expanding
/// upper bound only bounds the *k-th* NN, over-fetching forwards the lower
/// bound alone. `full_count` carries `count + strictly_below` so a degraded
/// unpruned retry ([`ServerRequest::unpruned`]) is self-contained.
///
/// Splitting the build from [`merge_residual`] is what lets batch drivers
/// collect one interval's residual requests and submit them as a single
/// [`SpatialService::submit`] batch.
pub fn residual_request(
    ctx: &QueryContext,
    id: impl Into<RequestId>,
    query: Point,
    k: usize,
    bounds: SearchBounds,
    server_fetch: usize,
) -> ServerRequest {
    residual_request_with(ctx.heap.certain(), id, query, k, bounds, server_fetch)
}

/// [`residual_request`] against an explicit certain prefix, for drivers
/// that completed the peer stages earlier and no longer hold the context.
pub fn residual_request_with(
    certain: &[HeapEntry],
    id: impl Into<RequestId>,
    query: Point,
    k: usize,
    bounds: SearchBounds,
    server_fetch: usize,
) -> ServerRequest {
    let strictly_below = match bounds.lower {
        Some(lb) => certain
            .iter()
            .filter(|e| e.dist < lb - senn_geom::EPS)
            .count(),
        None => 0,
    };
    let need = k - strictly_below.min(k);
    let fetch = need.max(server_fetch);
    let wire_bounds = if fetch > need {
        SearchBounds {
            upper: None,
            lower: bounds.lower,
        }
    } else {
        bounds
    };
    ServerRequest {
        id: id.into(),
        query,
        count: fetch,
        bounds: wire_bounds,
        full_count: fetch + strictly_below,
    }
}

/// Merges a service response with the peer-verified certain prefix held in
/// `ctx` — the completion half of **Stage 3 — ServerResidual**.
///
/// Re-reported boundary POIs (and, after a degraded unpruned retry, the
/// whole verified prefix) are deduplicated by POI id; the merge sorts
/// ascending by distance and splits everything beyond `k` into
/// `extra_certain` for the cache-refill policy.
pub fn merge_residual(ctx: &QueryContext, k: usize, response: ServerResponse) -> ServerResidual {
    merge_residual_with(ctx.heap.certain(), k, response)
}

/// [`merge_residual`] against an explicit certain prefix, for drivers that
/// completed the peer stages earlier and no longer hold the context.
pub fn merge_residual_with(
    certain: &[HeapEntry],
    k: usize,
    response: ServerResponse,
) -> ServerResidual {
    let mut merged: Vec<HeapEntry> = certain.to_vec();
    for (poi, dist) in response.pois {
        if merged.iter().any(|e| e.poi.poi_id == poi.poi_id) {
            continue;
        }
        merged.push(HeapEntry {
            poi,
            dist,
            certain: true,
        });
    }
    merged.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    let extra_certain = if merged.len() > k {
        merged.split_off(k)
    } else {
        Vec::new()
    };
    ServerResidual {
        results: merged,
        extra_certain,
        node_accesses: response.node_accesses,
    }
}

/// **Stage 3 — ServerResidual**, one-shot form: builds the request
/// ([`residual_request`]), submits it as a batch of one through the
/// service, and merges the response ([`merge_residual`]).
pub fn server_residual(
    ctx: &mut QueryContext,
    query: Point,
    k: usize,
    bounds: SearchBounds,
    server_fetch: usize,
    service: &dyn SpatialService,
) -> ServerResidual {
    let request = residual_request(ctx, 0u64, query, k, bounds, server_fetch);
    // A batch of one through the service seam; a non-Ok reply (fault
    // wrappers without a retry layer) degrades to the empty response and
    // the merge keeps whatever the peers verified.
    let response = service
        .submit(std::slice::from_ref(&request))
        .pop()
        .filter(|r| r.status == ReplyStatus::Ok)
        .map(|r| r.response)
        .unwrap_or_default();
    merge_residual(ctx, k, response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_cache::CachedNn;

    fn entry(loc: Point, pois: &[(u64, f64, f64)]) -> CacheEntry {
        CacheEntry::new(
            loc,
            pois.iter()
                .map(|&(id, x, y)| CachedNn {
                    poi_id: id,
                    position: Point::new(x, y),
                })
                .collect(),
        )
    }

    #[test]
    fn peer_probe_filters_and_sorts() {
        let mut ctx = QueryContext::new();
        ctx.begin(2);
        let peers = vec![
            entry(Point::new(10.0, 0.0), &[(1, 10.0, 1.0)]),
            entry(Point::new(3.0, 0.0), &[]), // empty: dropped
            entry(Point::new(1.0, 0.0), &[(2, 1.0, 1.0)]),
            entry(Point::new(5.0, 0.0), &[(3, 5.0, 1.0)]),
        ];
        peer_probe(&mut ctx, Point::ORIGIN, &peers);
        assert_eq!(ctx.order, vec![2, 3, 0]);
    }

    #[test]
    fn single_verify_stops_early() {
        let mut ctx = QueryContext::new();
        ctx.begin(2);
        let peers = vec![
            entry(Point::ORIGIN, &[(1, 1.0, 0.0), (2, 2.0, 0.0)]),
            entry(Point::new(50.0, 0.0), &[(3, 49.0, 0.0)]),
        ];
        peer_probe(&mut ctx, Point::ORIGIN, &peers);
        assert!(single_verify(&mut ctx, Point::ORIGIN, &peers));
        assert!(!ctx.heap.contains(3), "second peer never processed");
    }

    #[test]
    fn multi_verify_requires_probed_peers() {
        let mut ctx = QueryContext::new();
        ctx.begin(1);
        let peers: Vec<CacheEntry> = Vec::new();
        peer_probe(&mut ctx, Point::ORIGIN, &peers);
        assert!(!multi_verify(
            &mut ctx,
            Point::ORIGIN,
            &peers,
            RegionMethod::default()
        ));
        assert!(ctx.heap.is_empty());
    }

    #[test]
    fn context_reuse_resets_all_buffers() {
        let mut ctx = QueryContext::new();
        ctx.begin(3);
        let peers = vec![entry(Point::ORIGIN, &[(1, 1.0, 0.0), (2, 2.0, 0.0)])];
        peer_probe(&mut ctx, Point::ORIGIN, &peers);
        single_verify(&mut ctx, Point::ORIGIN, &peers);
        assert!(!ctx.heap.is_empty());
        assert!(!ctx.order.is_empty());
        ctx.begin(5);
        assert!(ctx.heap.is_empty());
        assert_eq!(ctx.heap.k(), 5);
        assert!(ctx.order.is_empty());
        assert_eq!(ctx.trace, QueryTrace::new());
    }
}
