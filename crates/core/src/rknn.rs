//! Reverse-kNN over the batched service seam: *which hosts have me in
//! their top-k POIs?* — the push-notification workload of the ROADMAP's
//! batch-sharing item.
//!
//! A reverse-kNN query is **bichromatic**: the querier is a POI (think a
//! venue pushing an offer), the answer set is every mobile host whose
//! own k-nearest-POI list contains that POI. Host `h` is a member of
//! `RkNN(q)` iff `q.poi_id` appears among the first `q.k` POIs of the
//! server's kNN answer at `h`'s position — so the whole batch reduces to
//! at most one ordinary [`ServerRequest`] per host (with `k` = the
//! largest `k` any query needs at that host, since a kNN answer's first
//! `k'` entries *are* the `k'`-NN answer), driven through the same
//! [`SpatialService`]/transport seam as every other query.
//!
//! Before paying a verification request, each (query, host) pair is
//! tested against the host's **cached-kNN radius**: if the host's cache
//! proves `k` POIs within distance `r` of its current position and the
//! querying POI is farther than `r`, the POI cannot be in the host's
//! top-k and the pair is pruned — soundly, because the cached POIs are
//! real POIs and the comparison is strict (ties still verify). The
//! pruning decision is a pure function of the inputs, so results are
//! invariant to thread and shard layout like every other query type.

use crate::service::{ServerRequest, SpatialService};
use crate::trace::QueryTrace;
use crate::transport::{submit_budgeted, RetryBudget, RetryPolicy};
use senn_geom::Point;

/// One reverse-kNN query: a POI asking which hosts rank it top-k.
#[derive(Clone, Debug, PartialEq)]
pub struct RknnQuery {
    /// Caller-chosen query id, echoed in the outcome.
    pub id: u64,
    /// The POI whose reverse neighbors are wanted.
    pub poi_id: u64,
    /// That POI's position (used only for the cache-radius prune; the
    /// membership test itself matches on `poi_id`).
    pub position: Point,
    /// Membership rank: the host must hold the POI in its top `k`.
    pub k: usize,
}

/// One candidate host of a reverse-kNN batch.
#[derive(Clone, Debug, PartialEq)]
pub struct RknnHost {
    /// Caller-chosen host id, reported in member lists.
    pub host_id: u64,
    /// The host's current position.
    pub position: Point,
    /// Distances from `position` to *distinct* POIs the host's cache
    /// proves exist, sorted ascending. `cached_dists[k-1]` is then a
    /// sound upper bound on the host's true k-th-NN distance: at least
    /// `k` real POIs lie within it. Empty when the host has no usable
    /// cache — every pair then verifies.
    pub cached_dists: Vec<f64>,
}

/// The answer to one [`RknnQuery`].
#[derive(Clone, Debug, PartialEq)]
pub struct RknnOutcome {
    /// The query's id.
    pub id: u64,
    /// The query's POI.
    pub poi_id: u64,
    /// Hosts that rank the POI in their top-k, in input host order.
    pub members: Vec<u64>,
}

/// Work accounting of one reverse-kNN batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RknnStats {
    /// Queries in the batch.
    pub queries: u64,
    /// (query, host) candidate pairs examined.
    pub pairs: u64,
    /// Pairs the cached-kNN radius pruned without a server request.
    pub cache_pruned: u64,
    /// Hosts verified through the service (at most one request each).
    pub verified_hosts: u64,
    /// Hosts whose verification request exhausted every attempt — their
    /// memberships are unknown and reported as non-members.
    pub failed_hosts: u64,
    /// Memberships found across all queries.
    pub members: u64,
}

/// One reverse-kNN batch: the outcomes, the accounting, and the service
/// disposition trace (retries/timeouts/drops/shed) of the verification
/// requests.
#[derive(Clone, Debug, Default)]
pub struct RknnBatch {
    /// Per-query answers, in input query order.
    pub outcomes: Vec<RknnOutcome>,
    /// Work accounting.
    pub stats: RknnStats,
    /// Service dispositions of the verification requests, folded like a
    /// residual round's.
    pub trace: QueryTrace,
}

/// Whether the cached-kNN radius proves `host` cannot rank a POI at
/// distance `d` in its top `k`. Strict comparison: a tie still verifies.
fn cache_prunes(host: &RknnHost, d: f64, k: usize) -> bool {
    k >= 1 && host.cached_dists.len() >= k && d > host.cached_dists[k - 1]
}

/// Answers a batch of reverse-kNN queries against `service`, spending at
/// most one kNN verification request per host through `submit_budgeted`.
pub fn rknn_batch(
    service: &dyn SpatialService,
    policy: &RetryPolicy,
    budget: &mut RetryBudget,
    queries: &[RknnQuery],
    hosts: &[RknnHost],
) -> RknnBatch {
    let mut batch = RknnBatch {
        outcomes: queries
            .iter()
            .map(|q| RknnOutcome {
                id: q.id,
                poi_id: q.poi_id,
                members: Vec::new(),
            })
            .collect(),
        ..RknnBatch::default()
    };
    batch.stats.queries = queries.len() as u64;

    // One pass to size the per-host request: the largest k any unpruned
    // query needs. A kNN answer's first k' entries are the k'-NN answer,
    // so one request serves every query at that host.
    let mut needed_k: Vec<usize> = vec![0; hosts.len()];
    for q in queries {
        if q.k == 0 {
            continue;
        }
        for (h, host) in hosts.iter().enumerate() {
            batch.stats.pairs += 1;
            let d = host.position.dist(q.position);
            if cache_prunes(host, d, q.k) {
                batch.stats.cache_pruned += 1;
            } else {
                needed_k[h] = needed_k[h].max(q.k);
            }
        }
    }

    let requests: Vec<ServerRequest> = needed_k
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k > 0)
        .map(|(h, &k)| ServerRequest::plain(h as u64, hosts[h].position, k))
        .collect();
    batch.stats.verified_hosts = requests.len() as u64;

    // The host's kNN poi-id list, in ascending distance order — `None`
    // for hosts that were never verified or whose request failed.
    let mut replies: Vec<Option<Vec<u64>>> = vec![None; hosts.len()];
    for (req, out) in requests
        .iter()
        .zip(submit_budgeted(service, &requests, policy, budget))
    {
        batch.trace.record_service_outcome(&out);
        let h = req.id.raw() as usize;
        if out.failed {
            batch.stats.failed_hosts += 1;
        } else {
            replies[h] = Some(out.response.pois.iter().map(|(p, _)| p.poi_id).collect());
        }
    }

    for (q, outcome) in queries.iter().zip(&mut batch.outcomes) {
        if q.k == 0 {
            continue;
        }
        for (h, host) in hosts.iter().enumerate() {
            let d = host.position.dist(q.position);
            if cache_prunes(host, d, q.k) {
                continue;
            }
            if let Some(ids) = &replies[h] {
                if ids.iter().take(q.k).any(|&pid| pid == q.poi_id) {
                    outcome.members.push(host.host_id);
                    batch.stats.members += 1;
                }
            }
        }
    }
    batch
}

/// Brute-force reverse-kNN oracle for the equivalence suites: a linear
/// scan over the whole POI set per host, ties broken by POI id like the
/// tests' jittered worlds (which have none w.p. 1).
pub fn rknn_bruteforce(
    queries: &[RknnQuery],
    hosts: &[RknnHost],
    pois: &[(u64, Point)],
) -> Vec<RknnOutcome> {
    queries
        .iter()
        .map(|q| {
            let mut members = Vec::new();
            for host in hosts {
                let mut ranked: Vec<(f64, u64)> = pois
                    .iter()
                    .map(|&(id, p)| (host.position.dist(p), id))
                    .collect();
                ranked.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
                if ranked.iter().take(q.k).any(|&(_, id)| id == q.poi_id) {
                    members.push(host.host_id);
                }
            }
            RknnOutcome {
                id: q.id,
                poi_id: q.poi_id,
                members,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RTreeServer;
    use crate::transport::{RetryBudget, RetryPolicy};

    fn world() -> Vec<(u64, Point)> {
        // A 3×3 jittered grid of POIs, ids 0..9.
        let mut pois = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                let id = (i * 3 + j) as u64;
                pois.push((
                    id,
                    Point::new(
                        i as f64 * 100.0 + id as f64 * 0.13,
                        j as f64 * 100.0 + id as f64 * 0.07,
                    ),
                ));
            }
        }
        pois
    }

    fn host(id: u64, x: f64, y: f64) -> RknnHost {
        RknnHost {
            host_id: id,
            position: Point::new(x, y),
            cached_dists: Vec::new(),
        }
    }

    #[test]
    fn matches_bruteforce_without_caches() {
        let pois = world();
        let server = RTreeServer::new(pois.clone());
        let hosts = vec![
            host(10, 5.0, 5.0),
            host(11, 150.0, 150.0),
            host(12, 210.0, 10.0),
            host(13, 95.0, 205.0),
        ];
        let queries: Vec<RknnQuery> = pois
            .iter()
            .map(|&(id, p)| RknnQuery {
                id,
                poi_id: id,
                position: p,
                k: 2,
            })
            .collect();
        let batch = rknn_batch(
            &server,
            &RetryPolicy::default(),
            &mut RetryBudget::unlimited(),
            &queries,
            &hosts,
        );
        let oracle = rknn_bruteforce(&queries, &hosts, &pois);
        assert_eq!(batch.outcomes, oracle);
        // Every host appears in exactly k=2 member lists in total.
        assert_eq!(batch.stats.members, 2 * hosts.len() as u64);
        assert_eq!(batch.stats.verified_hosts, hosts.len() as u64);
        assert_eq!(batch.stats.cache_pruned, 0);
        assert_eq!(batch.stats.failed_hosts, 0);
    }

    #[test]
    fn cache_radius_prunes_soundly() {
        let pois = world();
        let server = RTreeServer::new(pois.clone());
        // Host at the origin corner with a cache proving two POIs nearby.
        let mut h = host(42, 1.0, 1.0);
        let mut dists: Vec<f64> = pois.iter().map(|&(_, p)| h.position.dist(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        h.cached_dists = dists[..2].to_vec();
        let hosts = vec![h];
        let queries: Vec<RknnQuery> = pois
            .iter()
            .map(|&(id, p)| RknnQuery {
                id,
                poi_id: id,
                position: p,
                k: 2,
            })
            .collect();
        let batch = rknn_batch(
            &server,
            &RetryPolicy::default(),
            &mut RetryBudget::unlimited(),
            &queries,
            &hosts,
        );
        let oracle = rknn_bruteforce(&queries, &hosts, &pois);
        assert_eq!(batch.outcomes, oracle, "pruning must stay invisible");
        // 9 pairs, and the radius kills every POI beyond the 2nd NN.
        assert_eq!(batch.stats.pairs, 9);
        assert_eq!(batch.stats.cache_pruned, 7);
        assert_eq!(batch.stats.verified_hosts, 1);
    }

    #[test]
    fn one_request_serves_mixed_k() {
        let pois = world();
        let server = RTreeServer::new(pois.clone());
        let hosts = vec![host(7, 5.0, 5.0)];
        // k=1 and k=3 queries at the same host: one k=3 request answers
        // both, and the k=1 query only reads the first entry.
        let queries = vec![
            RknnQuery {
                id: 0,
                poi_id: 0,
                position: pois[0].1,
                k: 1,
            },
            RknnQuery {
                id: 1,
                poi_id: 4,
                position: pois[4].1,
                k: 3,
            },
        ];
        let batch = rknn_batch(
            &server,
            &RetryPolicy::default(),
            &mut RetryBudget::unlimited(),
            &queries,
            &hosts,
        );
        assert_eq!(batch.stats.verified_hosts, 1);
        assert_eq!(batch.outcomes, rknn_bruteforce(&queries, &hosts, &pois));
    }

    #[test]
    fn k_zero_is_empty_and_free() {
        let pois = world();
        let server = RTreeServer::new(pois.clone());
        let hosts = vec![host(7, 5.0, 5.0)];
        let queries = vec![RknnQuery {
            id: 0,
            poi_id: 0,
            position: pois[0].1,
            k: 0,
        }];
        let batch = rknn_batch(
            &server,
            &RetryPolicy::default(),
            &mut RetryBudget::unlimited(),
            &queries,
            &hosts,
        );
        assert!(batch.outcomes[0].members.is_empty());
        assert_eq!(batch.stats.pairs, 0);
        assert_eq!(batch.stats.verified_hosts, 0);
    }
}
