//! The verification lemmas (Section 3.2.1).
//!
//! With `δ = Dist(Q, P)` and `r = Dist(P, n_k)` (the peer's cached farthest
//! nearest neighbor):
//!
//! * **Lemma 3.2** — if `Dist(Q, n_i) + δ <= r` then `n_i` is one of the
//!   top-k nearest neighbors of `Q` (a *certain* NN). Geometrically, the
//!   circle around `Q` through `n_i` lies inside the peer's certain-area
//!   disk, inside which the peer's cache enumerates every POI.
//! * **Lemma 3.1** — otherwise nothing is guaranteed: an *uncertain area*
//!   remains where an unknown closer POI may hide.
//! * **Lemma 3.7** — certain NNs verified against a peer receive *exact
//!   ranks*: sorted by distance to `Q`, the i-th verified object is the
//!   i-th nearest neighbor of `Q`.

use senn_cache::CacheEntry;
use senn_geom::Point;

/// Lemma 3.2: can `poi` be verified as a certain nearest neighbor of
/// `query` using a peer whose cached query ran at `peer_location` and whose
/// farthest cached NN lies at `peer_radius`?
#[inline]
pub fn is_certain(query: Point, peer_location: Point, peer_radius: f64, poi: Point) -> bool {
    let delta = query.dist(peer_location);
    query.dist(poi) + delta <= peer_radius
}

/// The verification outcome for one candidate POI from one peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certainty {
    /// Guaranteed a top-k NN of the querier (Lemma 3.2).
    Certain,
    /// Not verifiable from this peer alone (Lemma 3.1).
    Uncertain,
}

/// Classifies every neighbor of a peer's cache entry against `query`,
/// returning `(index, distance to query, certainty)` per cached NN.
pub fn classify_entry(query: Point, entry: &CacheEntry) -> Vec<(usize, f64, Certainty)> {
    let delta = query.dist(entry.query_location);
    let radius = entry.farthest_distance();
    entry
        .neighbors
        .iter()
        .enumerate()
        .map(|(i, nn)| {
            let d = query.dist(nn.position);
            let c = if d + delta <= radius {
                Certainty::Certain
            } else {
                Certainty::Uncertain
            };
            (i, d, c)
        })
        .collect()
}

/// The *certain-area radius* a peer contributes to the multi-peer region
/// `R_c`: the disk around its cached query location through its farthest
/// cached NN. Empty caches contribute nothing (radius 0).
#[inline]
pub fn certain_area_radius(entry: &CacheEntry) -> f64 {
    entry.farthest_distance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use senn_cache::CachedNn;

    fn entry(loc: Point, pois: &[(u64, f64, f64)]) -> CacheEntry {
        CacheEntry::new(
            loc,
            pois.iter()
                .map(|&(id, x, y)| CachedNn {
                    poi_id: id,
                    position: Point::new(x, y),
                })
                .collect(),
        )
    }

    #[test]
    fn lemma_3_2_basic() {
        // Peer at origin cached NNs out to distance 10. Querier at (2, 0).
        let peer = Point::ORIGIN;
        let q = Point::new(2.0, 0.0);
        // POI at (3,0): dist to q = 1, delta = 2, 1 + 2 <= 10 → certain.
        assert!(is_certain(q, peer, 10.0, Point::new(3.0, 0.0)));
        // POI at (9,0): dist 7 + 2 = 9 <= 10 → certain (boundary-ish).
        assert!(is_certain(q, peer, 10.0, Point::new(9.0, 0.0)));
        // POI at (11,0): dist 9 + 2 = 11 > 10 → uncertain.
        assert!(!is_certain(q, peer, 10.0, Point::new(11.0, 0.0)));
    }

    #[test]
    fn paper_figure_4_example() {
        // Figure 4: Dist(Q,n2) + delta <= Dist(P1,n3) makes n2 certain.
        let p1 = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        let n2 = Point::new(1.5, 1.0);
        let n3 = Point::new(0.0, 4.0); // farthest cached NN of P1
        let radius = p1.dist(n3);
        assert!(q.dist(n2) + q.dist(p1) <= radius);
        assert!(is_certain(q, p1, radius, n2));
    }

    #[test]
    fn collocated_querier_verifies_everything_cached() {
        // delta = 0: every cached NN except the farthest boundary one is
        // certain; the farthest itself sits exactly at the radius and is
        // certain too (<=).
        let e = entry(
            Point::ORIGIN,
            &[(1, 1.0, 0.0), (2, 0.0, 2.0), (3, 3.0, 0.0)],
        );
        let classes = classify_entry(Point::ORIGIN, &e);
        assert!(classes.iter().all(|&(_, _, c)| c == Certainty::Certain));
        // Distances are to the querier, ascending because entry is sorted.
        assert_eq!(classes[0].1, 1.0);
        assert_eq!(classes[2].1, 3.0);
    }

    #[test]
    fn far_querier_gets_nothing() {
        let e = entry(Point::ORIGIN, &[(1, 1.0, 0.0), (2, 0.0, 2.0)]);
        let classes = classify_entry(Point::new(100.0, 0.0), &e);
        assert!(classes.iter().all(|&(_, _, c)| c == Certainty::Uncertain));
    }

    #[test]
    fn empty_entry_classifies_empty() {
        let e = entry(Point::ORIGIN, &[]);
        assert!(classify_entry(Point::new(1.0, 1.0), &e).is_empty());
        assert_eq!(certain_area_radius(&e), 0.0);
    }

    #[test]
    fn lemma_3_2_soundness_randomized() {
        // Property: for arbitrary POI sets, a POI passing Lemma 3.2 (w.r.t.
        // an honest peer cache of the k nearest POIs to P) really is among
        // the top-k NNs of Q, where k = cache size.
        let mut s = 0xabcdef12345u64 | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let pois: Vec<Point> = (0..30)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect();
            let p = Point::new(next() * 100.0, next() * 100.0);
            let q = Point::new(next() * 100.0, next() * 100.0);
            let k = 1 + (next() * 8.0) as usize;
            // Honest cache: k nearest POIs to P.
            let mut by_p: Vec<(f64, usize)> = pois
                .iter()
                .enumerate()
                .map(|(i, t)| (p.dist(*t), i))
                .collect();
            by_p.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let cache: Vec<usize> = by_p.iter().take(k).map(|&(_, i)| i).collect();
            let radius = by_p[k.min(by_p.len()) - 1].0;
            // True kNN of Q.
            let mut by_q: Vec<(f64, usize)> = pois
                .iter()
                .enumerate()
                .map(|(i, t)| (q.dist(*t), i))
                .collect();
            by_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let true_knn: Vec<usize> = by_q.iter().take(k).map(|&(_, i)| i).collect();
            for &c in &cache {
                if is_certain(q, p, radius, pois[c]) {
                    assert!(
                        true_knn.contains(&c),
                        "Lemma 3.2 certified a non-NN (poi {c}, k {k})"
                    );
                }
            }
        }
    }
}
