//! Transport conformance: the executable spec every [`AsyncService`]
//! implementation must satisfy, plus the adaptive controller's liveness
//! and budget laws.
//!
//! [`check_async_service_contract`] is a reusable harness: given a
//! factory for a fresh service, a request stream and a poll schedule, it
//! asserts the contract any implementation — the static [`Transport`],
//! the adaptive one, a fault-wrapped one — must keep:
//!
//! 1. **Tickets are 1:1.** Every enqueue's ticket resolves exactly once,
//!    and each reply echoes its request's id.
//! 2. **No reply before its virtual ready time.** For every cut `t` in
//!    the schedule, the tickets delivered by polls at or before `t` are
//!    exactly those a fresh instance delivers from a single `poll(t)` —
//!    availability is a pure threshold in virtual time, so no slicing
//!    can surface a reply early (or lose one).
//! 3. **Dispositions are invariant to poll granularity.** The per-ticket
//!    reply bits (status, latency, answer ids) from the sliced run match
//!    the one-big-drain reference bit for bit.
//!
//! On top of the contract, proptests pin the adaptive controller's laws:
//! AIMD windows never leave `[window_min, window_max]` and converge to
//! `window_max` on a shed-free run (liveness); the token-bucket retry
//! budget never goes negative and every denial is counted exactly once
//! on its outcome (and therefore in the downstream metrics); window
//! trajectories are bit-identical across backend shard layouts; and the
//! unconditional convenience ladder is bit-identical to the budgeted one
//! under an unlimited budget.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

use proptest::prelude::*;
use senn_core::service::{ReplyStatus, ServerReply, ServerRequest, SpatialService};
use senn_core::transport::{
    submit_budgeted, submit_with_retry, AdaptivePolicy, AsyncClient, AsyncService, RequestId,
    RetryBudget, RetryPolicy, Ticket, Transport, TransportPolicy,
};
use senn_core::{QueryTrace, RTreeServer, SearchBounds};
use senn_geom::Point;

/// SplitMix64 finalizer — the keyed-draw discipline shared by the fault
/// and transport layers.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn server() -> RTreeServer {
    RTreeServer::new((0..32).map(|i| (i as u64, Point::new(i as f64, 0.0))))
}

fn requests(n: usize) -> Vec<ServerRequest> {
    (0..n)
        .map(|i| ServerRequest {
            id: (i as u64).into(),
            query: Point::new(i as f64 * 0.9 + 0.01, 0.3),
            count: 2,
            bounds: SearchBounds::NONE,
            full_count: 2,
        })
        .collect()
}

/// A backend sharded into `shards` identical replicas, routed by hashed
/// request id, with **one shared** keyed-flaky attempt schedule: request
/// `id` fails its first `mix64(seed ^ id) % 3` attempts (alternating
/// timeout/drop) no matter which replica serves it. Fates key on
/// `(seed, id, attempt ordinal)` — never the layout — so every shard
/// count must produce bit-identical dispositions.
struct ShardedFlaky {
    replicas: Vec<RTreeServer>,
    seed: u64,
    flaky: bool,
    attempts: Mutex<HashMap<RequestId, u64>>,
}

impl ShardedFlaky {
    fn new(shards: usize, seed: u64, flaky: bool) -> Self {
        ShardedFlaky {
            replicas: (0..shards).map(|_| server()).collect(),
            seed,
            flaky,
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

impl SpatialService for ShardedFlaky {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        batch
            .iter()
            .map(|req| {
                let ordinal = {
                    let mut attempts = self.attempts.lock().unwrap();
                    let e = attempts.entry(req.id).or_insert(0);
                    let o = *e;
                    *e += 1;
                    o
                };
                let failures = if self.flaky {
                    mix64(self.seed ^ req.id.raw()) % 3
                } else {
                    0
                };
                if ordinal < failures {
                    let status = if (ordinal + req.id.raw()) % 2 == 0 {
                        ReplyStatus::TimedOut
                    } else {
                        ReplyStatus::Dropped
                    };
                    ServerReply {
                        id: req.id,
                        status,
                        response: Default::default(),
                        latency_ms: 15.0,
                    }
                } else {
                    let shard = (mix64(req.id.raw()) % self.replicas.len() as u64) as usize;
                    let mut reply = self.replicas[shard]
                        .submit(std::slice::from_ref(req))
                        .pop()
                        .expect("one reply per request");
                    reply.latency_ms = 5.0;
                    reply
                }
            })
            .collect()
    }

    fn poi_count(&self) -> usize {
        self.replicas[0].poi_count()
    }
}

/// Everything observable about one delivered reply, captured bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ReplyBits {
    id: u64,
    /// `ReplyStatus` as its debug name (the enum derives no ordering).
    status: &'static str,
    latency_bits: u64,
    poi_ids: Vec<u64>,
    dist_bits: Vec<u64>,
}

impl ReplyBits {
    fn of(reply: &ServerReply) -> Self {
        ReplyBits {
            id: reply.id.raw(),
            status: match reply.status {
                ReplyStatus::Ok => "ok",
                ReplyStatus::Dropped => "dropped",
                ReplyStatus::TimedOut => "timed_out",
                ReplyStatus::Shed => "shed",
            },
            latency_bits: reply.latency_ms.to_bits(),
            poi_ids: reply.response.pois.iter().map(|(p, _)| p.poi_id).collect(),
            dist_bits: reply
                .response
                .pois
                .iter()
                .map(|(_, d)| d.to_bits())
                .collect(),
        }
    }
}

/// The reusable conformance harness (see the module docs for the three
/// clauses). `make` must build a *fresh, identically seeded* service each
/// call; returns the reference per-ticket dispositions for cross-
/// implementation comparisons.
fn check_async_service_contract<S: AsyncService>(
    mut make: impl FnMut() -> S,
    requests: &[ServerRequest],
    cuts: &[f64],
) -> BTreeMap<Ticket, ReplyBits> {
    // Clause 1 on the reference run: enqueue everything, one big drain.
    let mut reference = make();
    let tickets: Vec<Ticket> = requests.iter().map(|r| reference.enqueue(*r)).collect();
    let distinct: BTreeSet<Ticket> = tickets.iter().copied().collect();
    assert_eq!(distinct.len(), tickets.len(), "tickets must be unique");
    let drained = reference.poll(f64::INFINITY);
    assert_eq!(drained.len(), requests.len(), "every ticket resolves");
    let mut expect: BTreeMap<Ticket, ReplyBits> = BTreeMap::new();
    for (ticket, reply) in &drained {
        let idx = tickets
            .iter()
            .position(|t| t == ticket)
            .expect("reply tickets come from enqueues");
        assert_eq!(reply.id, requests[idx].id, "a reply echoes its request id");
        assert!(expect.insert(*ticket, ReplyBits::of(reply)).is_none());
    }

    // Sliced run over the poll schedule.
    let mut cuts: Vec<f64> = cuts.to_vec();
    cuts.sort_by(f64::total_cmp);
    let mut sliced = make();
    for r in requests {
        sliced.enqueue(*r);
    }
    let mut seen_by_cut: Vec<(f64, BTreeSet<Ticket>)> = Vec::new();
    let mut got: BTreeMap<Ticket, ReplyBits> = BTreeMap::new();
    let mut seen: BTreeSet<Ticket> = BTreeSet::new();
    for &t in &cuts {
        for (ticket, reply) in sliced.poll(t) {
            assert!(seen.insert(ticket), "a ticket resolves at most once");
            got.insert(ticket, ReplyBits::of(&reply));
        }
        seen_by_cut.push((t, seen.clone()));
    }
    for (ticket, reply) in sliced.poll(f64::INFINITY) {
        assert!(seen.insert(ticket), "a ticket resolves at most once");
        got.insert(ticket, ReplyBits::of(&reply));
    }

    // Clause 3: sliced dispositions match the reference bit for bit.
    assert_eq!(got, expect, "dispositions are invariant to poll slicing");

    // Clause 2: availability is a pure threshold in virtual time — a
    // fresh instance polled once at cut `t` delivers exactly the tickets
    // the sliced run accumulated by `t`. (⊇ means nothing arrived late;
    // ⊆ means slicing never surfaced a reply before its ready time.)
    for (t, by_then) in &seen_by_cut {
        let mut fresh = make();
        for r in requests {
            fresh.enqueue(*r);
        }
        let at_once: BTreeSet<Ticket> = fresh.poll(*t).into_iter().map(|(tk, _)| tk).collect();
        assert_eq!(
            &at_once, by_then,
            "replies ready by t={t} must be exactly those delivered by t"
        );
    }
    expect
}

fn static_policy(window: usize, queue_cap: usize) -> TransportPolicy {
    TransportPolicy {
        retry: RetryPolicy::NONE,
        window,
        queue_cap,
        shed: true,
        adaptive: None,
    }
}

fn adaptive_band(start: usize, max: usize) -> AdaptivePolicy {
    AdaptivePolicy {
        window_min: 1,
        window_start: start,
        window_max: max,
        ..AdaptivePolicy::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The static transport honors the contract for any shape and any
    /// poll schedule, fault-free and flaky alike.
    #[test]
    fn static_transport_honors_the_contract(
        seed in any::<u64>(),
        n in 1usize..24,
        window in 1usize..5,
        queue_cap in 1usize..8,
        cuts in prop::collection::vec(0.0f64..300.0, 0..4),
        flaky in any::<bool>(),
    ) {
        check_async_service_contract(
            || Transport::new(ShardedFlaky::new(1, seed, flaky), 3, seed, static_policy(window, queue_cap)),
            &requests(n),
            &cuts,
        );
    }

    /// The adaptive transport honors the same contract: AIMD windows and
    /// the two-class scheduler change *scheduling*, never the reply/
    /// ticket discipline or its granularity invariance.
    #[test]
    fn adaptive_transport_honors_the_contract(
        seed in any::<u64>(),
        n in 1usize..24,
        start in 1usize..4,
        max in 4usize..9,
        queue_cap in 1usize..8,
        cuts in prop::collection::vec(0.0f64..300.0, 0..4),
        flaky in any::<bool>(),
    ) {
        let policy = TransportPolicy {
            adaptive: Some(adaptive_band(start, max)),
            ..static_policy(start, queue_cap)
        };
        check_async_service_contract(
            || Transport::new(ShardedFlaky::new(1, seed, flaky), 3, seed, policy),
            &requests(n),
            &cuts,
        );
    }

    /// Dispositions *and* the whole AIMD window trajectory are
    /// bit-identical across 1/2/3 backend shards: lane assignment hashes
    /// the request id and fate draws key on `(seed, id, attempt)`, so the
    /// backend's layout cannot move a single controller step.
    #[test]
    fn aimd_trajectory_is_invariant_to_backend_shards(
        seed in any::<u64>(),
        n in 1usize..24,
        start in 1usize..4,
        max in 4usize..9,
        cuts in prop::collection::vec(0.0f64..300.0, 0..4),
        flaky in any::<bool>(),
    ) {
        let policy = TransportPolicy {
            adaptive: Some(adaptive_band(start, max)),
            ..static_policy(start, 6)
        };
        let mut reference: Option<_> = None;
        for shards in [1usize, 2, 3] {
            let dispositions = check_async_service_contract(
                || Transport::new(ShardedFlaky::new(shards, seed, flaky), 3, seed, policy),
                &requests(n),
                &cuts,
            );
            // Re-run once more to capture the controller trajectory.
            let mut t = Transport::new(ShardedFlaky::new(shards, seed, flaky), 3, seed, policy);
            for r in &requests(n) {
                t.enqueue(*r);
            }
            t.drain();
            let s = t.stats();
            prop_assert_eq!(s.priority_inversions, 0);
            let snapshot = (
                dispositions,
                t.lane_windows(),
                s.window_min,
                s.window_max,
                s.window_final,
                s.window_grows,
                s.window_shrinks,
            );
            match &reference {
                None => reference = Some(snapshot),
                Some(r) => prop_assert_eq!(&snapshot, r, "shards={}", shards),
            }
        }
    }

    /// Liveness and safety of AIMD: the window never leaves
    /// `[window_min, window_max]`, and a shed-free healthy run converges
    /// every lane to `window_max`.
    #[test]
    fn aimd_window_stays_in_band_and_converges_when_healthy(
        seed in any::<u64>(),
        window_min in 1usize..3,
        start in 1usize..6,
        max in 6usize..10,
        flaky in any::<bool>(),
        queue_cap in 1usize..6,
    ) {
        let adaptive = AdaptivePolicy {
            window_min,
            window_start: start,
            window_max: max,
            ..AdaptivePolicy::default()
        };
        // Safety under arbitrary weather (sheds, timeouts, drops).
        let policy = TransportPolicy {
            adaptive: Some(adaptive),
            ..static_policy(1, queue_cap)
        };
        let mut t = Transport::new(ShardedFlaky::new(1, seed, flaky), 2, seed, policy);
        for r in &requests(48) {
            t.enqueue(*r);
        }
        t.drain();
        prop_assert!(t.stats().window_min >= window_min as u64);
        prop_assert!(t.stats().window_max <= max as u64);
        for w in t.lane_windows() {
            prop_assert!((window_min..=max).contains(&w));
        }

        // Liveness: no faults, no admission pressure, an infinite
        // latency target ⇒ every completion grows, converging to max.
        let healthy = TransportPolicy {
            adaptive: Some(AdaptivePolicy {
                latency_target_ms: f64::INFINITY,
                ..adaptive
            }),
            ..static_policy(1, 4096)
        };
        let mut t = Transport::new(ShardedFlaky::new(1, seed, false), 2, seed, healthy);
        for r in &requests(64) {
            t.enqueue(*r);
        }
        t.drain();
        prop_assert_eq!(t.lane_windows(), vec![max, max]);
        prop_assert_eq!(t.stats().window_shrinks, 0);
    }

    /// The token bucket never goes negative (tokens are unsigned and
    /// capped) and `denied` increments exactly on empty-bucket debits.
    #[test]
    fn retry_budget_never_goes_negative(
        tokens in 0u64..8,
        cap in 1u64..16,
        refill in 0u64..6,
        ops in prop::collection::vec((0u8..3, 1u32..500), 1..64),
    ) {
        let mut b = RetryBudget::from_policy(&AdaptivePolicy {
            retry_tokens: tokens,
            retry_cap: cap,
            retry_refill: refill,
            retry_interval_ms: 100.0,
            ..AdaptivePolicy::default()
        });
        let mut clock = 0.0f64;
        let mut denied = 0u64;
        for (op, arg) in ops {
            match op {
                0 => {
                    let before = b.tokens();
                    let granted = b.try_debit();
                    if granted {
                        prop_assert!(before > 0);
                        prop_assert_eq!(b.tokens(), before - 1);
                    } else {
                        prop_assert_eq!(before, 0);
                        denied += 1;
                    }
                }
                1 => b.note_shed(),
                _ => {
                    clock += arg as f64;
                    b.advance_to(clock);
                }
            }
            prop_assert!(b.tokens() <= cap, "the bucket never exceeds its cap");
            prop_assert_eq!(b.denied(), denied, "denials counted exactly once");
        }
    }

    /// Every denied retry is counted exactly once on its outcome and
    /// flows into the trace layer exactly once — never double-counted,
    /// never lost.
    #[test]
    fn denied_retries_are_counted_exactly_once_in_the_trace(
        seed in any::<u64>(),
        n in 1usize..16,
        tokens in 0u64..6,
    ) {
        struct AlwaysTimesOut;
        impl SpatialService for AlwaysTimesOut {
            fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
                batch
                    .iter()
                    .map(|r| ServerReply {
                        id: r.id,
                        status: ReplyStatus::TimedOut,
                        response: Default::default(),
                        latency_ms: 2.0,
                    })
                    .collect()
            }
            fn poi_count(&self) -> usize {
                0
            }
        }
        let policy = TransportPolicy {
            retry: RetryPolicy::default(),
            window: 4,
            queue_cap: 4096,
            shed: true,
            adaptive: Some(AdaptivePolicy {
                retry_tokens: tokens,
                retry_cap: tokens.max(1),
                retry_refill: 0,
                ..AdaptivePolicy::default()
            }),
        };
        let mut client = AsyncClient::new(AlwaysTimesOut, 2, seed, policy);
        for r in &requests(n) {
            client.submit(*r);
        }
        let resolved = client.drain();
        prop_assert_eq!(resolved.len(), n);
        let mut trace = QueryTrace::new();
        for (_, outcome) in &resolved {
            prop_assert!(outcome.retries_denied <= 1, "a denial is terminal");
            prop_assert!(outcome.retries_denied == 0 || outcome.failed);
            trace.record_service_outcome(outcome);
        }
        prop_assert_eq!(
            trace.server_retries_denied as u64,
            client.retries_denied(),
            "the trace sees every denial exactly once"
        );
        prop_assert!(
            trace.server_retries as u64 <= tokens,
            "with no refill, granted retries never exceed the initial tokens"
        );
    }

    /// The unconditional entry point is the budgeted ladder with an
    /// unlimited bucket: bit-identical outcomes and traces. (The prelude
    /// shim of the same name is gone — `senn_core::transport` keeps the
    /// canonical convenience wrapper.)
    #[test]
    fn unconditional_ladder_equals_budgeted_with_unlimited_bucket(
        seed in any::<u64>(),
        n in 1usize..24,
        flaky in any::<bool>(),
    ) {
        let reqs = requests(n);
        let policy = RetryPolicy::default();
        let via_transport =
            submit_with_retry(&ShardedFlaky::new(1, seed, flaky), &reqs, &policy);
        let mut budget = RetryBudget::unlimited();
        let budgeted = submit_budgeted(
            &ShardedFlaky::new(1, seed, flaky),
            &reqs,
            &policy,
            &mut budget,
        );
        prop_assert_eq!(budget.denied(), 0);
        for paths in [&via_transport] {
            let mut trace_a = QueryTrace::new();
            let mut trace_b = QueryTrace::new();
            for (a, b) in paths.iter().zip(&budgeted) {
                prop_assert_eq!(a.retries, b.retries);
                prop_assert_eq!(a.timeouts, b.timeouts);
                prop_assert_eq!(a.drops, b.drops);
                prop_assert_eq!(a.shed, b.shed);
                prop_assert_eq!(a.retries_denied, 0u32);
                prop_assert_eq!(b.retries_denied, 0u32);
                prop_assert_eq!(a.degraded, b.degraded);
                prop_assert_eq!(a.failed, b.failed);
                prop_assert_eq!(a.waited_ms.to_bits(), b.waited_ms.to_bits());
                let a_pois: Vec<(u64, u64)> = a
                    .response
                    .pois
                    .iter()
                    .map(|(p, d)| (p.poi_id, d.to_bits()))
                    .collect();
                let b_pois: Vec<(u64, u64)> = b
                    .response
                    .pois
                    .iter()
                    .map(|(p, d)| (p.poi_id, d.to_bits()))
                    .collect();
                prop_assert_eq!(a_pois, b_pois);
                trace_a.record_service_outcome(a);
                trace_b.record_service_outcome(b);
            }
            prop_assert_eq!(&trace_a, &trace_b, "bit-identical trace metrics");
        }
    }
}
