//! Shared-vs-solo equivalence suite for the batch-shared frontier
//! (`senn_core::shared_expansion`).
//!
//! Property-tested over random weighted digraphs and random probe
//! schedules:
//!
//! * every probe of a resumed [`SharedFrontier`] returns the **bit**
//!   pattern a fresh one-shot search computes for the same target —
//!   pause/continue never changes which relaxations reach a node before
//!   it settles;
//! * the accounting justifies every skipped settlement: per probe
//!   `solo_settles - new_settles >= 0`, and the pool totals satisfy
//!   `saved() == solo_settles - settles` exactly;
//! * the **totals are probe-order invariant**: any permutation of the
//!   same probe multiset against one frontier yields the same distances
//!   and the same (solo, settled, saved) sums, because settle order is
//!   the global ascending `(dist, node)` order regardless of which query
//!   advances the frontier — the property that lets the lockstep and
//!   per-query expand layouts report identical `Metrics`;
//! * a [`FrontierPool`] groups by origin: per-origin answers equal
//!   per-origin fresh searches, and interleaving origins never bleeds
//!   state between groups.

use proptest::prelude::*;
use senn_core::shared_expansion::{FrontierPool, SharedFrontier};

/// A random weighted digraph as adjacency lists.
#[derive(Clone, Debug)]
struct Graph {
    adj: Vec<Vec<(u32, f64)>>,
}

impl Graph {
    fn neighbors(&self) -> impl FnMut(u32, &mut dyn FnMut(u32, f64)) + '_ {
        |node, relax| {
            for &(to, w) in &self.adj[node as usize] {
                relax(to, w);
            }
        }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }
}

/// Reference one-shot Dijkstra with early exit — the cost model of the
/// per-query path. Implemented independently of `SharedFrontier` (own
/// heap, own relax loop) so the suite does not test the code against
/// itself. Same tie-break: ascending `(dist, node)`.
fn solo_dijkstra(g: &Graph, from: u32, to: u32) -> (Option<f64>, u64) {
    /// Finite f64 with a total order, for the reference min-heap.
    #[derive(PartialEq)]
    struct Ordered(f64);
    impl Eq for Ordered {}
    impl PartialOrd for Ordered {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ordered {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    let n = g.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Ordered, u32)>> =
        std::collections::BinaryHeap::new();
    dist[from as usize] = 0.0;
    heap.push(std::cmp::Reverse((Ordered(0.0), from)));
    let mut settles = 0u64;
    while let Some(std::cmp::Reverse((Ordered(d), node))) = heap.pop() {
        let u = node as usize;
        if settled[u] {
            continue;
        }
        settled[u] = true;
        settles += 1;
        for &(v, w) in &g.adj[u] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((Ordered(nd), v)));
            }
        }
        if node == to {
            return (Some(dist[to as usize]), settles);
        }
    }
    (None, settles)
}

/// Builds a digraph of `n` nodes from raw (from, to, weight) triples
/// (node indices folded mod `n`; self-loops allowed — they can never
/// relax anything), plus a probe schedule of (origin, target) pairs.
fn build_world(
    n: usize,
    edges: &[(u32, u32, f64)],
    probes: &[(u32, u32)],
) -> (Graph, Vec<(u32, u32)>) {
    let mut adj = vec![Vec::new(); n];
    for &(from, to, w) in edges {
        adj[from as usize % n].push((to % n as u32, w));
    }
    let probes = probes
        .iter()
        .map(|&(o, t)| (o % n as u32, t % n as u32))
        .collect();
    (Graph { adj }, probes)
}

/// The raw strategies `build_world` consumes (the vendored proptest has
/// no `prop_flat_map`, so the node count folds the indices instead).
fn raw_edges() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((any::<u32>(), any::<u32>(), 0.5f64..100.0), 0..96)
}

fn raw_probes() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((any::<u32>(), any::<u32>()), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Shared answers are bit-identical to fresh searches, probe by
    /// probe, and every skip is justified by the accounting.
    #[test]
    fn shared_probes_equal_solo_searches_bit_for_bit(
        n in 2usize..=24,
        edges in raw_edges(),
        probes in raw_probes(),
    ) {
        let (g, probes) = build_world(n, &edges, &probes);
        let mut pool = FrontierPool::new(g.len());
        let mut solo_total = 0u64;
        for &(origin, target) in &probes {
            let shared = pool.distance(origin, target, g.neighbors());
            let (solo, solo_settles) = solo_dijkstra(&g, origin, target);
            match (shared, solo) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "diverged on {} -> {}", origin, target
                ),
                (a, b) => prop_assert_eq!(a, b, "reachability diverged on {} -> {}", origin, target),
            }
            solo_total += solo_settles;
        }
        let s = pool.stats();
        prop_assert_eq!(s.probes, probes.len() as u64);
        // The accounting's solo-cost model is exactly what the reference
        // searches paid, and saved() is exactly the difference.
        prop_assert_eq!(s.solo_settles, solo_total);
        prop_assert!(s.settles <= s.solo_settles, "sharing can never settle extra nodes");
        prop_assert_eq!(s.saved(), s.solo_settles - s.settles);
        prop_assert!(s.saved_ratio() >= 1.0);
    }

    /// Per-probe invariant behind the pool totals: a resumed frontier
    /// never settles a node a fresh search for the same target would
    /// have skipped.
    #[test]
    fn per_probe_new_settles_never_exceed_solo(
        n in 2usize..=24,
        edges in raw_edges(),
        probes in raw_probes(),
    ) {
        let (g, probes) = build_world(n, &edges, &probes);
        // All probes from one origin so the frontier actually resumes.
        let origin = probes[0].0;
        let mut f = SharedFrontier::new(origin, g.len());
        for &(_, target) in &probes {
            let p = f.probe(target, g.neighbors());
            prop_assert!(
                p.new_settles <= p.solo_settles,
                "probe {} settled {} but a fresh search pays {}",
                target, p.new_settles, p.solo_settles
            );
            if p.dist.is_some() {
                // Reachable targets: solo cost is the settle rank + 1,
                // which never shrinks and never exceeds the node count.
                prop_assert!(p.solo_settles >= 1);
                prop_assert!(p.solo_settles <= g.len() as u64);
            }
        }
    }

    /// Group-composition invariance: any permutation of the probe
    /// schedule yields the same distances and the same accounting totals
    /// — the reason the lockstep and per-query expand layouts agree on
    /// `Metrics` even though they interleave probes differently.
    #[test]
    fn totals_are_probe_order_invariant(
        n in 2usize..=24,
        edges in raw_edges(),
        probes in raw_probes(),
        rot in 0usize..19,
    ) {
        let (g, probes) = build_world(n, &edges, &probes);
        let run = |order: &[(u32, u32)]| {
            let mut pool = FrontierPool::new(g.len());
            let dists: Vec<Option<u64>> = order
                .iter()
                .map(|&(o, t)| pool.distance(o, t, g.neighbors()).map(f64::to_bits))
                .collect();
            (dists, pool.stats())
        };
        let (base_dists, base) = run(&probes);
        let mut rotated = probes.clone();
        rotated.rotate_left(rot % probes.len());
        let (rot_dists, rot_stats) = run(&rotated);
        // Distances follow their probe; totals are schedule-invariant.
        let mut sorted_a = base_dists.clone();
        let mut sorted_b = rot_dists.clone();
        sorted_a.sort();
        sorted_b.sort();
        prop_assert_eq!(sorted_a, sorted_b);
        prop_assert_eq!(base.groups, rot_stats.groups);
        prop_assert_eq!(base.probes, rot_stats.probes);
        prop_assert_eq!(base.solo_settles, rot_stats.solo_settles);
        prop_assert_eq!(base.settles, rot_stats.settles);
        prop_assert_eq!(base.saved(), rot_stats.saved());
    }

    /// Origin groups are independent: interleaving probes of several
    /// origins through one pool answers exactly like one pool per origin.
    #[test]
    fn origin_groups_never_bleed(
        n in 2usize..=24,
        edges in raw_edges(),
        probes in raw_probes(),
    ) {
        let (g, probes) = build_world(n, &edges, &probes);
        let mut interleaved = FrontierPool::new(g.len());
        let mut per_origin: std::collections::BTreeMap<u32, FrontierPool> =
            std::collections::BTreeMap::new();
        for &(origin, target) in &probes {
            let a = interleaved.distance(origin, target, g.neighbors());
            let b = per_origin
                .entry(origin)
                .or_insert_with(|| FrontierPool::new(g.len()))
                .distance(origin, target, g.neighbors());
            prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
        let whole = interleaved.stats();
        let mut groups = 0;
        let mut solo = 0;
        let mut settles = 0;
        for pool in per_origin.values() {
            let s = pool.stats();
            groups += s.groups;
            solo += s.solo_settles;
            settles += s.settles;
        }
        prop_assert_eq!(whole.groups, groups);
        prop_assert_eq!(whole.solo_settles, solo);
        prop_assert_eq!(whole.settles, settles);
        prop_assert_eq!(interleaved.group_count() as u64, groups);
    }
}
