//! Pruning conformance suite: bound-driven SNNN expansion is
//! observationally identical to the unpruned expansion.
//!
//! The skip rule in [`SnnnExpansion::offer_pruned`] drops an exact model
//! evaluation whenever the candidate's lower bound already reaches the
//! current k-th network distance. This suite proves, over generated
//! jittered-grid road networks and all three exact road metrics (A\*,
//! ALT, time-dependent), that the rule is *only* an optimization:
//!
//! * the pruned driver returns the same `(network_dist, poi_id)`-sorted
//!   top-k as the unpruned driver — distances bit-identical, ids in the
//!   same order — with the same cap-hit verdict, under both the
//!   free-flow Euclidean oracle and the ALT landmark oracle;
//! * `lb_evals` is oracle-invariant (the candidate stream the oracle
//!   sees never depends on which oracle answers), while the tighter
//!   landmark oracle saves at least as many evaluations;
//! * every *skipped* candidate's recorded lower bound genuinely exceeds
//!   the final k-th network distance — no skip could have changed the
//!   answer — and no skipped POI appears in the final result set.

use proptest::prelude::*;
use senn_core::distance::{DistanceModel, EuclideanBound, LowerBoundOracle};
use senn_core::{
    snnn_query, snnn_query_pruned, PeerCacheEntry, RTreeServer, SennEngine, SnnnConfig,
    SnnnExpansion, SnnnOutcome,
};
use senn_geom::Point;
use senn_network::{
    AltBound, AltDistance, AltIndex, NetworkDistance, NodeLocator, RoadClass, RoadNetwork,
    TimeDependentCost,
};

/// Deterministic generator state for grid jitter (proptest drives the
/// seed; the construction itself must be reproducible from it).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A connected W×H grid road network with jittered node positions and
/// mixed road classes (same idiom as senn-network's equivalence suite).
fn grid_network(w: usize, h: usize, seed: u64) -> RoadNetwork {
    let mut net = RoadNetwork::new();
    let mut rng = Mix(seed | 1);
    let spacing = 250.0;
    for y in 0..h {
        for x in 0..w {
            let jx = (rng.unit() - 0.5) * 80.0;
            let jy = (rng.unit() - 0.5) * 80.0;
            net.add_node(Point::new(x as f64 * spacing + jx, y as f64 * spacing + jy));
        }
    }
    let classes = [RoadClass::Primary, RoadClass::Secondary, RoadClass::Local];
    let id = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            let class = classes[(rng.next() % 3) as usize];
            if x + 1 < w {
                net.add_edge(id(x, y), id(x + 1, y), class);
            }
            if y + 1 < h {
                net.add_edge(id(x, y), id(x, y + 1), class);
            }
        }
    }
    net
}

/// POIs jittered off every second grid node.
fn poi_field(net: &RoadNetwork, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = Mix(seed ^ 0xbeef);
    (0..net.node_count())
        .step_by(2)
        .enumerate()
        .map(|(i, n)| {
            let pos = net.position(n as u32);
            (
                i as u64,
                Point::new(pos.x + rng.unit() * 40.0, pos.y + rng.unit() * 40.0),
            )
        })
        .collect()
}

/// Which exact road metric a case runs under (chosen by `prop_oneof!`).
#[derive(Clone, Copy, Debug)]
enum ModelSel {
    AStar,
    Alt,
    TimeDependent(f64),
}

fn model_strategy() -> impl Strategy<Value = ModelSel> {
    prop_oneof![
        Just(ModelSel::AStar),
        Just(ModelSel::Alt),
        (0.0..24.0f64).prop_map(ModelSel::TimeDependent),
    ]
}

/// One concrete model instance (fresh scratch per run — the simulator
/// does the same; distances are pure per `(query, poi)` pair).
enum Model<'a> {
    AStar(NetworkDistance<'a>),
    Alt(AltDistance<'a>),
    Td(TimeDependentCost<'a>),
}

impl Model<'_> {
    fn build<'a>(
        sel: ModelSel,
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a AltIndex,
        q: Point,
    ) -> Model<'a> {
        match sel {
            ModelSel::AStar => Model::AStar(NetworkDistance::new(net, locator, q).unwrap()),
            ModelSel::Alt => Model::Alt(AltDistance::new(net, locator, index, q).unwrap()),
            ModelSel::TimeDependent(hour) => {
                Model::Td(TimeDependentCost::new(net, locator, q, hour).unwrap())
            }
        }
    }
}

impl DistanceModel for Model<'_> {
    fn distance(&mut self, q: Point, p: Point) -> Option<f64> {
        match self {
            Model::AStar(m) => m.distance(q, p),
            Model::Alt(m) => m.distance(q, p),
            Model::Td(m) => m.distance(q, p),
        }
    }
}

/// Either lower-bound oracle under one dispatchable type.
enum Oracle<'a> {
    Euclid(EuclideanBound),
    Alt(AltBound<'a>),
}

impl LowerBoundOracle for Oracle<'_> {
    fn lower_bound(&mut self, query: Point, p: Point) -> f64 {
        match self {
            Oracle::Euclid(o) => o.lower_bound(query, p),
            Oracle::Alt(o) => o.lower_bound(query, p),
        }
    }
}

struct Case {
    net: RoadNetwork,
    pois: Vec<(u64, Point)>,
    q: Point,
    k: usize,
    sel: ModelSel,
    landmarks: usize,
    seed: u64,
}

fn run_pruned(case: &Case, use_alt_oracle: bool) -> SnnnOutcome {
    let locator = NodeLocator::new(&case.net);
    let index = AltIndex::build_seeded(&case.net, case.landmarks, case.seed);
    let server = RTreeServer::new(case.pois.clone());
    let engine = SennEngine::default();
    let mut model = Model::build(case.sel, &case.net, &locator, &index, case.q);
    let mut oracle = if use_alt_oracle {
        Oracle::Alt(AltBound::new(&case.net, &locator, &index, case.q).unwrap())
    } else {
        Oracle::Euclid(EuclideanBound)
    };
    snnn_query_pruned::<PeerCacheEntry, _, _>(
        &engine,
        case.q,
        case.k,
        &[],
        &server,
        &mut model,
        &mut oracle,
        SnnnConfig::default(),
    )
}

fn run_unpruned(case: &Case) -> SnnnOutcome {
    let locator = NodeLocator::new(&case.net);
    let index = AltIndex::build_seeded(&case.net, case.landmarks, case.seed);
    let server = RTreeServer::new(case.pois.clone());
    let engine = SennEngine::default();
    let mut model = Model::build(case.sel, &case.net, &locator, &index, case.q);
    snnn_query::<PeerCacheEntry, _>(
        &engine,
        case.q,
        case.k,
        &[],
        &server,
        &mut model,
        SnnnConfig::default(),
    )
}

fn make_case(w: usize, h: usize, seed: u64, k: usize, sel: ModelSel, landmarks: usize) -> Case {
    let net = grid_network(w, h, seed);
    let pois = poi_field(&net, seed);
    let mut rng = Mix(seed ^ 0x9a9a);
    let q = Point::new(
        rng.unit() * (w as f64) * 250.0,
        rng.unit() * (h as f64) * 250.0,
    );
    Case {
        net,
        pois,
        q,
        k,
        sel,
        landmarks,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pruned driver is a drop-in for the unpruned driver: same
    /// result set (ids in order, distances bit-identical), same cap-hit
    /// verdict — under either oracle. `lb_evals` never depends on the
    /// oracle; `model_evals_saved` is zero without pruning and at least
    /// as large under the landmark oracle as under the free-flow one.
    #[test]
    fn pruned_expansion_matches_unpruned(
        w in 3usize..7,
        h in 3usize..7,
        seed in any::<u64>(),
        k in 1usize..5,
        landmarks in 1usize..5,
        sel in model_strategy(),
    ) {
        let case = make_case(w, h, seed, k, sel, landmarks);
        prop_assume!(case.pois.len() > k);
        let plain = run_unpruned(&case);
        let euclid = run_pruned(&case, false);
        let landmark = run_pruned(&case, true);
        for pruned in [&euclid, &landmark] {
            prop_assert_eq!(plain.results.len(), pruned.results.len());
            for (a, b) in plain.results.iter().zip(&pruned.results) {
                prop_assert_eq!(a.poi.poi_id, b.poi.poi_id);
                prop_assert!(
                    a.network_dist == b.network_dist,
                    "distance drifted: {} vs {}", a.network_dist, b.network_dist
                );
            }
            prop_assert_eq!(plain.trace.cap_hit, pruned.trace.cap_hit);
            // The candidate stream is oracle-invariant, so every run
            // consults its oracle the same number of times.
            prop_assert_eq!(plain.trace.lb_evals, pruned.trace.lb_evals);
        }
        // The unpruned driver runs the vacuous NeverPrune oracle.
        prop_assert_eq!(plain.trace.model_evals_saved, 0);
        prop_assert!(
            landmark.trace.model_evals_saved >= euclid.trace.model_evals_saved,
            "landmark bounds ({}) pruned less than free-flow bounds ({})",
            landmark.trace.model_evals_saved,
            euclid.trace.model_evals_saved
        );
    }

    /// Skip audit: drive the expansion state machine directly with the
    /// skip log enabled, and check every skipped candidate's recorded
    /// lower bound exceeds the *final* k-th network distance (the k-th
    /// distance only shrinks across rounds, so beating the bound at skip
    /// time implies beating it at the end) — and that no skipped POI
    /// made the final result set.
    #[test]
    fn every_skip_is_justified_by_the_final_bound(
        w in 3usize..7,
        h in 3usize..7,
        seed in any::<u64>(),
        k in 1usize..5,
        landmarks in 1usize..5,
        sel in model_strategy(),
    ) {
        let case = make_case(w, h, seed, k, sel, landmarks);
        prop_assume!(case.pois.len() > k);
        let locator = NodeLocator::new(&case.net);
        let index = AltIndex::build_seeded(&case.net, case.landmarks, case.seed);
        let server = RTreeServer::new(case.pois.clone());
        let engine = SennEngine::default();
        let mut model = Model::build(case.sel, &case.net, &locator, &index, case.q);
        let mut oracle = Oracle::Alt(AltBound::new(&case.net, &locator, &index, case.q).unwrap());

        let initial = engine.query::<PeerCacheEntry>(case.q, case.k, &[], &server);
        let mut exp = SnnnExpansion::begin(case.q, case.k, &initial.results, &mut model);
        exp.record_skips();
        let config = SnnnConfig::default();
        while exp.needs_round() && exp.rounds() < config.max_expansion {
            let round = engine.query::<PeerCacheEntry>(case.q, exp.next_k(), &[], &server);
            exp.offer_pruned(&round.results, &mut model, &mut oracle);
        }
        prop_assert_eq!(exp.skipped().len() as u64, exp.model_evals_saved());
        let final_kth = exp.results()[case.k - 1].network_dist;
        for &(poi_id, lb) in exp.skipped() {
            prop_assert!(
                lb >= final_kth,
                "skip of poi {poi_id} unjustified: bound {lb} < final k-th {final_kth}"
            );
            prop_assert!(
                exp.results().iter().all(|r| r.poi.poi_id != poi_id),
                "skipped poi {poi_id} still surfaced in the result set"
            );
        }
    }
}

/// On a sizable grid the landmark oracle must actually fire: a fixed
/// seed where pruning demonstrably saves exact evaluations while the
/// result set stays identical (the claim the perf gate quantifies).
#[test]
fn pruning_saves_evaluations_on_a_large_grid() {
    let case = make_case(14, 14, 0x5eed, 3, ModelSel::Alt, 6);
    let plain = run_unpruned(&case);
    let pruned = run_pruned(&case, true);
    assert!(
        pruned.trace.model_evals_saved > 0,
        "landmark pruning never fired on a 14x14 grid"
    );
    assert_eq!(plain.trace.lb_evals, pruned.trace.lb_evals);
    assert_eq!(plain.results.len(), pruned.results.len());
    for (a, b) in plain.results.iter().zip(&pruned.results) {
        assert_eq!(a.poi.poi_id, b.poi.poi_id);
        assert_eq!(a.network_dist.to_bits(), b.network_dist.to_bits());
    }
}
