//! Transport determinism suite: the event-driven service transport's
//! observable outcomes are a pure function of `(seed, request ids)` —
//! never of how the caller slices time into polls.
//!
//! Two properties, proptest-driven over request counts, window/queue
//! shapes, seeds, fault patterns and arbitrary poll schedules:
//!
//! * **Poll granularity is immaterial.** Polling at any increasing
//!   sequence of virtual times and then draining yields exactly the same
//!   per-ticket dispositions — retry counts, shed/degraded/failed flags,
//!   bit-identical answer distances — as one big drain. Folding the
//!   outcomes in ticket order therefore produces bit-identical aggregate
//!   metrics regardless of completion-delivery order.
//! * **Replay is exact.** Re-running the same seed and request stream
//!   reproduces the same delivery sequence event for event (order
//!   included, not just the multiset).

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;
use senn_core::service::{ReplyStatus, RequestOutcome, ServerReply, ServerRequest, SpatialService};
use senn_core::transport::{AsyncClient, RequestId, RetryPolicy, Ticket, TransportPolicy};
use senn_core::{RTreeServer, SearchBounds};
use senn_geom::Point;

/// SplitMix64 — the same keyed-draw discipline the fault/transport layers
/// use, so fates depend only on the request id.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A keyed flaky backend: request `id` fails its first
/// `mix64(seed ^ id) % 3` attempts (alternating timeout/drop), then
/// answers from the real tree. Fates are a pure function of
/// `(seed, id, attempt ordinal)` — the same contract `FaultyService`
/// keeps — so any submission schedule sees the same per-id stream.
struct KeyedFlaky {
    inner: RTreeServer,
    seed: u64,
    attempts: Mutex<BTreeMap<RequestId, u64>>,
}

impl KeyedFlaky {
    fn new(seed: u64) -> Self {
        KeyedFlaky {
            inner: RTreeServer::new((0..32).map(|i| (i as u64, Point::new(i as f64, 0.0)))),
            seed,
            attempts: Mutex::new(BTreeMap::new()),
        }
    }
}

impl SpatialService for KeyedFlaky {
    fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerReply> {
        batch
            .iter()
            .map(|req| {
                let ordinal = {
                    let mut attempts = self.attempts.lock().unwrap();
                    let e = attempts.entry(req.id).or_insert(0);
                    let o = *e;
                    *e += 1;
                    o
                };
                let failures = mix64(self.seed ^ req.id.raw()) % 3;
                if ordinal < failures {
                    let status = if (ordinal + req.id.raw()) % 2 == 0 {
                        ReplyStatus::TimedOut
                    } else {
                        ReplyStatus::Dropped
                    };
                    ServerReply {
                        id: req.id,
                        status,
                        response: Default::default(),
                        latency_ms: 15.0,
                    }
                } else {
                    let mut reply = self
                        .inner
                        .submit(std::slice::from_ref(req))
                        .pop()
                        .expect("one reply per request");
                    reply.latency_ms = 5.0;
                    reply
                }
            })
            .collect()
    }

    fn poi_count(&self) -> usize {
        self.inner.poi_count()
    }
}

fn requests(n: usize) -> Vec<ServerRequest> {
    (0..n)
        .map(|i| ServerRequest {
            id: (i as u64).into(),
            query: Point::new(i as f64 * 0.9 + 0.01, 0.3),
            count: 2,
            bounds: SearchBounds::NONE,
            full_count: 2,
        })
        .collect()
}

fn client(seed: u64, window: usize, queue_cap: usize, flaky: bool) -> AsyncClient<KeyedFlaky> {
    let mut service = KeyedFlaky::new(seed);
    if !flaky {
        // Fault-free variant: pre-charge every id's attempt counter past
        // the maximum failure budget (< 3), so the first real attempt
        // already lands in the always-succeed regime.
        service.attempts = Mutex::new((0..1024u64).map(|i| (RequestId::new(i), 3)).collect());
    }
    AsyncClient::new(
        service,
        3,
        seed,
        TransportPolicy {
            retry: RetryPolicy::default(),
            window,
            queue_cap,
            shed: true,
            adaptive: None,
        },
    )
}

/// Everything observable about one resolved request, with answer
/// distances captured bit-exactly.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Disposition {
    retries: u32,
    timeouts: u32,
    drops: u32,
    shed: u32,
    degraded: bool,
    failed: bool,
    poi_ids: Vec<u64>,
    dist_bits: Vec<u64>,
}

impl Disposition {
    fn of(out: &RequestOutcome) -> Self {
        Disposition {
            retries: out.retries,
            timeouts: out.timeouts,
            drops: out.drops,
            shed: out.shed,
            degraded: out.degraded,
            failed: out.failed,
            poi_ids: out.response.pois.iter().map(|(p, _)| p.poi_id).collect(),
            dist_bits: out.response.pois.iter().map(|(_, d)| d.to_bits()).collect(),
        }
    }
}

fn by_ticket(outs: Vec<(Ticket, RequestOutcome)>) -> BTreeMap<Ticket, Disposition> {
    outs.into_iter()
        .map(|(t, o)| (t, Disposition::of(&o)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any increasing poll schedule, then a drain, resolves exactly the
    /// same tickets to exactly the same dispositions as one big drain —
    /// fault-free and under keyed flaky service alike.
    #[test]
    fn poll_granularity_never_changes_outcomes(
        seed in any::<u64>(),
        n in 1usize..32,
        window in 1usize..5,
        queue_cap in 1usize..8,
        cuts in prop::collection::vec(0.0f64..400.0, 0..7),
        flaky in any::<bool>(),
    ) {
        let reqs = requests(n);

        let mut reference = client(seed, window, queue_cap, flaky);
        for r in &reqs {
            reference.submit(*r);
        }
        let expect = by_ticket(reference.drain());

        let mut sliced = client(seed, window, queue_cap, flaky);
        for r in &reqs {
            sliced.submit(*r);
        }
        let mut cuts = cuts;
        cuts.sort_by(f64::total_cmp);
        let mut got = Vec::new();
        for t in cuts {
            got.extend(sliced.poll(t));
        }
        got.extend(sliced.drain());
        prop_assert_eq!(by_ticket(got), expect);
    }

    /// Same seed, same ids ⇒ the same delivery sequence, event for event
    /// (order included). The schedule is a pure function of the inputs.
    #[test]
    fn replay_reproduces_the_exact_delivery_order(
        seed in any::<u64>(),
        n in 1usize..32,
        window in 1usize..5,
        flaky in any::<bool>(),
    ) {
        let run = || {
            let mut c = client(seed, window, 6, flaky);
            for r in &requests(n) {
                c.submit(*r);
            }
            c.drain()
                .into_iter()
                .map(|(t, o)| (t, Disposition::of(&o)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
