//! Grid-based nearest-node lookup.
//!
//! Mobility and SNNN snap arbitrary positions to the nearest graph node
//! constantly; a uniform grid turns the linear scan into an expanding-ring
//! search over a handful of cells.

use senn_geom::{Point, Rect};

use crate::graph::{NodeId, RoadNetwork};

/// A uniform-grid index over the nodes of a [`RoadNetwork`].
#[derive(Clone, Debug)]
pub struct NodeLocator {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<NodeId>>,
    positions: Vec<Point>,
}

impl NodeLocator {
    /// Builds a locator with roughly `nodes / 4` cells (at least 1).
    pub fn new(net: &RoadNetwork) -> Self {
        let bounds = net.bounding_rect();
        let n = net.node_count().max(1);
        let span = bounds.width().max(bounds.height()).max(1e-9);
        // Aim for ~4 nodes per cell.
        let cells_per_side = ((n as f64 / 4.0).sqrt().ceil() as usize).max(1);
        let cell = span / cells_per_side as f64;
        Self::with_cell_size(net, cell)
    }

    /// Builds a locator with an explicit cell size.
    pub fn with_cell_size(net: &RoadNetwork, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let bounds = net.bounding_rect();
        let (cols, rows) = if bounds.is_empty() {
            (1, 1)
        } else {
            (
                (bounds.width() / cell).floor() as usize + 1,
                (bounds.height() / cell).floor() as usize + 1,
            )
        };
        let mut cells = vec![Vec::new(); cols * rows];
        let positions = net.positions().to_vec();
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = clamp_cell(bounds, cell, cols, rows, *p);
            cells[cy * cols + cx].push(i as NodeId);
        }
        NodeLocator {
            bounds,
            cell,
            cols,
            rows,
            cells,
            positions,
        }
    }

    /// Nearest node to `p`, or `None` for an empty network.
    pub fn nearest(&self, p: Point) -> Option<NodeId> {
        if self.positions.is_empty() {
            return None;
        }
        let (cx, cy) = clamp_cell(self.bounds, self.cell, self.cols, self.rows, p);
        let mut best: Option<(f64, NodeId)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is found, one extra ring guarantees
            // correctness (a node in a farther ring is at least
            // `(ring - 1) * cell` away).
            if let Some((bd, _)) = best {
                if (ring as f64 - 1.0) * self.cell > bd.sqrt() {
                    break;
                }
            }
            for (x, y) in ring_cells(cx, cy, ring, self.cols, self.rows) {
                for &id in &self.cells[y * self.cols + x] {
                    let d = p.dist_sq(self.positions[id as usize]);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, id));
                    }
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// All nodes within `radius` of `p`.
    pub fn within(&self, p: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.positions.is_empty() {
            return out;
        }
        let r2 = radius * radius;
        let lo = clamp_cell(
            self.bounds,
            self.cell,
            self.cols,
            self.rows,
            Point::new(p.x - radius, p.y - radius),
        );
        let hi = clamp_cell(
            self.bounds,
            self.cell,
            self.cols,
            self.rows,
            Point::new(p.x + radius, p.y + radius),
        );
        for y in lo.1..=hi.1 {
            for x in lo.0..=hi.0 {
                for &id in &self.cells[y * self.cols + x] {
                    if p.dist_sq(self.positions[id as usize]) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

fn clamp_cell(bounds: Rect, cell: f64, cols: usize, rows: usize, p: Point) -> (usize, usize) {
    if bounds.is_empty() {
        return (0, 0);
    }
    let cx = (((p.x - bounds.min.x) / cell).floor() as isize).clamp(0, cols as isize - 1) as usize;
    let cy = (((p.y - bounds.min.y) / cell).floor() as isize).clamp(0, rows as isize - 1) as usize;
    (cx, cy)
}

/// The cells at Chebyshev distance exactly `ring` from `(cx, cy)`, clipped
/// to the grid.
fn ring_cells(
    cx: usize,
    cy: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let r = ring as isize;
    let (cx, cy) = (cx as isize, cy as isize);
    let mut out = Vec::new();
    if ring == 0 {
        out.push((cx, cy));
    } else {
        for dx in -r..=r {
            out.push((cx + dx, cy - r));
            out.push((cx + dx, cy + r));
        }
        for dy in (-r + 1)..r {
            out.push((cx - r, cy + dy));
            out.push((cx + r, cy + dy));
        }
    }
    out.into_iter().filter_map(move |(x, y)| {
        (x >= 0 && y >= 0 && (x as usize) < cols && (y as usize) < rows)
            .then_some((x as usize, y as usize))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadClass;

    fn net_with(points: &[(f64, f64)]) -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let ids: Vec<_> = points
            .iter()
            .map(|&(x, y)| net.add_node(Point::new(x, y)))
            .collect();
        for w in ids.windows(2) {
            net.add_edge(w[0], w[1], RoadClass::Local);
        }
        net
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut pts = Vec::new();
        let mut s = 99u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            pts.push((next() * 100.0, next() * 100.0));
        }
        let net = net_with(&pts);
        let loc = NodeLocator::new(&net);
        for _ in 0..100 {
            let q = Point::new(next() * 120.0 - 10.0, next() * 120.0 - 10.0);
            let fast = loc.nearest(q).unwrap();
            let slow = net.nearest_node_linear(q).unwrap();
            assert!(
                (q.dist(net.position(fast)) - q.dist(net.position(slow))).abs() < 1e-9,
                "locator returned a farther node"
            );
        }
    }

    #[test]
    fn empty_network() {
        let net = RoadNetwork::new();
        let loc = NodeLocator::new(&net);
        assert_eq!(loc.nearest(Point::ORIGIN), None);
        assert!(loc.within(Point::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn single_node() {
        let net = net_with(&[(5.0, 5.0), (6.0, 6.0)]);
        let loc = NodeLocator::new(&net);
        assert_eq!(loc.nearest(Point::new(-100.0, -100.0)), Some(0));
    }

    #[test]
    fn within_radius() {
        let net = net_with(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (0.0, 2.0)]);
        let loc = NodeLocator::new(&net);
        let mut hits = loc.within(Point::ORIGIN, 2.2);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 3]);
        assert!(loc.within(Point::new(100.0, 100.0), 1.0).is_empty());
    }
}
