#![warn(missing_docs)]
//! # senn-network
//!
//! The spatial road-network substrate (paper Section 3.4 and 4.1.2).
//!
//! The paper digitizes TIGER/LINE street vectors into a *modeling graph*
//! whose nodes are network junctions, segment endpoints and auxiliary
//! points, computes shortest paths with Dijkstra's algorithm, and runs the
//! IER / INE network nearest-neighbor algorithms of Papadias et al. on top.
//! TIGER data is not redistributable here, so [`generator`] synthesizes
//! networks with the same structure the paper extracts from TIGER: road
//! segments in several classes (primary highways, secondary/connecting
//! roads, rural/local roads) with per-class speed limits, where apparent
//! crossings between a highway and a local road are over-passes, not
//! intersections (see `DESIGN.md` §3 for the substitution argument).
//!
//! Provided components:
//!
//! * [`RoadNetwork`] — the modeling graph: nodes with coordinates,
//!   undirected edges with length and [`RoadClass`].
//! * [`shortest_path`] — Dijkstra and A\* (the Euclidean heuristic is
//!   admissible because every edge is at least as long as the straight
//!   line between its endpoints), plus one-to-many distance maps.
//! * [`poi`] + [`knn`] — POIs snapped onto the network and the **IER** /
//!   **INE** network-kNN baselines used by SNNN.
//! * [`ch`] — a contraction-hierarchy distance oracle: seeded
//!   deterministic preprocessing (edge-difference ordering, witness
//!   searches, shortcuts) and bidirectional upward queries whose unpacked
//!   distances are bit-identical to Dijkstra on unique shortest paths.
//! * [`distance`] — the road-network implementations of `senn-core`'s
//!   `DistanceModel` seam: [`NetworkDistance`] (Euclidean-heuristic A\*),
//!   [`AltDistance`] (landmark lower bounds), [`ChDistance`] (the
//!   hierarchy oracle) and [`TimeDependentCost`] (congestion-weighted
//!   per-class speed limits), all over reusable scratch.
//! * [`shared`] — [`SharedNetworkModel`]: the same distances answered
//!   from batch-shared resumable Dijkstra frontiers
//!   (`senn_core::shared_expansion`), one settle sweep per query group.
//! * [`generator`] — the seeded synthetic network generator.

pub mod alt;
pub mod ch;
pub mod distance;
pub mod generator;
pub mod graph;
pub mod io;
pub mod knn;
pub mod locator;
pub mod poi;
pub mod shared;
pub mod shortest_path;

pub use alt::{
    alt_distance, alt_distance_with, counting_alt, counting_astar, counting_dijkstra, AltIndex,
    SearchStats,
};
pub use ch::{counting_ch, counting_ch_search, ChIndex, ChScratch};
pub use distance::{
    congestion_factor, time_cost_multiplier, AltBound, AltDistance, ChBound, ChDistance,
    NetworkDistance, TimeDependentCost,
};
pub use generator::{generate_network, GeneratorConfig};
pub use graph::{NodeId, RoadClass, RoadNetwork};
pub use io::{network_to_string, parse_network, ParseError};
pub use knn::{ier_knn, ier_knn_with, ine_knn, ine_knn_with, NetworkNeighbor};
pub use locator::NodeLocator;
pub use poi::NetworkPois;
pub use shared::{SharedEdgeCost, SharedNetworkModel};
pub use shortest_path::{
    astar_distance, astar_distance_with, astar_path, astar_path_with, dijkstra_distance,
    dijkstra_distance_with, dijkstra_map, dijkstra_map_into, shortest_path_nodes,
    with_thread_scratch, DijkstraScratch,
};
