//! The road-network implementations of `senn-core`'s distance-model seam.
//!
//! All three models share one convention — anchor the query point to its
//! nearest modeling-graph node, run a label-setting search over a
//! reusable [`DijkstraScratch`], and add the straight-line legs to/from
//! the snap nodes (the same convention the IER/INE kNN baselines use):
//!
//! * [`NetworkDistance`] — A\* with the Euclidean heuristic (the PR-2
//!   baseline model).
//! * [`AltDistance`] — A\* with the precomputed landmark lower bounds of
//!   an [`AltIndex`]; identical distances, fewer settled nodes.
//! * [`ChDistance`] — the contraction-hierarchy oracle of a prebuilt
//!   [`ChIndex`]: the same exact distances again, answered by two tiny
//!   upward searches instead of a full graph search.
//! * [`TimeDependentCost`] — congestion-weighted cost over per-class
//!   speed limits and a time-of-day multiplier. Each edge costs
//!   `length × (v_ref / v_class) × congestion(class, hour)` where `v_ref`
//!   is the primary-road speed limit and every factor is ≥ 1 — i.e. the
//!   free-flow-normalized travel time expressed in meters, so congestion
//!   only *lengthens* edges.
//!
//! Plugged into `senn_core::snnn_query`, these models turn the generic
//! IER driver into Algorithm 2 proper; the Euclidean lower-bound property
//! the driver relies on holds because every edge of the modeling graph is
//! at least as long as the straight line between its endpoints — and for
//! [`TimeDependentCost`] because its per-edge factor never drops below 1.

use senn_core::{DistanceModel, LowerBoundOracle};
use senn_geom::Point;

use crate::alt::{alt_distance_with, AltIndex};
use crate::ch::{ChIndex, ChScratch};
use crate::graph::{NodeId, RoadClass, RoadNetwork};
use crate::locator::NodeLocator;
use crate::shortest_path::{astar_distance_with, DijkstraScratch};

/// A [`DistanceModel`] over a road network: A\* from the anchored query
/// node, with owned search scratch reused across calls (and across
/// queries, via [`NetworkDistance::rebase`]).
pub struct NetworkDistance<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    query_node: NodeId,
    scratch: DijkstraScratch,
}

impl<'a> NetworkDistance<'a> {
    /// Anchors the model at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(net: &'a RoadNetwork, locator: &'a NodeLocator, query: Point) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(NetworkDistance {
            net,
            locator,
            query_node,
            scratch: DijkstraScratch::new(),
        })
    }

    /// Anchors the model at an explicit query node (callers that already
    /// snapped the query point).
    pub fn anchored(net: &'a RoadNetwork, locator: &'a NodeLocator, query_node: NodeId) -> Self {
        NetworkDistance {
            net,
            locator,
            query_node,
            scratch: DijkstraScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the model for a new query point, keeping the search
    /// scratch — the reuse hook for batch drivers issuing many SNNN
    /// queries. Returns false (leaving the anchor unchanged) when the
    /// locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl DistanceModel for NetworkDistance<'_> {
    /// `|query → snap(query)| + A*(snap(query), snap(p)) + |snap(p) → p|`,
    /// or `None` when `p` cannot be snapped or no path exists.
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        let pn = self.locator.nearest(p)?;
        let core = astar_distance_with(self.net, self.query_node, pn, &mut self.scratch)?;
        Some(query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p))
    }
}

/// A [`DistanceModel`] over a road network using the ALT heuristic of a
/// prebuilt [`AltIndex`]: identical distances to [`NetworkDistance`]
/// (both are exact label-setting searches), typically with far fewer
/// settled nodes on grid-like networks where the Euclidean heuristic is
/// weak.
pub struct AltDistance<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    index: &'a AltIndex,
    query_node: NodeId,
    scratch: DijkstraScratch,
}

impl<'a> AltDistance<'a> {
    /// Anchors the model at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a AltIndex,
        query: Point,
    ) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(AltDistance {
            net,
            locator,
            index,
            query_node,
            scratch: DijkstraScratch::new(),
        })
    }

    /// Anchors the model at an explicit query node.
    pub fn anchored(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a AltIndex,
        query_node: NodeId,
    ) -> Self {
        AltDistance {
            net,
            locator,
            index,
            query_node,
            scratch: DijkstraScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the model for a new query point, keeping the search
    /// scratch and the landmark index. Returns false (leaving the anchor
    /// unchanged) when the locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl DistanceModel for AltDistance<'_> {
    /// Same convention as [`NetworkDistance`], with the ALT core search.
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        let pn = self.locator.nearest(p)?;
        let core = alt_distance_with(self.net, self.index, self.query_node, pn, &mut self.scratch)?;
        Some(query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p))
    }
}

/// A [`LowerBoundOracle`] from the landmark table of an [`AltIndex`]: a
/// search-free lower bound on all three road models' distances, used by
/// SNNN's pruned expansion to skip exact evaluations.
///
/// The bound is the larger of two admissible estimates:
///
/// * the free-flow Euclidean distance `|q → p|` (the [`DistanceModel`]
///   contract's `ED <= ND`), and
/// * the snap-leg decomposition `|q → snap(q)| + alt_lb(snap(q), snap(p))
///   + |snap(p) → p|`, where `alt_lb` is the landmark triangle bound —
///   a lower bound on the length core shared by [`NetworkDistance`] and
///   [`AltDistance`], and (since every weighted edge costs at least its
///   length) on [`TimeDependentCost`]'s core too.
///
/// Degenerate placements stay sound without any clamping: when the query
/// point coincides with a candidate (or sits exactly on a snap node of
/// its own candidate segment) both estimates collapse to the exact snap
/// legs — `alt_lb(n, n) = 0`, never negative — so the bound is `0` when
/// the exact distance is `0` and never exceeds it (regression-tested by
/// the degenerate-placement proptest in `tests/metric_equivalence.rs`).
/// When `p` cannot be snapped the oracle falls back to the Euclidean
/// estimate alone.
pub struct AltBound<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    index: &'a AltIndex,
    query_node: NodeId,
}

impl<'a> AltBound<'a> {
    /// Anchors the oracle at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a AltIndex,
        query: Point,
    ) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(AltBound {
            net,
            locator,
            index,
            query_node,
        })
    }

    /// Anchors the oracle at an explicit query node (callers that already
    /// snapped the query point — keeps the oracle's anchor in lockstep
    /// with the paired model's).
    pub fn anchored(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a AltIndex,
        query_node: NodeId,
    ) -> Self {
        AltBound {
            net,
            locator,
            index,
            query_node,
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the oracle for a new query point. Returns false
    /// (leaving the anchor unchanged) when the locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl LowerBoundOracle for AltBound<'_> {
    fn lower_bound(&mut self, query: Point, p: Point) -> f64 {
        let euclid = query.dist(p);
        let Some(pn) = self.locator.nearest(p) else {
            return euclid;
        };
        let snapped = query.dist(self.net.position(self.query_node))
            + self.index.lower_bound(self.query_node, pn)
            + self.net.position(pn).dist(p);
        debug_assert!(snapped >= 0.0, "landmark bounds are never negative");
        euclid.max(snapped)
    }
}

/// A [`DistanceModel`] over a road network backed by a prebuilt
/// contraction hierarchy ([`ChIndex`]): the same snap-leg convention and
/// the same exact distances as [`NetworkDistance`] / [`AltDistance`]
/// (the CH query unpacks shortcuts and folds the original edge sequence
/// left-to-right, so unique shortest paths reproduce A\*'s result
/// bit-for-bit), answered in near-constant time.
pub struct ChDistance<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    index: &'a ChIndex,
    query_node: NodeId,
    scratch: ChScratch,
}

impl<'a> ChDistance<'a> {
    /// Anchors the model at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a ChIndex,
        query: Point,
    ) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(Self::anchored(net, locator, index, query_node))
    }

    /// Anchors the model at an explicit query node.
    pub fn anchored(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a ChIndex,
        query_node: NodeId,
    ) -> Self {
        ChDistance {
            net,
            locator,
            index,
            query_node,
            scratch: ChScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the model for a new query point, keeping the search
    /// scratch and the hierarchy. Returns false (leaving the anchor
    /// unchanged) when the locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl DistanceModel for ChDistance<'_> {
    /// Same convention as [`NetworkDistance`], with the CH core query.
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        let pn = self.locator.nearest(p)?;
        let core = self
            .index
            .distance_with(self.query_node, pn, &mut self.scratch)?;
        Some(query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p))
    }
}

/// A [`LowerBoundOracle`] from a contraction hierarchy: the CH core
/// distance is *exact* for the length metric, so the bound
/// `max(|q → p|, |q → snap(q)| + ch(snap(q), snap(p)) + |snap(p) → p|)`
/// is the tightest admissible bound the seam can express — it equals
/// [`ChDistance`]'s value bit-for-bit (same snap legs, same core fold)
/// and lower-bounds [`NetworkDistance`] / [`AltDistance`] /
/// [`TimeDependentCost`] (weighted edges cost at least their length).
/// Every candidate ALT's landmark bound can prune, this bound prunes
/// too.
///
/// Degenerate placements need no clamping, exactly as with [`AltBound`]:
/// a query sitting on its own snap node bounds the zero self-distance by
/// exactly 0 (`ch(n, n) = 0`, all snap legs zero). When `p` cannot be
/// snapped the oracle falls back to the Euclidean estimate; when the
/// core is unreachable it returns `f64::INFINITY` — sound, because the
/// exact models return `None` for the same pair, so the candidate could
/// never pass a replacement test anyway.
pub struct ChBound<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    index: &'a ChIndex,
    query_node: NodeId,
    scratch: ChScratch,
}

impl<'a> ChBound<'a> {
    /// Anchors the oracle at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a ChIndex,
        query: Point,
    ) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(Self::anchored(net, locator, index, query_node))
    }

    /// Anchors the oracle at an explicit query node (keeps the anchor in
    /// lockstep with the paired model's).
    pub fn anchored(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        index: &'a ChIndex,
        query_node: NodeId,
    ) -> Self {
        ChBound {
            net,
            locator,
            index,
            query_node,
            scratch: ChScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the oracle for a new query point. Returns false
    /// (leaving the anchor unchanged) when the locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl LowerBoundOracle for ChBound<'_> {
    fn lower_bound(&mut self, query: Point, p: Point) -> f64 {
        let euclid = query.dist(p);
        let Some(pn) = self.locator.nearest(p) else {
            return euclid;
        };
        let Some(core) = self
            .index
            .distance_with(self.query_node, pn, &mut self.scratch)
        else {
            // Unreachable core: the exact models return None too, so an
            // infinite bound is sound and skips the doomed evaluation.
            return f64::INFINITY;
        };
        let snapped =
            query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p);
        debug_assert!(snapped >= 0.0, "CH distances are never negative");
        euclid.max(snapped)
    }
}

/// Congestion multiplier for a road class at an hour of day in `[0, 24)`.
///
/// A deterministic commuter profile: morning (7–9h) and evening (16–19h)
/// rush hours congest primary roads the most, the daytime shoulder keeps
/// a mild slowdown, nights flow freely. Always ≥ 1 — congestion can only
/// slow an edge down, which is what keeps [`TimeDependentCost`] a valid
/// [`DistanceModel`] (the Euclidean lower bound survives).
pub fn congestion_factor(class: RoadClass, hour_of_day: f64) -> f64 {
    let h = hour_of_day.rem_euclid(24.0);
    let rush = (7.0..9.0).contains(&h) || (16.0..19.0).contains(&h);
    let day = (9.0..16.0).contains(&h) || (19.0..22.0).contains(&h);
    match (class, rush, day) {
        (RoadClass::Primary, true, _) => 1.6,
        (RoadClass::Secondary, true, _) => 1.35,
        (RoadClass::Local, true, _) => 1.15,
        (RoadClass::Primary, _, true) => 1.2,
        (RoadClass::Secondary, _, true) => 1.1,
        (RoadClass::Local, _, true) => 1.05,
        _ => 1.0,
    }
}

/// Per-edge cost multiplier of the time-dependent model: the free-flow
/// speed penalty of the class relative to the primary-road reference,
/// times the hour's congestion. Always ≥ 1.
pub fn time_cost_multiplier(class: RoadClass, hour_of_day: f64) -> f64 {
    let v_ref = RoadClass::Primary.speed_limit_mph();
    (v_ref / class.speed_limit_mph()) * congestion_factor(class, hour_of_day)
}

/// A time-dependent [`DistanceModel`]: congestion-weighted travel cost
/// over per-class speed limits, normalized so the unit stays meters (the
/// free-flow travel time at the primary-road reference speed).
///
/// Each edge costs `length × time_cost_multiplier(class, hour)`; both
/// factors are ≥ 1, so every path costs at least its geometric length and
/// the Euclidean lower-bound contract holds — which also makes the
/// Euclidean heuristic admissible for the internal A\* search. The snap
/// legs to/from the network are walked off-road at the reference speed
/// (plain Euclidean length), exactly like [`NetworkDistance`].
pub struct TimeDependentCost<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    query_node: NodeId,
    hour: f64,
    scratch: DijkstraScratch,
}

impl<'a> TimeDependentCost<'a> {
    /// Anchors the model at the network node nearest to `query`, with the
    /// clock at `hour_of_day` (wrapped into `[0, 24)`). Returns `None`
    /// when the network has no nodes.
    pub fn new(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        query: Point,
        hour_of_day: f64,
    ) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(Self::anchored(net, locator, query_node, hour_of_day))
    }

    /// Anchors the model at an explicit query node.
    pub fn anchored(
        net: &'a RoadNetwork,
        locator: &'a NodeLocator,
        query_node: NodeId,
        hour_of_day: f64,
    ) -> Self {
        TimeDependentCost {
            net,
            locator,
            query_node,
            hour: hour_of_day.rem_euclid(24.0),
            scratch: DijkstraScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// The current time of day, hours in `[0, 24)`.
    pub fn hour(&self) -> f64 {
        self.hour
    }

    /// Moves the clock (wrapped into `[0, 24)`).
    pub fn set_hour(&mut self, hour_of_day: f64) {
        self.hour = hour_of_day.rem_euclid(24.0);
    }

    /// Re-anchors the model for a new query point, keeping the scratch.
    /// Returns false (leaving the anchor unchanged) when the locator
    /// finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }

    /// Minimum congestion-weighted cost between two nodes at the model's
    /// current hour (A\* with the Euclidean heuristic — admissible since
    /// every weighted edge costs at least its length).
    fn core_cost(&mut self, from: NodeId, to: NodeId) -> Option<f64> {
        let net = self.net;
        let n = net.node_count();
        let goal = net.position(to);
        let hour = self.hour;
        let scratch = &mut self.scratch;
        scratch.begin(n);
        scratch.set_dist(from, 0.0, NodeId::MAX);
        scratch.push(net.position(from).dist(goal), 0.0, from);
        while let Some(item) = scratch.pop() {
            let (d, node) = (item.dist, item.node);
            if d > scratch.dist(node) {
                continue;
            }
            if node == to {
                return Some(d);
            }
            for e in net.neighbors(node) {
                let nd = d + e.length * time_cost_multiplier(e.class, hour);
                if nd < scratch.dist(e.to) {
                    scratch.set_dist(e.to, nd, node);
                    scratch.push(nd + net.position(e.to).dist(goal), nd, e.to);
                }
            }
        }
        None
    }
}

impl DistanceModel for TimeDependentCost<'_> {
    /// `|query → snap(query)| + weighted_cost(snap(query), snap(p)) +
    /// |snap(p) → p|`, or `None` when `p` cannot be snapped or no path
    /// exists.
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        let pn = self.locator.nearest(p)?;
        let core = self.core_cost(self.query_node, pn)?;
        Some(query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_network, GeneratorConfig};
    use crate::shortest_path::astar_distance;

    #[test]
    fn matches_the_manual_astar_convention() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 3));
        let locator = NodeLocator::new(&net);
        let q = Point::new(700.0, 900.0);
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        let qn = model.query_node();
        for p in [
            Point::new(100.0, 100.0),
            Point::new(1900.0, 1500.0),
            Point::new(1000.0, 1000.0),
        ] {
            let pn = locator.nearest(p).unwrap();
            let want = astar_distance(&net, qn, pn)
                .map(|core| q.dist(net.position(qn)) + core + net.position(pn).dist(p));
            assert_eq!(model.distance(q, p), want);
        }
    }

    #[test]
    fn dominates_euclidean() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 9));
        let locator = NodeLocator::new(&net);
        let q = Point::new(750.0, 750.0);
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        for i in 0..20 {
            let p = Point::new(75.0 * i as f64, 1500.0 - 70.0 * i as f64);
            if let Some(nd) = model.distance(q, p) {
                assert!(nd >= q.dist(p) - 1e-9, "ED lower bound violated at {p:?}");
            }
        }
    }

    #[test]
    fn alt_model_matches_astar_model() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 8));
        let locator = NodeLocator::new(&net);
        let index = AltIndex::build(&net, 5);
        let q = Point::new(400.0, 1600.0);
        let mut astar = NetworkDistance::new(&net, &locator, q).unwrap();
        let mut alt = AltDistance::new(&net, &locator, &index, q).unwrap();
        assert_eq!(astar.query_node(), alt.query_node());
        for i in 0..25 {
            let p = Point::new(80.0 * i as f64, 70.0 * i as f64);
            match (astar.distance(q, p), alt.distance(q, p)) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "at {p:?}: {a} vs {b}"),
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn congestion_only_slows_edges() {
        for class in [RoadClass::Primary, RoadClass::Secondary, RoadClass::Local] {
            for tenth in 0..240 {
                let h = tenth as f64 / 10.0;
                assert!(congestion_factor(class, h) >= 1.0);
                assert!(time_cost_multiplier(class, h) >= 1.0 - 1e-12);
            }
        }
        // Free flow on a primary road at night is the exact reference.
        assert!((time_cost_multiplier(RoadClass::Primary, 3.0) - 1.0).abs() < 1e-12);
        // Rush hour strictly dominates the night profile.
        for class in [RoadClass::Primary, RoadClass::Secondary, RoadClass::Local] {
            assert!(time_cost_multiplier(class, 8.0) > time_cost_multiplier(class, 3.0));
        }
    }

    #[test]
    fn time_dependent_cost_dominates_network_distance() {
        let net = generate_network(&GeneratorConfig::city(1800.0, 12));
        let locator = NodeLocator::new(&net);
        let q = Point::new(900.0, 900.0);
        let mut nd = NetworkDistance::new(&net, &locator, q).unwrap();
        let mut td = TimeDependentCost::new(&net, &locator, q, 8.0).unwrap();
        for i in 0..20 {
            let p = Point::new(90.0 * i as f64, 1800.0 - 85.0 * i as f64);
            if let (Some(net_d), Some(time_d)) = (nd.distance(q, p), td.distance(q, p)) {
                // Weighted edges cost at least their length, so the
                // time-dependent optimum can never undercut the metric
                // optimum — and both dominate the Euclidean distance.
                assert!(time_d >= net_d - 1e-9, "at {p:?}: {time_d} < {net_d}");
                assert!(time_d >= q.dist(p) - 1e-9);
            }
        }
    }

    #[test]
    fn rush_hour_never_beats_free_flow() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 21));
        let locator = NodeLocator::new(&net);
        let q = Point::new(200.0, 1300.0);
        let mut td = TimeDependentCost::new(&net, &locator, q, 3.0).unwrap();
        for i in 0..15 {
            let p = Point::new(100.0 * i as f64, 95.0 * i as f64);
            let night = td.distance(q, p);
            td.set_hour(8.5);
            let rush = td.distance(q, p);
            td.set_hour(3.0);
            if let (Some(n), Some(r)) = (night, rush) {
                assert!(r >= n - 1e-9, "rush {r} beat night {n} at {p:?}");
            }
        }
    }

    #[test]
    fn alt_bound_is_admissible_for_all_three_models() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 8));
        let locator = NodeLocator::new(&net);
        let index = AltIndex::build(&net, 5);
        let q = Point::new(400.0, 1600.0);
        let mut bound = AltBound::new(&net, &locator, &index, q).unwrap();
        let mut astar = NetworkDistance::new(&net, &locator, q).unwrap();
        let mut alt = AltDistance::new(&net, &locator, &index, q).unwrap();
        let mut td = TimeDependentCost::new(&net, &locator, q, 8.0).unwrap();
        assert_eq!(bound.query_node(), astar.query_node());
        let mut tight = 0usize;
        for i in 0..25 {
            let p = Point::new(80.0 * i as f64, 70.0 * i as f64);
            let lb = bound.lower_bound(q, p);
            assert!(lb >= 0.0);
            assert!(lb >= q.dist(p) - 1e-9, "never looser than Euclidean");
            for exact in [astar.distance(q, p), alt.distance(q, p), td.distance(q, p)]
                .into_iter()
                .flatten()
            {
                assert!(lb <= exact + 1e-9, "bound {lb} overshot exact {exact}");
            }
            if let Some(exact) = astar.distance(q, p) {
                if lb > q.dist(p) + 1e-9 && lb <= exact + 1e-9 {
                    tight += 1;
                }
            }
        }
        assert!(
            tight > 0,
            "the landmark term should beat plain Euclidean somewhere"
        );
    }

    #[test]
    fn ch_model_matches_astar_model() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 8));
        let locator = NodeLocator::new(&net);
        let index = ChIndex::build_seeded(&net, 8);
        let q = Point::new(400.0, 1600.0);
        let mut astar = NetworkDistance::new(&net, &locator, q).unwrap();
        let mut ch = ChDistance::new(&net, &locator, &index, q).unwrap();
        assert_eq!(astar.query_node(), ch.query_node());
        for i in 0..25 {
            let p = Point::new(80.0 * i as f64, 70.0 * i as f64);
            match (astar.distance(q, p), ch.distance(q, p)) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "at {p:?}: {a} vs {b}"),
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn ch_bound_is_admissible_and_tighter_than_alt() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 8));
        let locator = NodeLocator::new(&net);
        let alt_index = AltIndex::build(&net, 5);
        let ch_index = ChIndex::build_seeded(&net, 8);
        let q = Point::new(400.0, 1600.0);
        let mut alt_bound = AltBound::new(&net, &locator, &alt_index, q).unwrap();
        let mut ch_bound = ChBound::new(&net, &locator, &ch_index, q).unwrap();
        let mut astar = NetworkDistance::new(&net, &locator, q).unwrap();
        let mut ch = ChDistance::new(&net, &locator, &ch_index, q).unwrap();
        let mut td = TimeDependentCost::new(&net, &locator, q, 8.0).unwrap();
        for i in 0..25 {
            let p = Point::new(80.0 * i as f64, 70.0 * i as f64);
            let lb = ch_bound.lower_bound(q, p);
            assert!(lb >= q.dist(p) - 1e-9, "never looser than Euclidean");
            assert!(
                lb >= alt_bound.lower_bound(q, p) - 1e-9,
                "the exact core can never be looser than a landmark bound"
            );
            for exact in [astar.distance(q, p), ch.distance(q, p), td.distance(q, p)]
                .into_iter()
                .flatten()
            {
                assert!(lb <= exact + 1e-9, "bound {lb} overshot exact {exact}");
            }
            // Against its own paired model, the bound is the exact value.
            if let Some(exact) = ch.distance(q, p) {
                assert_eq!(lb.to_bits(), exact.to_bits(), "at {p:?}");
            }
        }
    }

    #[test]
    fn ch_bound_is_zero_on_its_own_snap_node() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 5));
        let locator = NodeLocator::new(&net);
        let index = ChIndex::build(&net);
        let q = net.position(locator.nearest(Point::new(700.0, 700.0)).unwrap());
        let mut bound = ChBound::new(&net, &locator, &index, q).unwrap();
        assert_eq!(bound.lower_bound(q, q), 0.0);
        let mut model = ChDistance::new(&net, &locator, &index, q).unwrap();
        assert_eq!(model.distance(q, q), Some(0.0));
    }

    #[test]
    fn alt_bound_is_zero_on_its_own_snap_node() {
        // The admissibility edge: a query point lying exactly on an
        // auxiliary (snap) node of its own candidate segment must bound
        // the zero self-distance by exactly 0, not a negative clamp.
        let net = generate_network(&GeneratorConfig::city(1500.0, 5));
        let locator = NodeLocator::new(&net);
        let index = AltIndex::build(&net, 4);
        let q = net.position(locator.nearest(Point::new(700.0, 700.0)).unwrap());
        let mut bound = AltBound::new(&net, &locator, &index, q).unwrap();
        let lb = bound.lower_bound(q, q);
        assert_eq!(lb, 0.0, "self-bound on a snap node must be exactly zero");
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        assert_eq!(model.distance(q, q), Some(0.0));
    }

    #[test]
    fn rebase_moves_the_anchor() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 5));
        let locator = NodeLocator::new(&net);
        let a = Point::new(100.0, 100.0);
        let b = Point::new(1400.0, 1300.0);
        let mut model = NetworkDistance::new(&net, &locator, a).unwrap();
        let from_a = model.distance(a, b);
        assert!(model.rebase(b));
        assert_eq!(model.query_node(), locator.nearest(b).unwrap());
        let near_b = model.distance(b, b).unwrap();
        // Anchored at b, the distance to b itself is just the two snap
        // legs — far smaller than the cross-map path.
        assert!(near_b <= from_a.unwrap());
    }
}
