//! The road-network implementation of `senn-core`'s distance-model seam.
//!
//! [`NetworkDistance`] anchors a query point to its nearest modeling-graph
//! node and computes point-to-point network distances with A\* over a
//! reusable [`DijkstraScratch`] — the same convention the IER/INE kNN
//! baselines use: straight-line leg from the query point to its snap node,
//! shortest path through the graph, straight-line leg from the POI's snap
//! node to the POI.
//!
//! Plugged into `senn_core::snnn_query`, this model turns the generic
//! IER driver into Algorithm 2 proper; the Euclidean lower-bound property
//! the driver relies on holds because every edge of the modeling graph is
//! at least as long as the straight line between its endpoints.

use senn_core::DistanceModel;
use senn_geom::Point;

use crate::graph::{NodeId, RoadNetwork};
use crate::locator::NodeLocator;
use crate::shortest_path::{astar_distance_with, DijkstraScratch};

/// A [`DistanceModel`] over a road network: A\* from the anchored query
/// node, with owned search scratch reused across calls (and across
/// queries, via [`NetworkDistance::rebase`]).
pub struct NetworkDistance<'a> {
    net: &'a RoadNetwork,
    locator: &'a NodeLocator,
    query_node: NodeId,
    scratch: DijkstraScratch,
}

impl<'a> NetworkDistance<'a> {
    /// Anchors the model at the network node nearest to `query`. Returns
    /// `None` when the network has no nodes.
    pub fn new(net: &'a RoadNetwork, locator: &'a NodeLocator, query: Point) -> Option<Self> {
        let query_node = locator.nearest(query)?;
        Some(NetworkDistance {
            net,
            locator,
            query_node,
            scratch: DijkstraScratch::new(),
        })
    }

    /// Anchors the model at an explicit query node (callers that already
    /// snapped the query point).
    pub fn anchored(net: &'a RoadNetwork, locator: &'a NodeLocator, query_node: NodeId) -> Self {
        NetworkDistance {
            net,
            locator,
            query_node,
            scratch: DijkstraScratch::new(),
        }
    }

    /// The node the query point is anchored to.
    pub fn query_node(&self) -> NodeId {
        self.query_node
    }

    /// Re-anchors the model for a new query point, keeping the search
    /// scratch — the reuse hook for batch drivers issuing many SNNN
    /// queries. Returns false (leaving the anchor unchanged) when the
    /// locator finds no node.
    pub fn rebase(&mut self, query: Point) -> bool {
        match self.locator.nearest(query) {
            Some(n) => {
                self.query_node = n;
                true
            }
            None => false,
        }
    }
}

impl DistanceModel for NetworkDistance<'_> {
    /// `|query → snap(query)| + A*(snap(query), snap(p)) + |snap(p) → p|`,
    /// or `None` when `p` cannot be snapped or no path exists.
    fn distance(&mut self, query: Point, p: Point) -> Option<f64> {
        let pn = self.locator.nearest(p)?;
        let core = astar_distance_with(self.net, self.query_node, pn, &mut self.scratch)?;
        Some(query.dist(self.net.position(self.query_node)) + core + self.net.position(pn).dist(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_network, GeneratorConfig};
    use crate::shortest_path::astar_distance;

    #[test]
    fn matches_the_manual_astar_convention() {
        let net = generate_network(&GeneratorConfig::city(2000.0, 3));
        let locator = NodeLocator::new(&net);
        let q = Point::new(700.0, 900.0);
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        let qn = model.query_node();
        for p in [
            Point::new(100.0, 100.0),
            Point::new(1900.0, 1500.0),
            Point::new(1000.0, 1000.0),
        ] {
            let pn = locator.nearest(p).unwrap();
            let want = astar_distance(&net, qn, pn)
                .map(|core| q.dist(net.position(qn)) + core + net.position(pn).dist(p));
            assert_eq!(model.distance(q, p), want);
        }
    }

    #[test]
    fn dominates_euclidean() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 9));
        let locator = NodeLocator::new(&net);
        let q = Point::new(750.0, 750.0);
        let mut model = NetworkDistance::new(&net, &locator, q).unwrap();
        for i in 0..20 {
            let p = Point::new(75.0 * i as f64, 1500.0 - 70.0 * i as f64);
            if let Some(nd) = model.distance(q, p) {
                assert!(nd >= q.dist(p) - 1e-9, "ED lower bound violated at {p:?}");
            }
        }
    }

    #[test]
    fn rebase_moves_the_anchor() {
        let net = generate_network(&GeneratorConfig::city(1500.0, 5));
        let locator = NodeLocator::new(&net);
        let a = Point::new(100.0, 100.0);
        let b = Point::new(1400.0, 1300.0);
        let mut model = NetworkDistance::new(&net, &locator, a).unwrap();
        let from_a = model.distance(a, b);
        assert!(model.rebase(b));
        assert_eq!(model.query_node(), locator.nearest(b).unwrap());
        let near_b = model.distance(b, b).unwrap();
        // Anchored at b, the distance to b itself is just the two snap
        // legs — far smaller than the cross-map path.
        assert!(near_b <= from_a.unwrap());
    }
}
